//! Integration: the durability layer end to end (spanning
//! revere-storage's WAL, revere-pdms propagation/durable, and
//! revere-util's fault + property substrates).
//!
//! Three families of guarantees live here:
//!
//! * **Record format** (property tests): every [`WalRecord`] round-trips
//!   through its binary codec, and a log torn at *any* byte offset
//!   recovers exactly the clean prefix of what was written — never a
//!   corrupt or invented record.
//! * **Exactly-once across restarts**: a seeded propagation stream with
//!   both peers crashing mid-stream converges to catalogs byte-identical
//!   to a crash-free twin, with every gram applied exactly once. The
//!   seed comes from `REVERE_CRASH_SEED` (default 7) and the invariant
//!   must hold for *any* seed; `scripts/verify.sh` runs several via
//!   `REVERE_CRASH_SEEDS`.
//! * **Resource bounds**: acknowledged history is truncated from the log
//!   at checkpoints, and the receiver's dedup inbox compacts to a
//!   watermark instead of remembering every id forever.

use revere::pdms::durable::{checkpoint, recover, PeerDisk};
use revere::pdms::propagation::{GramInbox, ReliableLink};
use revere::pdms::{MaterializedView, SequencedGram, Updategram};
use revere::prelude::*;
use revere::storage::wal::{Wal, WalRecord};
use revere::storage::wal::encode_catalog;
use revere::storage::{Attribute, Catalog};
use revere_util::prop::{forall, Gen};
use revere_util::RngExt;

/// The crash seed under test: `REVERE_CRASH_SEED` or 7.
fn crash_seed() -> u64 {
    std::env::var("REVERE_CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7)
}

// ---------------------------------------------------------------------
// WAL record generators (satellite: record-format coverage)
// ---------------------------------------------------------------------

/// A finite, codec-exact value (no NaN: records derive `PartialEq`).
fn gen_value(g: &mut Gen) -> Value {
    match g.random_range(0..5u32) {
        0 => Value::Null,
        1 => Value::Bool(g.random_bool(0.5)),
        2 => Value::Int(g.random_range(-1000i64..1000)),
        3 => Value::Float(g.random_range(-1000i64..1000) as f64 / 8.0),
        _ => Value::str(g.lowercase(1..8)),
    }
}

fn gen_rows(g: &mut Gen, arity: usize) -> Vec<Vec<Value>> {
    g.vec(0..4, |g| (0..arity).map(|_| gen_value(g)).collect())
}

fn gen_relation(g: &mut Gen) -> Relation {
    let arity = g.random_range(1..4usize);
    let name = format!("{}.{}", g.lowercase(1..4), g.lowercase(1..6));
    let attrs = (0..arity)
        .map(|i| Attribute::text(format!("a{i}")))
        .collect::<Vec<_>>();
    let schema = RelSchema::new(name, attrs);
    let rows = gen_rows(g, arity);
    Relation::with_rows(schema, rows)
}

fn gen_record(g: &mut Gen) -> WalRecord {
    let rel = || "p.r".to_string();
    match g.random_range(0..8u32) {
        0 => WalRecord::Register { relation: gen_relation(g) },
        1 => WalRecord::Insert { relation: g.lowercase(1..6), row: (0..2).map(|_| gen_value(g)).collect() },
        2 => WalRecord::Delete { relation: g.lowercase(1..6), row: (0..2).map(|_| gen_value(g)).collect() },
        3 => WalRecord::Analyze,
        4 => WalRecord::JoinObserved {
            rel_a: g.lowercase(1..6),
            col_a: g.random_range(0..4u32),
            rel_b: g.lowercase(1..6),
            col_b: g.random_range(0..4u32),
            selectivity: g.random_range(0i64..100) as f64 / 100.0,
        },
        5 => WalRecord::DeltaApplied {
            link: g.lowercase(1..5),
            id: g.random_range(0u64..1000),
            relation: rel(),
            insert: gen_rows(g, 2),
            delete: gen_rows(g, 2),
        },
        6 => WalRecord::DeltaSealed {
            link: g.lowercase(1..5),
            id: g.random_range(0u64..1000),
            relation: rel(),
            insert: gen_rows(g, 2),
            delete: gen_rows(g, 2),
        },
        _ => WalRecord::DeltaAcked { link: g.lowercase(1..5), id: g.random_range(0u64..1000) },
    }
}

#[test]
fn prop_wal_records_round_trip_the_binary_codec() {
    forall(128, |g| {
        let rec = gen_record(g);
        let bytes = rec.to_bytes();
        let back = WalRecord::from_bytes(&bytes);
        assert_eq!(back.as_ref(), Some(&rec), "decode(encode(r)) == r");
    });
}

#[test]
fn prop_log_torn_at_any_offset_recovers_the_clean_prefix() {
    forall(32, |g| {
        let mut wal = Wal::new();
        let n = g.random_range(1..6usize);
        for _ in 0..n {
            wal.append(&gen_record(g));
        }
        let full = wal.bytes().to_vec();
        let cut = g.random_range(0..full.len() + 1);
        let (re, report) = Wal::open(&full[..cut]);
        let original = wal.records();
        let recovered = re.records();
        assert!(recovered.len() <= original.len());
        assert_eq!(
            recovered,
            &original[..recovered.len()],
            "recovered records are a clean prefix, never invented"
        );
        if cut == full.len() {
            assert!(report.is_clean(), "an untorn log reopens clean");
            assert_eq!(recovered.len(), original.len());
        }
    });
}

#[test]
fn log_torn_at_every_byte_offset_is_a_clean_prefix() {
    // Exhaustive version of the property above for one representative
    // log: every single byte offset, not a sample.
    let mut wal = Wal::new();
    let header_len = wal.byte_len();
    wal.append(&WalRecord::Analyze);
    wal.append(&WalRecord::Insert { relation: "p.r".into(), row: vec![Value::str("x")] });
    wal.append(&WalRecord::DeltaAcked { link: "q".into(), id: 9 });
    let full = wal.bytes().to_vec();
    for cut in 0..=full.len() {
        let (re, report) = Wal::open(&full[..cut]);
        let recovered = re.records();
        assert_eq!(recovered, &wal.records()[..recovered.len()], "cut at {cut}");
        if cut >= header_len {
            assert_eq!(
                report.torn_bytes,
                cut - re.byte_len(),
                "cut at {cut}: everything past the clean prefix is accounted torn"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Resource bounds: log truncation and inbox compaction
// ---------------------------------------------------------------------

fn course_catalog(rel: &str) -> Catalog {
    let mut c = Catalog::new();
    c.create(RelSchema::text(rel, &["title", "area"]));
    c
}

fn replica_view(catalog: &Catalog, rel: &str) -> MaterializedView {
    let q = parse_query(&format!("v(T) :- {rel}(T, A)")).expect("view parses");
    let mut v = MaterializedView::new("v", q);
    v.refresh_full(catalog).expect("view refreshes");
    v
}

#[test]
fn acknowledged_grams_are_truncated_from_the_log_at_checkpoint() {
    let disk = PeerDisk::new();
    let mut src = course_catalog("Src.course");
    src.attach_journal(disk.journal());
    let mut link = ReliableLink::durable("Dst", FaultPlan::default(), disk.journal());
    let mut inbox = GramInbox::new();
    let mut dst = course_catalog("Dst.course");
    let mut view = replica_view(&dst, "Dst.course");

    for i in 0..10 {
        let gram = link.seal(Updategram::inserts(
            "Dst.course",
            vec![vec![Value::str(format!("c{i}")), Value::str("x")]],
        ));
        let d = link.ship(&gram, &mut inbox, &mut dst, &mut view).expect("perfect network");
        assert!(d.acknowledged);
    }
    let before = disk.log_len();
    let report = checkpoint(&disk, &mut src, &[], &[&link]);
    assert!(report.truncated >= 20, "10 seals + 10 acks are garbage once acknowledged");
    assert_eq!(report.retained_for_acks, 0);
    assert!(disk.log_len() < before, "the log physically shrinks");
    // And the truncated log still recovers the full sender state.
    let rec = recover(&disk).expect("recovers");
    let resume = rec.outboxes.get("Dst").expect("outbox");
    assert_eq!(resume.next_id(), 10, "sequence counter survives truncation via the image");
    assert_eq!(resume.pending_count(), 0);
}

#[test]
fn inbox_memory_stays_bounded_over_many_ship_rounds() {
    // Satellite: the dedup ledger must not grow with delivery count. A
    // duplicating, ack-dropping network forces re-deliveries; in-order
    // ids keep the compaction watermark tight.
    let spec = FaultSpec {
        seed: crash_seed(),
        flaky_prob: 0.3,
        duplicate_prob: 0.3,
        ..FaultSpec::default()
    };
    let mut link = ReliableLink::new("Dst", FaultPlan::new(spec));
    let mut inbox = GramInbox::new();
    let mut dst = course_catalog("Dst.course");
    let mut view = replica_view(&dst, "Dst.course");

    let rounds = 300u64;
    let mut tracked_peak = 0usize;
    for i in 0..rounds {
        let gram = link.seal(Updategram::inserts(
            "Dst.course",
            vec![vec![Value::str(format!("c{i}")), Value::str("x")]],
        ));
        link.ship_until_acknowledged(&gram, &mut inbox, &mut dst, &mut view, 64)
            .expect("lossy-but-live weather converges");
        tracked_peak = tracked_peak.max(inbox.tracked_ids());
    }
    assert_eq!(inbox.applied_count(), rounds as usize);
    assert!(inbox.duplicates_ignored > 0, "the weather actually produced duplicates");
    assert_eq!(inbox.watermark(), rounds, "the contiguous prefix compacted away");
    assert_eq!(inbox.tracked_ids(), 0, "no ids remembered individually after catch-up");
    assert!(
        tracked_peak <= 2,
        "in-order delivery keeps the explicit ledger tiny (peak {tracked_peak})"
    );
}

// ---------------------------------------------------------------------
// Crash convergence (the verify-gate invariant)
// ---------------------------------------------------------------------

/// Final canonical state of one seeded propagation run: (source catalog
/// bytes, target catalog bytes, distinct grams applied).
fn propagation_run(seed: u64, crashing: bool) -> (Vec<u8>, Vec<u8>, usize) {
    const ROUNDS: u64 = 24;
    const CHECKPOINT_EVERY: u64 = 6;
    let plan = FaultPlan::new(FaultSpec {
        seed,
        drop_prob: 0.2,
        flaky_prob: 0.1,
        duplicate_prob: 0.1,
        ..FaultSpec::default()
    });
    let crash_schedule = FaultPlan::new(
        FaultSpec::default()
            .with_crash("Dst", 7 + seed % 5)
            .with_crash("Src", 15 + seed % 5),
    );
    let crash_dst = crash_schedule.crash_tick("Dst").expect("scheduled");
    let crash_src = crash_schedule.crash_tick("Src").expect("scheduled");

    let src_disk = PeerDisk::new();
    let dst_disk = PeerDisk::new();
    let mut src = course_catalog("Src.course");
    src.attach_journal(src_disk.journal());
    checkpoint(&src_disk, &mut src, &[], &[]);
    let mut dst = course_catalog("Dst.course");
    dst.attach_journal(dst_disk.journal());
    checkpoint(&dst_disk, &mut dst, &[], &[]);

    let mut link = ReliableLink::durable("Dst", plan.clone(), src_disk.journal());
    link.retry = RetryPolicy::none();
    let mut inbox = GramInbox::durable("Src", dst_disk.journal());
    let mut view = replica_view(&dst, "Dst.course");
    let mut pending: Vec<SequencedGram> = Vec::new();

    for tick in 0..ROUNDS {
        if crashing && tick == crash_dst {
            drop(std::mem::take(&mut dst));
            let rec = recover(&dst_disk).expect("receiver recovers");
            dst = rec.catalog;
            inbox = rec
                .inboxes
                .into_iter()
                .find(|(l, _)| l == "Src")
                .map(|(_, i)| i)
                .unwrap_or_else(|| GramInbox::durable("Src", dst_disk.journal()));
            view = replica_view(&dst, "Dst.course");
        }
        if crashing && tick == crash_src {
            drop(std::mem::take(&mut src));
            let rec = recover(&src_disk).expect("sender recovers");
            src = rec.catalog;
            let resume = rec.outboxes.get("Dst").cloned().unwrap_or_default();
            link = resume.resume("Dst", plan.clone(), &src_disk);
            link.retry = RetryPolicy::none();
            pending = resume.pending();
        }

        let row = vec![Value::str(format!("c{tick}")), Value::str("x")];
        src.insert("Src.course", row.clone());
        src.note_join_overlap("Src.course", 0, "Dst.course", 0, ((seed + tick) % 9 + 1) as f64 / 10.0);
        pending.push(link.seal(Updategram::inserts("Dst.course", vec![row])));

        let mut still = Vec::new();
        for g in pending.drain(..) {
            let d = link.ship(&g, &mut inbox, &mut dst, &mut view).expect("ship");
            if !d.acknowledged {
                still.push(g);
            }
        }
        pending = still;

        if tick % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1 {
            checkpoint(&src_disk, &mut src, &[], &[&link]);
            checkpoint(&dst_disk, &mut dst, &[&inbox], &[]);
        }
    }
    let mut rounds = 0;
    while !pending.is_empty() {
        let mut still = Vec::new();
        for g in pending.drain(..) {
            let d = link.ship(&g, &mut inbox, &mut dst, &mut view).expect("ship");
            if !d.acknowledged {
                still.push(g);
            }
        }
        pending = still;
        rounds += 1;
        assert!(rounds < 10_000, "lossy-but-live weather must drain");
    }
    (encode_catalog(&src, 0), encode_catalog(&dst, 0), inbox.applied_count())
}

#[test]
fn crash_run_converges_byte_identically_to_the_crash_free_twin() {
    let seed = crash_seed();
    let (src_base, dst_base, applied_base) = propagation_run(seed, false);
    let (src_crash, dst_crash, applied_crash) = propagation_run(seed, true);
    assert_eq!(src_crash, src_base, "seed {seed}: source catalog diverged");
    assert_eq!(dst_crash, dst_base, "seed {seed}: target catalog diverged");
    assert_eq!(applied_crash, applied_base, "seed {seed}: apply counts differ");
    assert_eq!(applied_crash, 24, "seed {seed}: every gram applied exactly once");
}

#[test]
fn network_level_restart_preserves_query_answers() {
    // Public-API spot check: a durable peer in a PdmsNetwork restarts
    // and queries posed elsewhere cannot tell.
    let mut net = PdmsNetwork::new();
    for (name, title) in [("A", "Logic"), ("B", "Algebra")] {
        let mut p = Peer::new(name);
        let mut r = Relation::new(RelSchema::text("course", &["title"]));
        r.insert(vec![Value::str(title)]);
        p.add_relation(r);
        net.add_peer(p);
    }
    net.add_mapping(
        GlavMapping::parse("m", "B", "A", "m(T) :- B.course(T) ==> m(T) :- A.course(T)")
            .expect("mapping parses"),
    );
    net.enable_durability("B").expect("B is a member");
    net.peer_mut("B").unwrap().insert("course", vec![Value::str("Geometry")]);
    let before = net.query_str("A", "q(T) :- A.course(T)").expect("query");
    let report = net.restart_peer("B").expect("durable restart");
    assert!(report.image_used);
    let after = net.query_str("A", "q(T) :- A.course(T)").expect("query");
    assert_eq!(before.answers, after.answers);
}
