//! Integration: generated HTML pages → MANGROVE extraction → triple store
//! → application views → a PDMS peer (the full "web of structured data"
//! pipeline of the paper's Figure 1).

use revere::mangrove::annotation::extract_statements;
use revere::prelude::*;

#[test]
fn every_generated_truth_fact_is_extracted() {
    let gen = PageGenerator { seed: 11, courses: 8, people: 6, ..Default::default() };
    for page in gen.generate() {
        let (stmts, issues) = extract_statements(&page.html);
        assert!(issues.is_empty(), "{}: {issues:?}", page.url);
        for (s, p, v) in page.truth.iter().chain(page.lies.iter()) {
            assert!(
                stmts
                    .iter()
                    .any(|st| st.subject == *s && st.predicate == *p && st.object == *v),
                "{}: fact ({s}, {p}, {v}) not extracted",
                page.url
            );
        }
    }
}

#[test]
fn publish_pipeline_is_lossless_and_replaces_on_republish() {
    let gen = PageGenerator { seed: 12, courses: 3, people: 3, ..Default::default() };
    let pages = gen.generate();
    let mut m = Mangrove::new(MangroveSchema::department());
    let mut expected = 0;
    for p in &pages {
        let report = m.publish(&p.url, &p.html);
        expected += report.stored;
    }
    assert_eq!(m.store.len(), expected);
    // Republishing everything leaves the store the same size.
    for p in &pages {
        m.publish(&p.url, &p.html);
    }
    assert_eq!(m.store.len(), expected);
}

#[test]
fn cleaning_policies_ranked_by_accuracy_under_heavy_dirt() {
    // With aggressive dirt, prefer-own-source stays perfect while
    // majority degrades — the paper's §2.3 argument for provenance.
    let gen = PageGenerator {
        seed: 13,
        courses: 0,
        people: 12,
        dirt: revere::workload::DirtSpec { conflict_prob: 0.9, secondary_pages: 3 },
    };
    let pages = gen.generate();
    let mut m = Mangrove::new(MangroveSchema::department());
    for p in &pages {
        m.publish(&p.url, &p.html);
    }
    let truth: std::collections::BTreeMap<String, Value> = pages
        .iter()
        .flat_map(|p| p.truth.iter())
        .filter(|(s, pred, _)| pred == "person.phone" && s.starts_with("person/"))
        .filter(|(_, _, _)| true)
        .map(|(s, _, v)| (s.clone(), v.clone()))
        .collect();
    let accuracy = |policy: CleaningPolicy| -> f64 {
        let mut right = 0;
        for (subject, want) in &truth {
            let got = revere::mangrove::clean::resolve(&m.store, subject, "person.phone", &policy);
            if got.first() == Some(want) {
                right += 1;
            }
        }
        right as f64 / truth.len() as f64
    };
    let own = accuracy(CleaningPolicy::PreferOwnSource);
    let majority = accuracy(CleaningPolicy::Majority);
    assert!((own - 1.0).abs() < 1e-9, "own-source accuracy {own}");
    assert!(majority < 1.0, "majority should be fooled at 90% dirt, got {majority}");
}

#[test]
fn mangrove_data_becomes_a_pdms_peer() {
    // Figure 1's data flow: annotated pages feed peer storage, then the
    // PDMS shares them with a differently-structured peer.
    let gen = PageGenerator { seed: 14, courses: 5, people: 3, ..Default::default() };
    let mut m = Mangrove::new(MangroveSchema::department());
    for p in gen.generate() {
        m.publish(&p.url, &p.html);
    }
    // Materialize the calendar view as UW's stored relation.
    let calendar = CourseCalendar::default().render(&m.store);
    let mut uw = Peer::new("UW");
    let mut rel = Relation::new(RelSchema::text("course", &["id", "title", "time", "room"]));
    for row in calendar.iter() {
        rel.insert(row.iter().map(|v| Value::str(v.to_string())).collect());
    }
    uw.add_relation(rel);

    let mut msu = Peer::new("MSU");
    let mut msu_rel = Relation::new(RelSchema::text("offering", &["code", "name", "slot", "venue"]));
    msu_rel.insert(vec![
        Value::str("offering/1"),
        Value::str("Databases at MSU"),
        Value::str("TTh 9:00"),
        Value::str("Hall 2"),
    ]);
    msu.add_relation(msu_rel);

    let mut net = PdmsNetwork::new();
    net.add_peer(uw);
    net.add_peer(msu);
    net.add_mapping(
        GlavMapping::parse(
            "uw_msu",
            "UW",
            "MSU",
            "m(I, T, S, V) :- UW.course(I, T, S, V) ==> m(I, T, S, V) :- MSU.offering(I, T, S, V)",
        )
        .unwrap(),
    );
    let out = net
        .query_str("MSU", "q(N, S) :- MSU.offering(C, N, S, V)")
        .unwrap();
    assert_eq!(out.answers.len(), 6, "5 UW courses + 1 MSU offering:\n{}", out.answers);
}

#[test]
fn crawl_staleness_grows_with_interval_mangrove_stays_instant() {
    for interval in [5u64, 20, 100] {
        let crawl = CrawlBaseline::new(MangroveSchema::department(), interval);
        assert_eq!(crawl.staleness_of_publish_now(), interval);
    }
    // MANGROVE equivalent: publish then render — zero ticks.
    let mut m = Mangrove::new(MangroveSchema::department());
    m.publish(
        "http://u/x",
        r#"<body mg:about="course/x"><h1 mg:tag="course.title">X</h1></body>"#,
    );
    assert_eq!(CourseCalendar::default().render(&m.store).len(), 1);
}
