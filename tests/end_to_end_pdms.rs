//! Integration: PDMS query answering across generated universities and
//! topologies (spanning revere-workload, revere-query, revere-pdms).

use revere::prelude::*;
use revere::storage::Attribute;

/// Build a PDMS from `n` single-relation peers connected by `topology`,
/// every peer holding one course row tagged with its own name.
fn build_network(kind: TopologyKind, n: usize, seed: u64) -> PdmsNetwork {
    let topology = Topology::generate(kind, n, seed);
    let mut net = PdmsNetwork::new();
    for i in 0..n {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        r.insert(vec![Value::str(format!("Course at P{i}")), Value::Int(10 + i as i64)]);
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("mapping parses"),
        );
    }
    net
}

#[test]
fn chain_reaches_every_peer_from_the_far_end() {
    let n = 6;
    let net = build_network(TopologyKind::Chain, n, 0);
    let out = net
        .query_str(&format!("P{}", n - 1), &format!("q(T, E) :- P{}.course(T, E)", n - 1))
        .unwrap();
    assert_eq!(out.answers.len(), n, "{}", out.answers);
    assert_eq!(out.reformulation.peers_reached.len(), n);
}

#[test]
fn star_reaches_every_peer_from_a_leaf() {
    let n = 7;
    let net = build_network(TopologyKind::Star, n, 0);
    let out = net.query_str("P3", "q(T, E) :- P3.course(T, E)").unwrap();
    assert_eq!(out.answers.len(), n);
}

#[test]
fn random_connected_topology_reaches_all() {
    let n = 8;
    let net = build_network(TopologyKind::Random { extra: 3 }, n, 42);
    let out = net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
    assert_eq!(out.answers.len(), n, "{}", out.answers);
}

#[test]
fn every_peer_sees_the_same_global_answer_set() {
    // The paper's symmetry claim: any peer can pose the query in its own
    // vocabulary and reach everyone.
    let n = 5;
    let net = build_network(TopologyKind::Tree, n, 0);
    let mut counts = Vec::new();
    for i in 0..n {
        let out = net
            .query_str(&format!("P{i}"), &format!("q(T, E) :- P{i}.course(T, E)"))
            .unwrap();
        counts.push(out.answers.len());
    }
    assert!(counts.iter().all(|&c| c == n), "{counts:?}");
}

#[test]
fn selection_pushes_through_the_whole_network() {
    let n = 5;
    let net = build_network(TopologyKind::Chain, n, 0);
    // enrollment = 10 + i, so E > 12 keeps peers 3 and 4 only.
    let out = net
        .query_str("P0", "q(T, E) :- P0.course(T, E), E > 12")
        .unwrap();
    assert_eq!(out.answers.len(), 2, "{}", out.answers);
}

#[test]
fn disconnected_component_is_unreachable() {
    let mut net = build_network(TopologyKind::Chain, 4, 0);
    // Add an island peer with no mappings.
    let mut island = Peer::new("Island");
    let mut r = Relation::new(RelSchema::new(
        "course",
        vec![Attribute::text("title"), Attribute::int("enrollment")],
    ));
    r.insert(vec![Value::str("Unreachable"), Value::Int(1)]);
    island.add_relation(r);
    net.add_peer(island);
    let out = net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
    assert_eq!(out.answers.len(), 4);
    assert!(!out.answers.iter().any(|r| r[0] == Value::str("Unreachable")));
}

#[test]
fn university_generator_feeds_real_peers() {
    // Wire two generated universities into a PDMS using their ground
    // truth to author the course mapping (what MatchingAdvisor proposes
    // in the full pipeline).
    let gen = UniversityGenerator { seed: 5, rename_prob: 0.7, rows_per_relation: 8, ..Default::default() };
    let us = gen.generate(2);
    let mut net = PdmsNetwork::new();
    for u in &us {
        let mut p = Peer::new(u.name.clone());
        for name in u.schema.relations.iter().map(|r| r.name.clone()) {
            p.add_relation(u.data.get(&name).unwrap().clone());
        }
        net.add_peer(p);
    }
    // Find each side's (course relation, title attr) from ground truth.
    let course_of = |u: &University| -> (String, String) {
        u.truth
            .attributes
            .iter()
            .find(|(_, v)| v.0 == "course" && v.1 == "title")
            .map(|((r, a), _)| (r.clone(), a.clone()))
            .expect("course.title present")
    };
    let (r0, _) = course_of(&us[0]);
    let (r1, _) = course_of(&us[1]);
    let arity0 = us[0].schema.relation(&r0).unwrap().arity();
    let arity1 = us[1].schema.relation(&r1).unwrap().arity();
    let t0 = us[0].schema.relation(&r0).unwrap().position(&course_of(&us[0]).1).unwrap();
    let t1 = us[1].schema.relation(&r1).unwrap().position(&course_of(&us[1]).1).unwrap();
    let vars = |arity: usize, t: usize, prefix: &str| -> String {
        (0..arity)
            .map(|i| if i == t { "T".to_string() } else { format!("{prefix}{i}") })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mapping_text = format!(
        "m(T) :- {}.{}({}) ==> m(T) :- {}.{}({})",
        us[0].name,
        r0,
        vars(arity0, t0, "A"),
        us[1].name,
        r1,
        vars(arity1, t1, "B"),
    );
    net.add_mapping(
        GlavMapping::parse("m_univ", us[0].name.clone(), us[1].name.clone(), &mapping_text)
            .expect("generated mapping parses"),
    );
    let q = format!(
        "q(T) :- {}.{}({})",
        us[1].name,
        r1,
        vars(arity1, t1, "B")
    );
    let out = net.query_str(&us[1].name, &q).unwrap();
    // Titles from both universities (8 rows each, possibly with repeats).
    assert!(out.answers.len() > 8, "{}", out.answers);
    assert_eq!(out.peers_contacted.len(), 2);
}

#[test]
fn parallel_and_sequential_agree_on_generated_network() {
    let net = build_network(TopologyKind::Random { extra: 2 }, 6, 7);
    let q = parse_query("q(T, E) :- P2.course(T, E)").unwrap();
    let seq = net.query("P2", &q).unwrap();
    let par = net.query_parallel("P2", &q).unwrap();
    let mut a = seq.answers.rows().to_vec();
    let mut b = par.answers.rows().to_vec();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}
