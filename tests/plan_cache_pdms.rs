//! Integration: the PDMS reformulation/plan caches never serve stale
//! answers.
//!
//! Every test drives two networks through the *same* sequence of queries
//! and mutations — one with caching on (the default), one with
//! `caching = false` — and asserts the answers stay byte-identical at
//! every step. The mutations are exactly the ones the cache epochs must
//! notice: adding a mapping, removing a peer, and updategram-driven data
//! maintenance flowing through a peer's catalog.

use revere::prelude::*;
use revere::storage::Attribute;

const QUERIES: [&str; 3] = [
    "q(T, E) :- A.course(T, E)",
    "q(T) :- A.course(T, E), E > 15",
    "q(T, U) :- A.course(T, E), A.course(U, E)",
];

/// A three-peer line `A — B — C`, each peer holding a different-sized
/// `course` relation; mappings are pure renamings along the line. With
/// `last_mapping` false the `B — C` edge is left out (so a test can add
/// it after warming the caches).
fn build(caching: bool, last_mapping: bool) -> PdmsNetwork {
    let mut net = PdmsNetwork::new();
    net.caching = caching;
    for (i, name) in ["A", "B", "C"].iter().enumerate() {
        let mut p = Peer::new(*name);
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        for k in 0..3 + 2 * i {
            r.insert(vec![
                Value::str(format!("Course {k} at {name}")),
                Value::Int((10 + 7 * i + 3 * k) as i64),
            ]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    let edges: &[(&str, &str)] = if last_mapping { &[("A", "B"), ("B", "C")] } else { &[("A", "B")] };
    for (i, (a, b)) in edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{i}"),
                *a,
                *b,
                &format!("m(T, E) :- {a}.course(T, E) ==> m(T, E) :- {b}.course(T, E)"),
            )
            .unwrap(),
        );
    }
    net
}

fn rows(out: &QueryOutcome) -> Vec<Vec<Value>> {
    out.answers.sorted().into_rows()
}

/// Run every probe query on both networks and assert byte-identical
/// answers; returns the total row count (to assert mutations took effect).
fn assert_identical(cached: &PdmsNetwork, plain: &PdmsNetwork, when: &str) -> usize {
    let mut total = 0;
    for q in QUERIES {
        let a = cached.query_str("A", q).expect("cached query runs");
        let b = plain.query_str("A", q).expect("uncached query runs");
        assert_eq!(rows(&a), rows(&b), "{when}: `{q}` diverged from the uncached run");
        total += a.answers.len();
    }
    total
}

#[test]
fn warm_answers_are_byte_identical_and_actually_cached() {
    let cached = build(true, true);
    let plain = build(false, true);
    let cold = assert_identical(&cached, &plain, "cold");
    let warm = assert_identical(&cached, &plain, "warm");
    assert_eq!(cold, warm);
    let stats = cached.cache_stats();
    assert_eq!(stats.reformulation_hits, QUERIES.len(), "second pass should be all hits");
    assert!(stats.plan_hits > 0, "warm pass should reuse plans: {stats:?}");
    // The uncached network must never have populated a cache.
    assert_eq!(plain.cache_stats(), CacheStats::default());
}

#[test]
fn a_no_op_analyze_keeps_warm_caches_warm() {
    let cached = build(true, true);
    let plain = build(false, true);
    assert_identical(&cached, &plain, "cold");
    assert_identical(&cached, &plain, "warm");
    let hits = cached.cache_stats().reformulation_hits;
    assert_eq!(hits, QUERIES.len(), "warm pass should be all hits");
    // `get_mut` pessimistically bumps the epoch (the caller may mutate),
    // so one flush and one re-warming pass are expected.
    cached.peer("B").unwrap().storage.write(|c| {
        let _ = c.get_mut("B.course");
    });
    assert_identical(&cached, &plain, "re-warm after get_mut");
    let hits = cached.cache_stats().reformulation_hits;
    // `analyze` recomputes the stashed statistics and finds them
    // identical: the epoch must hold and the re-warmed caches survive.
    cached.peer("B").unwrap().storage.write(|c| {
        c.analyze();
    });
    assert_identical(&cached, &plain, "after no-op analyze");
    let stats = cached.cache_stats();
    assert_eq!(
        stats.reformulation_hits,
        hits + QUERIES.len(),
        "a no-op analyze flushed warm caches: {stats}"
    );
}

#[test]
fn adding_a_mapping_after_warmup_is_visible_immediately() {
    let mut cached = build(true, false);
    let mut plain = build(false, false);
    let before = assert_identical(&cached, &plain, "before add_mapping");
    for net in [&mut cached, &mut plain] {
        net.try_add_mapping(
            GlavMapping::parse(
                "late",
                "B",
                "C",
                "m(T, E) :- B.course(T, E) ==> m(T, E) :- C.course(T, E)",
            )
            .unwrap(),
        )
        .expect("both endpoints exist");
    }
    let after = assert_identical(&cached, &plain, "after add_mapping");
    assert!(after > before, "C's rows should now reach A ({before} -> {after})");
}

#[test]
fn removing_a_peer_after_warmup_stops_its_contribution() {
    let mut cached = build(true, true);
    let mut plain = build(false, true);
    let before = assert_identical(&cached, &plain, "before remove_peer");
    for net in [&mut cached, &mut plain] {
        assert!(net.remove_peer("C").is_some());
    }
    let after = assert_identical(&cached, &plain, "after remove_peer");
    assert!(after < before, "C's rows should be gone ({before} -> {after})");
}

#[test]
fn updategram_maintenance_after_warmup_invalidates_warm_plans() {
    let cached = build(true, true);
    let plain = build(false, true);
    let before = assert_identical(&cached, &plain, "before updategram");
    // The same maintenance round on each network's copy of peer B: an
    // updategram of new rows flows through `maintain`, which mutates the
    // peer catalog (bumping its stats epoch) while bringing a local
    // materialized view up to date.
    let grams = vec![Updategram::inserts(
        "B.course",
        vec![
            vec![Value::str("late-breaking seminar"), Value::Int(99)],
            vec![Value::str("late-breaking colloquium"), Value::Int(12)],
        ],
    )];
    for net in [&cached, &plain] {
        let mut view = MaterializedView::new(
            "B.popular",
            parse_query("popular(T, E) :- B.course(T, E), E > 50").unwrap(),
        );
        net.peer("B").unwrap().storage.write(|c| {
            view.refresh_full(c).expect("view refreshes");
            maintain(c, &mut view, &grams, None).expect("maintenance applies");
        });
        assert_eq!(view.len(), 1, "the view saw the new row too");
    }
    let after = assert_identical(&cached, &plain, "after updategram");
    assert!(after > before, "inserted rows should reach A ({before} -> {after})");
}
