//! Integration: end-to-end observability (spanning revere-util's obs
//! substrate, revere-query evaluation, and revere-pdms networking).
//!
//! Two contracts, both seed-parametric:
//!
//! 1. **Golden determinism** — a fixed seed produces a byte-identical
//!    Chrome trace across two fresh runs. The trace clock is logical
//!    (ticks), wall-clock never appears in the export, so this holds on
//!    any machine at any load.
//! 2. **Answer invariance** — enabling observability never changes what a
//!    query returns: answers, completeness, and message accounting are
//!    identical with tracing on and off.
//!
//! The seed comes from `REVERE_TRACE_SEED` (default 1003);
//! `scripts/verify.sh` runs this suite under several seeds.

use revere::pdms::obs::names;
use revere::prelude::*;
use revere::storage::Attribute;

/// The seed under test: `REVERE_TRACE_SEED` or 1003.
fn trace_seed() -> u64 {
    std::env::var("REVERE_TRACE_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1003)
}

/// A 10-peer random overlay under a moderate chaos plan: enough faults
/// that retries, drops, and unreachable peers appear in the trace.
fn build_network(seed: u64) -> PdmsNetwork {
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, 10, seed);
    let mut net = PdmsNetwork::new();
    for i in 0..10 {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        for k in 0..3 {
            r.insert(vec![
                Value::str(format!("Course {k} at P{i}")),
                Value::Int((10 + i * 3 + k) as i64),
            ]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("mapping parses"),
        );
    }
    net.faults = FaultPlan::new(FaultSpec::chaos(seed, 0.2));
    net
}

const QUERIES: [&str; 2] =
    ["q(T, E) :- P0.course(T, E)", "q(T) :- P0.course(T, E), E > 20"];

/// Run the workload with tracing enabled, returning the network.
fn traced_run(seed: u64) -> PdmsNetwork {
    let mut net = build_network(seed);
    net.obs = Obs::enabled();
    for q in QUERIES {
        net.query_str("P0", q).expect("traced query runs");
    }
    net
}

#[test]
fn golden_fixed_seed_trace_is_byte_identical() {
    let seed = trace_seed();
    let a = traced_run(seed);
    let b = traced_run(seed);
    let (ta, tb) = (a.obs.tracer().unwrap(), b.obs.tracer().unwrap());
    assert_eq!(ta.chrome_trace(), tb.chrome_trace(), "chrome trace diverged under seed {seed}");
    assert_eq!(ta.render_tree(), tb.render_tree(), "span tree diverged under seed {seed}");
    assert_eq!(
        a.obs.metrics().unwrap().snapshot().to_string(),
        b.obs.metrics().unwrap().snapshot().to_string(),
        "metrics diverged under seed {seed}"
    );
}

#[test]
fn trace_covers_all_three_layers() {
    let net = traced_run(trace_seed());
    let spans = net.obs.tracer().unwrap().spans();
    for name in ["pdms.query", "pdms.reformulate", "pdms.fetch", "pdms.eval.disjunct", "eval.step"]
    {
        assert!(spans.iter().any(|s| s.name == name), "no {name} span recorded");
    }
    // Every span closed, and parents opened before their children.
    for s in &spans {
        assert!(s.end_tick.is_some(), "span {} never finished", s.name);
        if let Some(pid) = s.parent {
            let parent = spans.iter().find(|p| p.id == pid).expect("parent recorded");
            assert!(parent.start_tick <= s.start_tick, "{} starts before parent", s.name);
        }
    }
    // The export is one JSON array with one object per span.
    let json = net.obs.tracer().unwrap().chrome_trace();
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), spans.len());
    // Wall-clock stays out of the deterministic export.
    assert!(!json.contains("wall"), "wall-clock leaked into the trace export");
}

#[test]
fn tracing_never_changes_answers() {
    let seed = trace_seed();
    for q in QUERIES {
        let plain = build_network(seed).query_str("P0", q).expect("query runs");
        let mut net = build_network(seed);
        net.obs = Obs::enabled();
        let traced = net.query_str("P0", q).expect("query runs");
        assert_eq!(plain.answers, traced.answers, "answers changed under tracing: {q}");
        assert_eq!(
            plain.completeness, traced.completeness,
            "completeness changed under tracing: {q}"
        );
        assert_eq!(plain.messages, traced.messages, "messages changed under tracing: {q}");
        assert_eq!(
            plain.peers_contacted, traced.peers_contacted,
            "contacted set changed under tracing: {q}"
        );
    }
}

#[test]
fn feedback_runs_are_byte_identical_too() {
    // The estimator feedback loop writes learned statistics during query
    // execution; both the learned store and the trace it leaves behind
    // must be deterministic. A hair-trigger threshold makes every
    // complete plan feed back; faults are disabled so every fetch is
    // complete and the loop fires on each join.
    let seed = trace_seed();
    let run = || {
        let mut net = build_network(seed);
        net.faults = FaultPlan::default();
        net.replan_q_error = Some(0.5);
        net.obs = Obs::enabled();
        let join = "q(T, U) :- P0.course(T, E), P0.course(U, E)";
        for q in QUERIES.iter().copied().chain([join, join]) {
            net.query_str("P0", q).expect("query runs");
        }
        net
    };
    let (a, b) = (run(), run());
    let dump = a.snapshot_all().join_stats().dump();
    assert!(!dump.is_empty(), "feedback never fired");
    assert_eq!(dump, b.snapshot_all().join_stats().dump(), "learned stats diverged");
    assert_eq!(
        a.obs.tracer().unwrap().chrome_trace(),
        b.obs.tracer().unwrap().chrome_trace(),
        "feedback made the trace nondeterministic under seed {seed}"
    );
    assert_eq!(
        a.obs.metrics().unwrap().snapshot().to_string(),
        b.obs.metrics().unwrap().snapshot().to_string(),
        "feedback metrics diverged under seed {seed}"
    );
}

#[test]
fn parallel_and_sequential_agree_under_tracing() {
    // query_parallel records no per-worker spans (span order would depend
    // on scheduling) but must still return the sequential answers.
    let seed = trace_seed();
    let mut net = build_network(seed);
    net.obs = Obs::enabled();
    for q in QUERIES {
        let seq = net.query_str("P0", q).expect("query runs");
        let parsed = parse_query(q).expect("query parses");
        let par = net.query_parallel("P0", &parsed).expect("query runs");
        let (mut a, mut b) = (seq.answers.rows().to_vec(), par.answers.rows().to_vec());
        a.sort();
        b.sort();
        assert_eq!(a, b, "parallel diverged from sequential under tracing: {q}");
    }
    let spans = net.obs.tracer().unwrap().spans();
    assert!(spans.iter().any(|s| s.name == "pdms.query_parallel"));
    assert!(spans.iter().all(|s| s.name != "pdms.worker"));
}

#[test]
fn parallel_path_emits_the_same_eval_counters_as_sequential() {
    // Regression: `query.eval.*` accounting (notably the
    // `query.eval.step_bindings` histogram behind EXPLAIN ANALYZE) used
    // to be emitted only on the traced sequential path; the parallel
    // workers evaluated with a bare `eval_cq_bag_planned` and the
    // counters silently read zero. Twin networks, same seed, no faults
    // (so both paths evaluate every disjunct): the eval counters must
    // agree exactly, counter for counter and histogram for histogram.
    let seed = trace_seed();
    let run = |parallel: bool| {
        let mut net = build_network(seed);
        net.faults = FaultPlan::default();
        net.obs = Obs::enabled();
        for q in QUERIES {
            if parallel {
                let parsed = parse_query(q).expect("query parses");
                net.query_parallel("P0", &parsed).expect("query runs");
            } else {
                net.query_str("P0", q).expect("query runs");
            }
        }
        net
    };
    let (seq, par) = (run(false), run(true));
    let (sm, pm) = (seq.obs.metrics().unwrap(), par.obs.metrics().unwrap());
    for name in [
        names::QUERY_EVAL_STEPS_EXECUTED,
        names::QUERY_EVAL_ROWS_SCANNED,
        names::QUERY_EVAL_ROWS_BUILT,
        names::QUERY_EVAL_ROWS_PROBED,
    ] {
        assert!(sm.counter(name) > 0, "sequential path never emitted {name}");
        assert_eq!(sm.counter(name), pm.counter(name), "counter {name} diverged");
    }
    let sh = sm.histogram(names::QUERY_EVAL_STEP_BINDINGS).expect("sequential histogram exists");
    let ph = pm.histogram(names::QUERY_EVAL_STEP_BINDINGS).expect("parallel path lost step_bindings");
    assert_eq!((sh.count, sh.sum, sh.min, sh.max), (ph.count, ph.sum, ph.min, ph.max));
}

#[test]
fn every_emitted_metric_name_is_registered() {
    // Counter-name lint: a representative traced workload (chaos fetches,
    // retries, feedback, parallel eval) may only emit names canonicalized
    // in `obs::names` — strays fail here before they ossify.
    let seed = trace_seed();
    let mut net = build_network(seed);
    net.replan_q_error = Some(0.5);
    net.obs = Obs::enabled();
    for q in QUERIES {
        net.query_str("P0", q).expect("query runs");
    }
    let snap = net.obs.metrics().unwrap().snapshot();
    assert!(!snap.counters.is_empty(), "workload emitted no counters");
    let strays = names::unregistered(&snap);
    assert!(strays.is_empty(), "unregistered metric names emitted: {strays:?}");
    for name in snap.counters.keys().chain(snap.histograms.keys()) {
        assert!(names::follows_scheme(name), "metric {name} breaks layer.noun_verb scheme");
    }
}
