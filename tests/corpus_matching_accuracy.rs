//! Integration: the corpus tools on generated universities — including
//! the LSD accuracy-band check (§4.3.2: "matching accuracies in the
//! 70%-90% range") measured on held-out schemas.

use revere::corpus::corpus::KnownMapping;
use revere::prelude::*;

/// Train a classifier on `train_n` generated universities and evaluate
/// matching accuracy on `test_pairs` held-out pairs.
fn matching_accuracy(rename_prob: f64, italian: f64, learners: Vec<Learner>) -> f64 {
    let gen = UniversityGenerator {
        seed: 2003,
        rename_prob,
        italian_fraction: italian,
        rows_per_relation: 12,
        ..Default::default()
    };
    let universities = gen.generate(16);
    let (train, test) = universities.split_at(12);
    let mut corpus = Corpus::new();
    for u in train {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        corpus.add(e);
    }
    let matcher =
        MatchingAdvisor::new(MultiStrategyClassifier::train(&corpus)).with_learners(learners);
    let mut total_acc = 0.0;
    let mut pairs = 0;
    for w in test.chunks(2) {
        if w.len() < 2 {
            break;
        }
        let (a, b) = (&w[0], &w[1]);
        let proposed = matcher.match_schemas(&a.schema, &a.data, &b.schema, &b.data);
        let truth = a.truth.correspondences(&b.truth);
        if truth.is_empty() {
            continue;
        }
        total_acc += MatchQuality::evaluate(&proposed, &truth).accuracy;
        pairs += 1;
    }
    total_acc / pairs as f64
}

#[test]
fn multi_strategy_matching_is_strong_on_moderate_divergence() {
    let acc = matching_accuracy(0.5, 0.0, vec![Learner::Meta]);
    assert!(acc >= 0.7, "meta accuracy {acc:.2} below the paper's band");
}

#[test]
fn multi_strategy_is_robust_under_hard_divergence() {
    // Full renaming + a fifth of peers in Italian. On this synthetic
    // workload the value learner is near-ceiling (see EXPERIMENTS.md E6),
    // so the check is robustness: the meta-combination stays in the
    // paper's band and within a small margin of the best single learner,
    // and does not collapse with the name learner.
    let meta = matching_accuracy(1.0, 0.2, vec![Learner::Meta]);
    let name_only = matching_accuracy(1.0, 0.2, vec![Learner::Name]);
    let value_only = matching_accuracy(1.0, 0.2, vec![Learner::Value]);
    let structure_only = matching_accuracy(1.0, 0.2, vec![Learner::Structure]);
    let best = value_only.max(structure_only).max(name_only);
    assert!(meta >= 0.7, "meta accuracy {meta:.2} fell out of the band");
    assert!(
        meta >= best - 0.15,
        "meta {meta:.2} far below best single {best:.2}"
    );
}

#[test]
fn known_mapping_propagation_grows_training_signal() {
    let gen = UniversityGenerator { seed: 9, rename_prob: 0.8, ..Default::default() };
    let us = gen.generate(3);
    let mut corpus = Corpus::new();
    // Only the first university is labeled.
    let mut e0 = CorpusEntry::schema_only(us[0].schema.clone());
    e0.data = us[0].data.clone();
    e0.labels = us[0].truth.attributes.clone().into_iter().collect();
    corpus.add(e0);
    let mut e1 = CorpusEntry::schema_only(us[1].schema.clone());
    e1.data = us[1].data.clone();
    corpus.add(e1);
    let before = corpus.labeled_elements().count();
    // A confirmed mapping between 0 and 1 (as the PDMS would produce).
    corpus.add_known_mapping(KnownMapping {
        left: 0,
        right: 1,
        pairs: us[0].truth.correspondences(&us[1].truth),
    });
    let added = corpus.propagate_labels();
    assert!(added > 0);
    assert_eq!(corpus.labeled_elements().count(), before + added);
}

#[test]
fn design_advisor_ranks_same_domain_schemas_on_generated_corpus() {
    let gen = UniversityGenerator { seed: 21, rename_prob: 0.4, ..Default::default() };
    let us = gen.generate(8);
    let mut corpus = Corpus::new();
    for u in &us {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        corpus.add(e);
    }
    let advisor = DesignAdvisor::new(
        &corpus,
        MatchingAdvisor::new(MultiStrategyClassifier::train(&corpus)),
    );
    // Fragment: a fresh university's course relation only.
    let fresh = UniversityGenerator { seed: 99, rename_prob: 0.4, ..Default::default() }
        .generate_one(0);
    let course_rel = fresh
        .truth
        .relations
        .iter()
        .find(|(_, c)| *c == "course")
        .map(|(r, _)| r.clone())
        .expect("course relation");
    let fragment = DbSchema::new("draft")
        .with(fresh.schema.relation(&course_rel).unwrap().clone());
    let mut data = Catalog::new();
    data.register(fresh.data.get(&course_rel).unwrap().clone());
    let ranking = advisor.rank(&corpus, &fragment, &data);
    assert_eq!(ranking.len(), 8);
    assert!(ranking[0].fit > 0.1, "top fit {:.3}", ranking[0].fit);
    assert!(ranking[0].mapped_elements >= 2);
}

#[test]
fn keyword_queries_execute_on_the_foreign_schema() {
    // §4.4 end to end: propose a query from keywords, then actually run it
    // on the unfamiliar university's data.
    let gen = UniversityGenerator { seed: 31, rename_prob: 0.6, rows_per_relation: 6, ..Default::default() };
    let us = gen.generate(9);
    let (train, test) = us.split_at(8);
    let mut corpus = Corpus::new();
    for u in train {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        corpus.add(e);
    }
    let reformulator = QueryReformulator::new(MultiStrategyClassifier::train(&corpus));
    let target = &test[0];
    let proposals = reformulator.propose(&["title"], &target.schema, &target.data);
    assert!(!proposals.is_empty());
    let top = &proposals[0];
    let result = eval_cq(&top.query, &target.data).expect("proposed query runs");
    assert!(!result.is_empty(), "query {} returned nothing", top.query);
    // The binding should be the course-title element (per ground truth).
    let (rel, attr) = &top.bindings[0].1;
    assert_eq!(
        target.truth.concept_of(rel, attr).map(|(_, a)| a.as_str()),
        Some("title"),
        "keyword bound to {rel}.{attr}"
    );
}

#[test]
fn corpus_matcher_beats_the_corpus_free_instance_baseline() {
    // The GLUE-style instance matcher needs no corpus (the bootstrap
    // case) but the corpus-trained advisor should do at least as well
    // once training schemas exist.
    use revere::corpus::match_by_instances;
    let gen = UniversityGenerator {
        seed: 2003,
        rename_prob: 1.0,
        italian_fraction: 0.2,
        rows_per_relation: 12,
        ..Default::default()
    };
    let universities = gen.generate(16);
    let (train, test) = universities.split_at(12);
    let mut corpus = Corpus::new();
    for u in train {
        let mut e = CorpusEntry::schema_only(u.schema.clone());
        e.data = u.data.clone();
        e.labels = u.truth.attributes.clone().into_iter().collect();
        corpus.add(e);
    }
    let matcher = MatchingAdvisor::new(MultiStrategyClassifier::train(&corpus));
    let (mut corpus_acc, mut instance_acc) = (0.0, 0.0);
    let mut pairs = 0;
    for w in test.chunks(2) {
        if w.len() < 2 {
            break;
        }
        let (a, b) = (&w[0], &w[1]);
        let truth = a.truth.correspondences(&b.truth);
        if truth.is_empty() {
            continue;
        }
        let via_corpus = matcher.match_schemas(&a.schema, &a.data, &b.schema, &b.data);
        let via_instances = match_by_instances(&a.schema, &a.data, &b.schema, &b.data, 0.4);
        corpus_acc += MatchQuality::evaluate(&via_corpus, &truth).accuracy;
        instance_acc += MatchQuality::evaluate(&via_instances, &truth).accuracy;
        pairs += 1;
    }
    let (c, i) = (corpus_acc / pairs as f64, instance_acc / pairs as f64);
    assert!(i > 0.2, "instance baseline should be better than chance: {i:.2}");
    assert!(
        c >= i - 0.05,
        "corpus matcher {c:.2} should not lose to the corpus-free baseline {i:.2}"
    );
}
