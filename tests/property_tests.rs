//! Property-based tests over the core data structures and algorithms.
//!
//! These pin down the invariants the paper's machinery rests on: the XML
//! substrate round-trips, conjunctive-query containment behaves like a
//! preorder, minimization preserves semantics on real data, MiniCon
//! rewritings are sound, and incremental view maintenance agrees with
//! recomputation on arbitrary updategram batches.

use proptest::prelude::*;
use revere::pdms::{maintain, MaintenanceChoice, MaterializedView, Updategram};
use revere::prelude::*;
use revere::query::unfold::{unfold_with, ViewDef};
use revere::query::{eval_cq, rewrite_using_views};
use revere::storage::{Catalog, Relation};
use revere::xml::{parse as parse_xml, to_string, Document};

// ---------------------------------------------------------------------
// XML strategies
// ---------------------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Printable text without XML-significant characters; the writer
    // escapes &<> itself, which roundtrip_escapes covers separately.
    "[ -~&&[^<>&\"']]{1,20}".prop_map(|s| s.trim().to_string()).prop_filter("non-empty", |s| !s.is_empty())
}

/// Generate a random document with bounded depth and fanout.
fn arb_document() -> impl Strategy<Value = Document> {
    let leaf = (arb_name(), arb_text()).prop_map(|(n, t)| {
        let mut d = Document::new(n);
        d.add_text(d.root(), t);
        d
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (arb_name(), prop::collection::vec(inner, 1..4), prop::collection::vec((arb_name(), arb_text()), 0..3))
            .prop_map(|(name, children, attrs)| {
                let mut d = Document::new(name);
                let root = d.root();
                for (k, v) in attrs {
                    d.set_attr(root, k, v);
                }
                for child in children {
                    // Deep-copy the child document under the new root.
                    fn copy(src: &Document, sn: revere::xml::NodeId, dst: &mut Document, dn: revere::xml::NodeId) {
                        for &c in src.children(sn) {
                            match &src.node(c).kind {
                                revere::xml::NodeKind::Text(t) => {
                                    dst.add_text(dn, t.clone());
                                }
                                revere::xml::NodeKind::Element { name, attrs } => {
                                    let e = dst.add_element(dn, name.clone());
                                    for (k, v) in attrs {
                                        dst.set_attr(e, k.clone(), v.clone());
                                    }
                                    copy(src, c, dst, e);
                                }
                            }
                        }
                    }
                    let e = d.add_element(root, child.name(child.root()).unwrap().to_string());
                    if let revere::xml::NodeKind::Element { attrs, .. } = &child.node(child.root()).kind {
                        for (k, v) in attrs.clone() {
                            d.set_attr(e, k, v);
                        }
                    }
                    copy(&child, child.root(), &mut d, e);
                }
                d
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_roundtrip(doc in arb_document()) {
        let text = to_string(&doc);
        let back = parse_xml(&text).expect("writer output parses");
        prop_assert!(back.structurally_eq(&doc), "roundtrip changed the tree:\n{text}");
    }

    #[test]
    fn xml_escaping_roundtrips(raw in "[ -~]{0,24}") {
        let mut d = Document::new("r");
        let root = d.root();
        if !raw.trim().is_empty() {
            d.add_text(root, raw.clone());
            d.set_attr(root, "a", raw.clone());
            let back = parse_xml(&to_string(&d)).expect("escaped output parses");
            prop_assert_eq!(back.text_content(back.root()), raw.clone());
            prop_assert_eq!(back.attr(back.root(), "a"), Some(raw.as_str()));
        }
    }
}

// ---------------------------------------------------------------------
// Value ordering
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1e9f64..1e9).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_ordering_is_total_and_antisymmetric(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot form): sorting never panics and is stable
        // under re-sorting.
        let mut v = vec![a.clone(), b.clone(), c.clone()];
        v.sort();
        let w = {
            let mut w = v.clone();
            w.sort();
            w
        };
        prop_assert_eq!(&v, &w);
        // Eq consistent with Ord.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }
}

// ---------------------------------------------------------------------
// Conjunctive queries: containment, minimization, rewriting
// ---------------------------------------------------------------------

/// A random small database over relations r/2 and s/2 with a tiny value
/// domain (so joins actually hit).
fn arb_db() -> impl Strategy<Value = Catalog> {
    let pair = (0..4i64, 0..4i64);
    (
        prop::collection::vec(pair.clone(), 0..12),
        prop::collection::vec(pair, 0..12),
    )
        .prop_map(|(rs, ss)| {
            let mut cat = Catalog::new();
            let mut r = Relation::new(RelSchema::text("r", &["a", "b"]));
            for (x, y) in rs {
                r.insert(vec![Value::Int(x), Value::Int(y)]);
            }
            let mut s = Relation::new(RelSchema::text("s", &["a", "b"]));
            for (x, y) in ss {
                s.insert(vec![Value::Int(x), Value::Int(y)]);
            }
            cat.register(r.distinct());
            cat.register(s.distinct());
            cat
        })
}

/// A random safe conjunctive query over r/2, s/2 with ≤3 atoms and ≤4 vars.
fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = ("[rs]", 0..4usize, 0..4usize);
    (prop::collection::vec(atom, 1..4), 0..4usize)
        .prop_map(|(atoms, head_var)| {
            let vars = ["X", "Y", "Z", "W"];
            let body: Vec<String> = atoms
                .iter()
                .map(|(rel, v1, v2)| format!("{rel}({}, {})", vars[*v1], vars[*v2]))
                .collect();
            // Head var must appear in the body.
            let used: Vec<&str> = atoms
                .iter()
                .flat_map(|(_, v1, v2)| [vars[*v1], vars[*v2]])
                .collect();
            let hv = if used.contains(&vars[head_var]) { vars[head_var] } else { used[0] };
            parse_query(&format!("q({hv}) :- {}", body.join(", "))).expect("generated query is safe")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn containment_is_reflexive(q in arb_query()) {
        prop_assert!(contained_in(&q, &q));
    }

    #[test]
    fn containment_implies_answer_inclusion(q1 in arb_query(), q2 in arb_query(), db in arb_db()) {
        if contained_in(&q1, &q2) {
            let a1 = eval_cq(&q1, &db).unwrap();
            let a2 = eval_cq(&q2, &db).unwrap();
            for row in a1.iter() {
                prop_assert!(
                    a2.contains(row),
                    "containment said {} ⊆ {} but {:?} only in the first",
                    q1, q2, row
                );
            }
        }
    }

    #[test]
    fn minimization_preserves_answers(q in arb_query(), db in arb_db()) {
        let m = minimize(&q);
        prop_assert!(m.body.len() <= q.body.len());
        let orig = eval_cq(&q, &db).unwrap();
        let mind = eval_cq(&m, &db).unwrap();
        let mut a = orig.rows().to_vec();
        let mut b = mind.rows().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "minimize changed the answers of {}", q);
    }

    #[test]
    fn minicon_rewritings_are_sound_on_data(q in arb_query(), db in arb_db()) {
        // Views: projections of r and s exposing both columns.
        let views = [
            ViewDef::from_query(&parse_query("v_r(A, B) :- r(A, B)").unwrap()),
            ViewDef::from_query(&parse_query("v_s(A, B) :- s(A, B)").unwrap()),
        ];
        let rewritings = rewrite_using_views(&q, &views);
        // Materialize the views.
        let mut vcat = Catalog::new();
        for (vname, def) in [("v_r", "v_r(A, B) :- r(A, B)"), ("v_s", "v_s(A, B) :- s(A, B)")] {
            let mut rel = eval_cq(&parse_query(def).unwrap(), &db).unwrap();
            rel.schema.name = vname.to_string();
            vcat.register(rel);
        }
        let direct = eval_cq(&q, &db).unwrap();
        for rw in &rewritings {
            let via = eval_cq(rw, &vcat).unwrap();
            for row in via.iter() {
                prop_assert!(
                    direct.contains(row),
                    "unsound: {} produced {:?} not in {}",
                    rw, row, q
                );
            }
        }
        // With full-fidelity views, some rewriting must exist and the
        // union must be complete.
        prop_assert!(!rewritings.is_empty(), "no rewriting for {}", q);
        let mut union_rows: Vec<_> = rewritings
            .iter()
            .flat_map(|rw| eval_cq(rw, &vcat).unwrap().into_rows())
            .collect();
        union_rows.sort();
        union_rows.dedup();
        let mut want = direct.rows().to_vec();
        want.sort();
        prop_assert_eq!(union_rows, want, "rewriting union incomplete for {}", q);
    }

    #[test]
    fn unfolding_preserves_answers(q in arb_query(), db in arb_db()) {
        // Define virtual relations over the base and unfold them back.
        let defs = [
            ViewDef::from_query(&parse_query("r(A, B) :- base_r(A, B)").unwrap()),
            ViewDef::from_query(&parse_query("s(A, B) :- base_s(A, B)").unwrap()),
        ];
        let mut base = Catalog::new();
        let mut r = db.get("r").unwrap().clone();
        r.schema.name = "base_r".into();
        let mut s = db.get("s").unwrap().clone();
        s.schema.name = "base_s".into();
        base.register(r);
        base.register(s);
        let unfolded = unfold_with(&q, &defs, 8);
        prop_assert_eq!(unfolded.len(), 1);
        let a = eval_cq(&q, &db).unwrap();
        let b = eval_cq(&unfolded[0], &base).unwrap();
        let mut ra = a.rows().to_vec();
        let mut rb = b.rows().to_vec();
        ra.sort();
        rb.sort();
        prop_assert_eq!(ra, rb);
    }
}

// ---------------------------------------------------------------------
// Updategrams: incremental maintenance == recompute
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_maintenance_matches_recompute(
        db in arb_db(),
        inserts in prop::collection::vec((0..4i64, 0..4i64), 0..6),
        delete_count in 0..4usize,
        view_q in prop_oneof![
            Just("v(A, C) :- r(A, B), s(B, C)"),
            Just("v(B) :- r(A, B)"),
            Just("v(A, C) :- r(A, B), r(B, C)"),
        ],
    ) {
        let def = parse_query(view_q).unwrap();
        let mut c1 = db.clone();
        let mut c2 = db;
        let mut v1 = MaterializedView::new("v", def.clone());
        let mut v2 = MaterializedView::new("v", def);
        v1.refresh_full(&c1).unwrap();
        v2.refresh_full(&c2).unwrap();

        // Deletes drawn from existing rows; inserts arbitrary.
        let existing: Vec<Vec<Value>> = c1.get("r").unwrap().rows().to_vec();
        let deletes: Vec<Vec<Value>> = existing.into_iter().take(delete_count).collect();
        let gram = Updategram {
            relation: "r".into(),
            insert: inserts
                .iter()
                .map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)])
                .collect(),
            delete: deletes,
        };
        maintain(&mut c1, &mut v1, std::slice::from_ref(&gram), Some(MaintenanceChoice::Incremental)).unwrap();
        maintain(&mut c2, &mut v2, std::slice::from_ref(&gram), Some(MaintenanceChoice::Recompute)).unwrap();
        let r1 = v1.as_relation();
        let r2 = v2.as_relation();
        prop_assert_eq!(r1.rows(), r2.rows(), "divergence after {:?}", gram);
    }
}

// ---------------------------------------------------------------------
// Corpus text utilities
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stemming_is_idempotent(word in "[a-z]{1,14}") {
        use revere::corpus::text::stem;
        let once = stem(&word);
        prop_assert_eq!(stem(&once), once.clone());
        // Stems never grow.
        prop_assert!(once.len() <= word.len() + 1, "{word} -> {once}");
    }

    #[test]
    fn name_similarity_is_bounded_and_reflexive(a in "[a-z_]{1,12}", b in "[a-z_]{1,12}") {
        use revere::corpus::text::{name_similarity, SynonymTable};
        let syn = SynonymTable::default_domain();
        let s = name_similarity(&a, &b, &syn);
        prop_assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
        prop_assert_eq!(name_similarity(&a, &a, &syn), 1.0);
    }

    #[test]
    fn edit_distance_triangle_inequality(
        a in "[a-z]{0,8}",
        b in "[a-z]{0,8}",
        c in "[a-z]{0,8}",
    ) {
        use revere::corpus::text::edit_distance;
        prop_assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert_eq!(edit_distance(&a, &a), 0);
    }
}

// ---------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_topologies_are_connected(n in 1usize..40, seed in 0u64..1000, extra in 0usize..5) {
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Star,
            TopologyKind::Tree,
            TopologyKind::Random { extra },
        ] {
            let t = Topology::generate(kind, n, seed);
            prop_assert!(t.is_connected(), "{kind:?} n={n} seed={seed} disconnected");
            prop_assert!(t.mapping_count() <= n.saturating_sub(1) + extra);
            prop_assert!(t.diameter().is_some());
        }
    }
}

// ---------------------------------------------------------------------
// Triple store
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn triple_store_republish_is_idempotent(
        facts in prop::collection::vec(("[a-c]", "[p-r]", "[x-z]"), 0..10),
    ) {
        use revere::storage::TripleStore;
        let mut store = TripleStore::new();
        let stmts: Vec<(String, String, Value)> = facts
            .iter()
            .map(|(s, p, o)| (s.clone(), p.clone(), Value::str(o.clone())))
            .collect();
        store.republish("src", stmts.clone());
        let first = store.len();
        store.republish("src", stmts.clone());
        prop_assert_eq!(store.len(), first);
        // Indexed pattern query agrees with a full scan for every subject.
        for (s, _, _) in &stmts {
            let indexed = store.query((Some(s), None, None)).len();
            let scanned = store
                .iter()
                .filter(|t| &t.subject == s)
                .count();
            prop_assert_eq!(indexed, scanned);
        }
    }
}
