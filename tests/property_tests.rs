//! Property-based tests over the core data structures and algorithms.
//!
//! These pin down the invariants the paper's machinery rests on: the XML
//! substrate round-trips, conjunctive-query containment behaves like a
//! preorder, minimization preserves semantics on real data, MiniCon
//! rewritings are sound, and incremental view maintenance agrees with
//! recomputation on arbitrary updategram batches.
//!
//! Inputs are drawn from the in-repo harness (`revere_util::prop`):
//! closure-driven generation, a fixed case count per property, seeded and
//! shrink-free — a failure prints the case seed to reproduce it.

use revere::pdms::{maintain, MaintenanceChoice, MaterializedView, Updategram};
use revere::prelude::*;
use revere::query::unfold::{unfold_with, ViewDef};
use revere::query::{eval_cq, rewrite_using_views};
use revere::storage::{Catalog, Relation};
use revere::xml::{parse as parse_xml, to_string, Document, NodeId};
use revere_util::prop::{forall, Gen};
use revere_util::RngExt;

// ---------------------------------------------------------------------
// XML generators
// ---------------------------------------------------------------------

/// An XML name: `[a-z][a-z0-9]{0,6}`.
fn gen_name(g: &mut Gen) -> String {
    let mut s = g.lowercase(1..2);
    s.push_str(&g.string_from("abcdefghijklmnopqrstuvwxyz0123456789", 0..7));
    s
}

/// Printable text without XML-significant characters; the writer escapes
/// `&<>` itself, which `xml_escaping_roundtrips` covers separately.
fn gen_text(g: &mut Gen) -> String {
    let alphabet: String = (' '..='~').filter(|c| !"<>&\"'".contains(*c)).collect();
    loop {
        let s = g.string_from(&alphabet, 1..21).trim().to_string();
        if !s.is_empty() {
            return s;
        }
    }
}

/// Fill `node`: either a text leaf, or attributes plus 1–3 child elements
/// recursively (bounded depth and fanout, like the proptest original).
fn gen_subtree(g: &mut Gen, d: &mut Document, node: NodeId, depth: u32) {
    if depth == 0 || g.random_bool(0.3) {
        let t = gen_text(g);
        d.add_text(node, t);
        return;
    }
    for _ in 0..g.random_range(0..3usize) {
        let (k, v) = (gen_name(g), gen_text(g));
        d.set_attr(node, k, v);
    }
    for _ in 0..g.random_range(1..4usize) {
        let e = d.add_element(node, gen_name(g));
        gen_subtree(g, d, e, depth - 1);
    }
}

/// A random document with bounded depth and fanout.
fn gen_document(g: &mut Gen) -> Document {
    let mut d = Document::new(gen_name(g));
    let root = d.root();
    gen_subtree(g, &mut d, root, 3);
    d
}

#[test]
fn xml_roundtrip() {
    forall(64, |g| {
        let doc = gen_document(g);
        let text = to_string(&doc);
        let back = parse_xml(&text).expect("writer output parses");
        assert!(back.structurally_eq(&doc), "roundtrip changed the tree:\n{text}");
    });
}

#[test]
fn xml_escaping_roundtrips() {
    let printable: String = (' '..='~').collect();
    forall(64, |g| {
        let raw = g.string_from(&printable, 0..25);
        if raw.trim().is_empty() {
            return;
        }
        let mut d = Document::new("r");
        let root = d.root();
        d.add_text(root, raw.clone());
        d.set_attr(root, "a", raw.clone());
        let back = parse_xml(&to_string(&d)).expect("escaped output parses");
        assert_eq!(back.text_content(back.root()), raw);
        assert_eq!(back.attr(back.root(), "a"), Some(raw.as_str()));
    });
}

// ---------------------------------------------------------------------
// Value ordering
// ---------------------------------------------------------------------

fn gen_value(g: &mut Gen) -> Value {
    match g.random_range(0..5u8) {
        0 => Value::Null,
        1 => Value::Bool(g.random_bool(0.5)),
        2 => Value::Int(g.random_range(i32::MIN as i64..i32::MAX as i64 + 1)),
        3 => Value::Float(g.random_range(-1e9f64..1e9)),
        _ => Value::Str(g.lowercase(0..9)),
    }
}

#[test]
fn value_ordering_is_total_and_antisymmetric() {
    forall(256, |g| {
        use std::cmp::Ordering;
        let (a, b, c) = (gen_value(g), gen_value(g), gen_value(g));
        // Antisymmetry.
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot form): sorting never panics and is stable
        // under re-sorting.
        let mut v = vec![a.clone(), b.clone(), c.clone()];
        v.sort();
        let w = {
            let mut w = v.clone();
            w.sort();
            w
        };
        assert_eq!(&v, &w);
        // Eq consistent with Ord.
        assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    });
}

// ---------------------------------------------------------------------
// Conjunctive queries: containment, minimization, rewriting
// ---------------------------------------------------------------------

/// A random small database over relations r/2 and s/2 with a tiny value
/// domain (so joins actually hit).
fn gen_db(g: &mut Gen) -> Catalog {
    let mut cat = Catalog::new();
    for name in ["r", "s"] {
        let mut rel = Relation::new(RelSchema::text(name, &["a", "b"]));
        for _ in 0..g.random_range(0..12usize) {
            rel.insert(vec![
                Value::Int(g.random_range(0i64..4)),
                Value::Int(g.random_range(0i64..4)),
            ]);
        }
        cat.register(rel.distinct());
    }
    cat
}

/// A random safe conjunctive query over r/2, s/2 with ≤3 atoms and ≤4 vars.
fn gen_query(g: &mut Gen) -> ConjunctiveQuery {
    let vars = ["X", "Y", "Z", "W"];
    let atoms: Vec<(&str, usize, usize)> = g.vec(1..4, |g| {
        (
            *g.pick(&["r", "s"]),
            g.random_range(0..4usize),
            g.random_range(0..4usize),
        )
    });
    let head_var = g.random_range(0..4usize);
    let body: Vec<String> = atoms
        .iter()
        .map(|(rel, v1, v2)| format!("{rel}({}, {})", vars[*v1], vars[*v2]))
        .collect();
    // Head var must appear in the body.
    let used: Vec<&str> = atoms
        .iter()
        .flat_map(|(_, v1, v2)| [vars[*v1], vars[*v2]])
        .collect();
    let hv = if used.contains(&vars[head_var]) { vars[head_var] } else { used[0] };
    parse_query(&format!("q({hv}) :- {}", body.join(", "))).expect("generated query is safe")
}

#[test]
fn containment_is_reflexive() {
    forall(48, |g| {
        let q = gen_query(g);
        assert!(contained_in(&q, &q));
    });
}

#[test]
fn containment_implies_answer_inclusion() {
    forall(48, |g| {
        let (q1, q2, db) = (gen_query(g), gen_query(g), gen_db(g));
        if contained_in(&q1, &q2) {
            let a1 = eval_cq(&q1, &db).unwrap();
            let a2 = eval_cq(&q2, &db).unwrap();
            for row in a1.iter() {
                assert!(
                    a2.contains(row),
                    "containment said {q1} ⊆ {q2} but {row:?} only in the first"
                );
            }
        }
    });
}

#[test]
fn minimization_preserves_answers() {
    forall(48, |g| {
        let (q, db) = (gen_query(g), gen_db(g));
        let m = minimize(&q);
        assert!(m.body.len() <= q.body.len());
        let orig = eval_cq(&q, &db).unwrap();
        let mind = eval_cq(&m, &db).unwrap();
        let mut a = orig.rows().to_vec();
        let mut b = mind.rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "minimize changed the answers of {q}");
    });
}

#[test]
fn minicon_rewritings_are_sound_on_data() {
    forall(48, |g| {
        let (q, db) = (gen_query(g), gen_db(g));
        // Views: projections of r and s exposing both columns.
        let views = [
            ViewDef::from_query(&parse_query("v_r(A, B) :- r(A, B)").unwrap()),
            ViewDef::from_query(&parse_query("v_s(A, B) :- s(A, B)").unwrap()),
        ];
        let rewritings = rewrite_using_views(&q, &views);
        // Materialize the views.
        let mut vcat = Catalog::new();
        for (vname, def) in [("v_r", "v_r(A, B) :- r(A, B)"), ("v_s", "v_s(A, B) :- s(A, B)")] {
            let mut rel = eval_cq(&parse_query(def).unwrap(), &db).unwrap();
            rel.schema.name = vname.to_string();
            vcat.register(rel);
        }
        let direct = eval_cq(&q, &db).unwrap();
        for rw in &rewritings {
            let via = eval_cq(rw, &vcat).unwrap();
            for row in via.iter() {
                assert!(
                    direct.contains(row),
                    "unsound: {rw} produced {row:?} not in {q}"
                );
            }
        }
        // With full-fidelity views, some rewriting must exist and the
        // union must be complete.
        assert!(!rewritings.is_empty(), "no rewriting for {q}");
        let mut union_rows: Vec<_> = rewritings
            .iter()
            .flat_map(|rw| eval_cq(rw, &vcat).unwrap().into_rows())
            .collect();
        union_rows.sort();
        union_rows.dedup();
        let mut want = direct.rows().to_vec();
        want.sort();
        assert_eq!(union_rows, want, "rewriting union incomplete for {q}");
    });
}

#[test]
fn unfolding_preserves_answers() {
    forall(48, |g| {
        let (q, db) = (gen_query(g), gen_db(g));
        // Define virtual relations over the base and unfold them back.
        let defs = [
            ViewDef::from_query(&parse_query("r(A, B) :- base_r(A, B)").unwrap()),
            ViewDef::from_query(&parse_query("s(A, B) :- base_s(A, B)").unwrap()),
        ];
        let mut base = Catalog::new();
        let mut r = db.get("r").unwrap().clone();
        r.schema.name = "base_r".into();
        let mut s = db.get("s").unwrap().clone();
        s.schema.name = "base_s".into();
        base.register(r);
        base.register(s);
        let unfolded = unfold_with(&q, &defs, 8);
        assert_eq!(unfolded.len(), 1);
        let a = eval_cq(&q, &db).unwrap();
        let b = eval_cq(&unfolded[0], &base).unwrap();
        let mut ra = a.rows().to_vec();
        let mut rb = b.rows().to_vec();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    });
}

// ---------------------------------------------------------------------
// Updategrams: incremental maintenance == recompute
// ---------------------------------------------------------------------

#[test]
fn incremental_maintenance_matches_recompute() {
    forall(48, |g| {
        let db = gen_db(g);
        let inserts: Vec<(i64, i64)> =
            g.vec(0..6, |g| (g.random_range(0i64..4), g.random_range(0i64..4)));
        let delete_count = g.random_range(0..4usize);
        let view_q = *g.pick(&[
            "v(A, C) :- r(A, B), s(B, C)",
            "v(B) :- r(A, B)",
            "v(A, C) :- r(A, B), r(B, C)",
        ]);
        let def = parse_query(view_q).unwrap();
        let mut c1 = db.clone();
        let mut c2 = db;
        let mut v1 = MaterializedView::new("v", def.clone());
        let mut v2 = MaterializedView::new("v", def);
        v1.refresh_full(&c1).unwrap();
        v2.refresh_full(&c2).unwrap();

        // Deletes drawn from existing rows; inserts arbitrary.
        let existing: Vec<Vec<Value>> = c1.get("r").unwrap().rows().to_vec();
        let deletes: Vec<Vec<Value>> = existing.into_iter().take(delete_count).collect();
        let gram = Updategram {
            relation: "r".into(),
            insert: inserts
                .iter()
                .map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)])
                .collect(),
            delete: deletes,
        };
        maintain(&mut c1, &mut v1, std::slice::from_ref(&gram), Some(MaintenanceChoice::Incremental)).unwrap();
        maintain(&mut c2, &mut v2, std::slice::from_ref(&gram), Some(MaintenanceChoice::Recompute)).unwrap();
        let r1 = v1.as_relation();
        let r2 = v2.as_relation();
        assert_eq!(r1.rows(), r2.rows(), "divergence after {gram:?}");
    });
}

// ---------------------------------------------------------------------
// Z-sets: the delta-dataflow algebra (query::dataflow)
// ---------------------------------------------------------------------

/// A small random Z-set over binary integer tuples, weights in `-3..=3`.
fn gen_delta(g: &mut Gen) -> Delta {
    Delta::from_pairs(g.vec(0..8, |g| {
        (
            vec![Value::Int(g.random_range(0i64..4)), Value::Int(g.random_range(0i64..4))],
            g.random_range(-3i64..4),
        )
    }))
}

/// Nested-loop Z-set equijoin on the first column: the oracle
/// [`JoinState`] is checked against.
fn brute_join(a: &Delta, b: &Delta) -> Delta {
    let mut out = Delta::new();
    for (l, wl) in a.iter() {
        for (r, wr) in b.iter() {
            if l[0] == r[0] {
                let mut t = l.clone();
                t.extend(r.iter().cloned());
                out.add(t, wl * wr);
            }
        }
    }
    out
}

#[test]
fn zset_addition_is_commutative_and_associative() {
    forall(128, |g| {
        let (a, b, c) = (gen_delta(g), gen_delta(g), gen_delta(g));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "a+b != b+a");
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "(a+b)+c != a+(b+c)");
    });
}

#[test]
fn zset_insert_then_retract_cancels() {
    forall(128, |g| {
        let a = gen_delta(g);
        let mut sum = a.clone();
        sum.merge(&a.negate());
        assert!(sum.is_empty(), "a + (-a) left residue: {sum:?}");
    });
}

#[test]
fn zset_filter_and_map_are_linear() {
    forall(128, |g| {
        let (a, b) = (gen_delta(g), gen_delta(g));
        let mut sum = a.clone();
        sum.merge(&b);
        // filter(a + b) == filter(a) + filter(b)
        let mut fa = a.filter(|t| t[0] <= t[1]);
        fa.merge(&b.filter(|t| t[0] <= t[1]));
        assert_eq!(sum.filter(|t| t[0] <= t[1]), fa);
        // A collapsing projection is still linear: weights of merged
        // images sum.
        let mut ma = a.project(&[0]);
        ma.merge(&b.project(&[0]));
        assert_eq!(sum.project(&[0]), ma);
    });
}

#[test]
fn zset_incremental_join_is_bilinear() {
    forall(96, |g| {
        let (a, b, da, db) = (gen_delta(g), gen_delta(g), gen_delta(g), gen_delta(g));
        let mut state = JoinState::new(vec![0], vec![0]);
        state.push_concat(&a, &b);
        let incr = state.push_concat(&da, &db);
        // Δ(A ⋈ B) = (A+ΔA) ⋈ (B+ΔB) − A ⋈ B ...
        let mut a2 = a.clone();
        a2.merge(&da);
        let mut b2 = b.clone();
        b2.merge(&db);
        let mut expected = brute_join(&a2, &b2);
        expected.merge(&brute_join(&a, &b).negate());
        assert_eq!(incr, expected, "incremental != recompute difference");
        // ... and decomposes as ΔA⋈B + A⋈ΔB + ΔA⋈ΔB.
        let mut decomposed = brute_join(&da, &b);
        decomposed.merge(&brute_join(&a, &db));
        decomposed.merge(&brute_join(&da, &db));
        assert_eq!(incr, decomposed, "bilinear decomposition diverged");
    });
}

#[test]
fn zset_consolidation_never_stores_zero_weights() {
    forall(128, |g| {
        let mut acc = Delta::new();
        for _ in 0..g.random_range(1..5usize) {
            let d = gen_delta(g);
            acc.merge(&d);
            if g.random_bool(0.5) {
                acc.merge(&d.negate());
            }
        }
        assert!(acc.iter().all(|(_, w)| w != 0), "zero-weight entry survived: {acc:?}");
        // Draining every entry leaves the canonical empty delta.
        let entries: Vec<_> = acc.iter().map(|(t, w)| (t.clone(), w)).collect();
        for (t, w) in entries {
            acc.add(t, -w);
        }
        assert!(acc.is_empty());
        assert_eq!(acc, Delta::new());
    });
}

// ---------------------------------------------------------------------
// Corpus text utilities
// ---------------------------------------------------------------------

#[test]
fn stemming_is_idempotent() {
    forall(256, |g| {
        use revere::corpus::text::stem;
        let word = g.lowercase(1..15);
        let once = stem(&word);
        assert_eq!(stem(&once), once);
        // Stems never grow.
        assert!(once.len() <= word.len() + 1, "{word} -> {once}");
    });
}

#[test]
fn name_similarity_is_bounded_and_reflexive() {
    forall(256, |g| {
        use revere::corpus::text::{name_similarity, SynonymTable};
        let a = g.string_from("abcdefghijklmnopqrstuvwxyz_", 1..13);
        let b = g.string_from("abcdefghijklmnopqrstuvwxyz_", 1..13);
        let syn = SynonymTable::default_domain();
        let s = name_similarity(&a, &b, &syn);
        assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
        assert_eq!(name_similarity(&a, &a, &syn), 1.0);
    });
}

#[test]
fn edit_distance_triangle_inequality() {
    forall(256, |g| {
        use revere::corpus::text::edit_distance;
        let (a, b, c) = (g.lowercase(0..9), g.lowercase(0..9), g.lowercase(0..9));
        assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        assert_eq!(edit_distance(&a, &a), 0);
    });
}

// ---------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------

#[test]
fn generated_topologies_are_connected() {
    forall(64, |g| {
        let n = g.random_range(1usize..40);
        let seed = g.random_range(0u64..1000);
        let extra = g.random_range(0usize..5);
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Star,
            TopologyKind::Tree,
            TopologyKind::Random { extra },
        ] {
            let t = Topology::generate(kind, n, seed);
            assert!(t.is_connected(), "{kind:?} n={n} seed={seed} disconnected");
            assert!(t.mapping_count() <= n.saturating_sub(1) + extra);
            assert!(t.diameter().is_some());
        }
    });
}

// ---------------------------------------------------------------------
// Triple store
// ---------------------------------------------------------------------

#[test]
fn triple_store_republish_is_idempotent() {
    forall(64, |g| {
        use revere::storage::TripleStore;
        let facts: Vec<(String, String, String)> = g.vec(0..10, |g| {
            (
                g.string_from("abc", 1..2),
                g.string_from("pqr", 1..2),
                g.string_from("xyz", 1..2),
            )
        });
        let mut store = TripleStore::new();
        let stmts: Vec<(String, String, Value)> = facts
            .iter()
            .map(|(s, p, o)| (s.clone(), p.clone(), Value::str(o.clone())))
            .collect();
        store.republish("src", stmts.clone());
        let first = store.len();
        store.republish("src", stmts.clone());
        assert_eq!(store.len(), first);
        // Indexed pattern query agrees with a full scan for every subject.
        for (s, _, _) in &stmts {
            let indexed = store.query((Some(s), None, None)).len();
            let scanned = store.iter().filter(|t| &t.subject == s).count();
            assert_eq!(indexed, scanned);
        }
    });
}

// ---------------------------------------------------------------------
// Selection bitmaps and column vectors (the vectorized engine substrate)
// ---------------------------------------------------------------------

fn gen_bitmap(g: &mut Gen, len: usize) -> SelBitmap {
    let mut b = SelBitmap::none(len);
    for i in 0..len {
        if g.random_bool(0.4) {
            b.set(i);
        }
    }
    b
}

#[test]
fn bitmap_algebra_laws() {
    forall(256, |g| {
        // Lengths straddling the 64-bit word boundary, where tail
        // masking can go wrong.
        let len = g.random_range(0usize..150);
        let a = gen_bitmap(g, len);
        let b = gen_bitmap(g, len);
        // Involution and idempotence.
        assert_eq!(a.not().not(), a);
        assert_eq!(a.and(&a), a);
        assert_eq!(a.or(&a), a);
        // De Morgan, both directions.
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        // Complement partitions the domain; inclusion-exclusion holds.
        assert_eq!(a.and(&a.not()), SelBitmap::none(len));
        assert_eq!(a.or(&a.not()), SelBitmap::all(len));
        assert_eq!(
            a.or(&b).count_ones() + a.and(&b).count_ones(),
            a.count_ones() + b.count_ones()
        );
        // ones() round-trips through from_indices.
        assert_eq!(SelBitmap::from_indices(len, &a.ones()), a);
    });
}

#[test]
fn bitmap_rank_select_are_inverse() {
    forall(256, |g| {
        let len = g.random_range(0usize..150);
        let a = gen_bitmap(g, len);
        let ones = a.ones();
        assert_eq!(ones.len(), a.count_ones());
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(a.select(k), Some(pos as usize), "select({k}) of {ones:?}");
            assert_eq!(a.rank(pos as usize), k, "rank({pos}) of {ones:?}");
            assert!(a.get(pos as usize));
        }
        assert_eq!(a.select(ones.len()), None);
        assert_eq!(a.rank(len), ones.len());
    });
}

/// A generated column: sometimes homogeneous (typed representation),
/// sometimes mixed (the `Any` fallback), with nulls and duplicates.
fn gen_column_values(g: &mut Gen) -> Vec<Value> {
    match g.random_range(0..3u8) {
        0 => g.vec(0..30, |g| Value::Int(g.random_range(-3i64..4))),
        1 => g.vec(0..30, |g| Value::Str(g.lowercase(0..3))),
        _ => g.vec(0..30, |g| gen_value(g)),
    }
}

#[test]
fn column_roundtrips_and_push_path_agrees() {
    forall(256, |g| {
        let vals = gen_column_values(g);
        let col = ColumnVec::from_values(&vals);
        assert_eq!(col.len(), vals.len());
        assert_eq!(col.to_values(), vals, "bulk round-trip diverged");
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&col.get(i), v, "get({i}) diverged");
        }
        // Row-at-a-time construction converges to the same column even
        // when pushes force representation promotion along the way.
        let mut pushed = ColumnVec::from_values(&[]);
        for v in &vals {
            pushed.push(v.clone());
        }
        assert_eq!(pushed.to_values(), vals, "push-path round-trip diverged");
    });
}

#[test]
fn column_filter_composes_and_matches_gather() {
    forall(256, |g| {
        let vals = gen_column_values(g);
        let col = ColumnVec::from_values(&vals);
        let f = gen_bitmap(g, vals.len());
        // filter ≡ gather(ones): the two selection paths agree.
        assert_eq!(col.filter(&f), col.gather(&f.ones()));
        // filter(f) then filter(g-restricted-to-f) ≡ filter(f ∧ g).
        let gsel = gen_bitmap(g, vals.len());
        let mut g_on_filtered = SelBitmap::none(f.count_ones());
        for (j, &pos) in f.ones().iter().enumerate() {
            if gsel.get(pos as usize) {
                g_on_filtered.set(j);
            }
        }
        assert_eq!(
            col.filter(&f).filter(&g_on_filtered).to_values(),
            col.filter(&f.and(&gsel)).to_values(),
            "filter composition diverged"
        );
    });
}

#[test]
fn columnar_batch_roundtrips_relations() {
    forall(128, |g| {
        let db = gen_db(g);
        for name in db.names().map(str::to_string).collect::<Vec<_>>() {
            let rel = db.get(&name).unwrap();
            let batch = ColumnarBatch::from_relation(rel);
            assert_eq!(batch.rows(), rel.len());
            let back = batch.to_relation(rel.schema.clone());
            assert_eq!(back.rows(), rel.rows(), "batch round-trip diverged for {name}");
            for (i, row) in rel.iter().enumerate() {
                assert_eq!(&batch.row(i), row, "row({i}) diverged for {name}");
            }
        }
    });
}

// ---------------------------------------------------------------------
// Observability: histogram merge (PR 10)
// ---------------------------------------------------------------------

/// Observations mixing small values, bucket boundaries, and extremes —
/// the cases log2 bucketing must carve up correctly.
fn gen_observations(g: &mut Gen) -> Vec<u64> {
    g.vec(0..40, |g| {
        let small = g.random_range(0..16u64);
        let boundary = (1u64 << g.random_range(0..63u32)).wrapping_sub(g.random_range(0..2u64));
        let wild = g.random_range(0..u64::MAX);
        *g.pick(&[0, 1, small, boundary, wild, u64::MAX])
    })
}

/// `Histogram::merge` must be exactly "observing the union": buckets,
/// count, sum, min, max, and therefore every quantile — the invariant
/// that makes the monitor's per-peer → cluster rollup lossless.
#[test]
fn histogram_merge_equals_observing_the_union() {
    use revere_util::obs::Histogram;
    forall(256, |g| {
        let (xs, ys) = (gen_observations(g), gen_observations(g));
        let observe_all = |vals: &[u64]| {
            let mut h = Histogram::default();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let mut merged = observe_all(&xs);
        merged.merge(&observe_all(&ys));
        let union: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        assert_eq!(merged, observe_all(&union), "merge diverged from observing the union");
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                merged.quantile(q),
                observe_all(&union).quantile(q),
                "quantile({q}) diverged"
            );
        }
    });
}
