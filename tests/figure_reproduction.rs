//! Integration: the paper's figures, reproduced as executable artifacts.
//!
//! * Figure 2 — the six-university mapping graph and its connectivity.
//! * Figure 3 — the Berkeley and MIT peer schemas (verbatim DTDs).
//! * Figure 4 — the Berkeley→MIT XML mapping template, applied.

use revere::pdms::xmlmap::figure4_mapping;
use revere::prelude::*;
use revere::xml::dtd::{berkeley_schema, mit_schema};
use std::collections::HashMap;

#[test]
fn figure2_topology_is_connected_and_sparse() {
    let (topology, names) = Topology::figure2();
    assert_eq!(names, vec!["Stanford", "Oxford", "MIT", "Tsinghua", "Roma", "Berkeley"]);
    assert!(topology.is_connected());
    // Six peers, six mappings — far below the 15 a pairwise design needs.
    assert_eq!(topology.mapping_count(), 6);
    assert_eq!(topology.pairwise_mapping_count(), 15);
    // Cutting Tsinghua-Roma strands Roma, per the figure's geometry.
    let cut = topology.without_edge(3, 4);
    let roma = 4;
    assert!(cut.distances(0)[roma].is_none());
}

#[test]
fn figure3_schemas_parse_and_validate_their_documents() {
    let b = berkeley_schema();
    assert_eq!(b.root(), Some("schedule"));
    let doc = revere::xml::parse(
        "<schedule><college><name>Berkeley</name>\
           <dept><name>History</name>\
             <course><title>Ancient Greece</title><size>40</size></course>\
           </dept></college></schedule>",
    )
    .unwrap();
    b.validate(&doc).unwrap();

    let m = mit_schema();
    assert_eq!(m.root(), Some("catalog"));
    let doc = revere::xml::parse(
        "<catalog><course><name>History</name>\
           <subject><title>Ancient Greece</title><enrollment>40</enrollment></subject>\
         </course></catalog>",
    )
    .unwrap();
    m.validate(&doc).unwrap();
    // The schemas really are different shapes.
    assert!(m.validate(&revere::xml::parse("<schedule/>").unwrap()).is_err());
}

#[test]
fn figure4_mapping_is_schema_to_schema() {
    // Property: ANY document valid under Berkeley's schema maps to a
    // document valid under MIT's schema.
    let sources = [
        "<schedule/>",
        "<schedule><college><name>B</name></college></schedule>",
        "<schedule><college><name>B</name>\
           <dept><name>CS</name>\
             <course><title>DB</title><size>10</size></course>\
             <course><title>OS</title><size>20</size></course>\
           </dept>\
           <dept><name>EE</name></dept>\
         </college></schedule>",
    ];
    let mapping = figure4_mapping();
    for src in sources {
        let doc = revere::xml::parse(src).unwrap();
        berkeley_schema().validate(&doc).expect("source valid");
        let out = mapping
            .apply(&HashMap::from([("Berkeley.xml".to_string(), doc)]))
            .expect("mapping applies");
        mit_schema().validate(&out).unwrap_or_else(|e| panic!("output invalid for {src}: {e}"));
    }
}

#[test]
fn figure4_preserves_every_course() {
    let doc = revere::xml::parse(
        "<schedule><college><name>B</name>\
           <dept><name>CS</name>\
             <course><title>DB</title><size>10</size></course>\
             <course><title>OS</title><size>20</size></course>\
           </dept>\
           <dept><name>History</name>\
             <course><title>Rome</title><size>30</size></course>\
           </dept>\
         </college></schedule>",
    )
    .unwrap();
    let titles_in = XmlPath::parse("//title").unwrap().eval_text(&doc, doc.root());
    let out = figure4_mapping()
        .apply(&HashMap::from([("Berkeley.xml".to_string(), doc)]))
        .unwrap();
    let titles_out = XmlPath::parse("//subject/title").unwrap().eval_text(&out, out.root());
    assert_eq!(titles_in, titles_out);
    // Sizes become enrollments, pairwise.
    let sizes_out = XmlPath::parse("//subject/enrollment").unwrap().eval_text(&out, out.root());
    assert_eq!(sizes_out, vec!["10", "20", "30"]);
}

#[test]
fn figure2_as_live_pdms_mapping_count_scales_linearly() {
    // The §3 scaling claim over growing coalitions: mappings grow
    // linearly while pairwise grows quadratically, and connectivity (and
    // hence query reach) is preserved throughout.
    for n in [4usize, 8, 16, 32] {
        let t = Topology::generate(TopologyKind::Random { extra: 2 }, n, n as u64);
        assert!(t.is_connected());
        assert_eq!(t.mapping_count(), n - 1 + 2, "PDMS mappings stay linear in n");
        assert_eq!(t.pairwise_mapping_count(), n * (n - 1) / 2);
        // The gap widens with n: at 32 peers the pairwise design already
        // needs ~15x the mappings.
        if n >= 16 {
            assert!(t.pairwise_mapping_count() >= 7 * t.mapping_count());
        }
    }
}
