//! Differential gate for the vectorized columnar engine.
//!
//! The vectorized evaluator (`query::vec`) promises *byte-identity* with
//! the row engine — not just the same bag of answers but the same row
//! order, the same step profiles, and the same errors — and agreement
//! (up to canonical sort) with the nested-loop naive oracle. These tests
//! generate random catalogs and conjunctive queries biased toward the
//! shapes where a columnar engine can go wrong:
//!
//! * repeated variables *within* one atom (bitmap self-join filters),
//! * constants in atom positions (`eq_const` pushdown, including the
//!   `Int`/`Float` numeric-equality corner),
//! * mixed-type columns that force the `Any` fallback paths,
//! * cartesian-adjacent bodies (atoms sharing no variables — the
//!   `BuildIndex::All` fan-out), and
//! * broken queries (missing relation / wrong arity), which must produce
//!   the *same* `EvalError` from both engines.
//!
//! Every case also sweeps morsel configurations — sequential, and forced
//! parallel at morsel sizes 1, 7, 64, and whole-relation — and holds the
//! output byte-identical across all of them, the same determinism
//! contract `query_parallel` is held to.
//!
//! Seeding: `REVERE_VEC_SEED` (default 1) offsets every generator;
//! `scripts/verify.sh` sweeps several seeds.

use revere::prelude::*;
use revere::storage::Attribute;
use revere_util::prop::Gen;

/// Base seed for this run, from `REVERE_VEC_SEED` (default 1).
fn vec_seed() -> u64 {
    std::env::var("REVERE_VEC_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Independent generator for one case: mixes the run seed with the case
/// index so cases stay decorrelated within and across seeds.
fn case_gen(case: u64) -> Gen {
    Gen::from_seed(vec_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case))
}

const INT_DOMAIN: [i64; 4] = [0, 1, 2, 3];
const STR_DOMAIN: [&str; 3] = ["a", "b", "c"];
const VARS: [&str; 5] = ["X0", "X1", "X2", "X3", "X4"];

/// What a generated column holds. `Mixed` defeats the typed columnar fast
/// paths: the column degrades to `ColumnVec::Any` and every comparison
/// goes through full `Value` semantics — including `Int(2) == Float(2.0)`
/// numeric equality, which a code- or bits-level equality would miss.
#[derive(Clone, Copy)]
enum ColKind {
    Int,
    Str,
    Mixed,
}

/// The mixed domain deliberately collides across types: `Float(2.0)`
/// equals `Int(2)`, `Float(3.0)` equals `Int(3)`, and `Null`/`Bool` sit
/// outside both the int and string fast paths.
fn mixed_value(g: &mut Gen) -> Value {
    match *g.pick(&[0u8, 1, 2, 3, 4, 5]) {
        0 => Value::Int(*g.pick(&INT_DOMAIN)),
        1 => Value::Float(2.0),
        2 => Value::Float(3.0),
        3 => Value::str(*g.pick(&STR_DOMAIN)),
        4 => Value::Null,
        _ => Value::Bool(true),
    }
}

/// A random catalog: 2–4 relations `r0..`, arity 1–3, each column int,
/// text, or mixed, 0–12 rows drawn from tiny domains (small domains force
/// joins and duplicates; mixed columns force the `Any` fallback).
fn random_catalog(g: &mut Gen) -> Catalog {
    let mut catalog = Catalog::new();
    let n_rels = *g.pick(&[2usize, 3, 4]);
    for ri in 0..n_rels {
        let kinds: Vec<ColKind> =
            g.vec(1..4, |g| *g.pick(&[ColKind::Int, ColKind::Int, ColKind::Str, ColKind::Mixed]));
        let attrs: Vec<Attribute> = kinds
            .iter()
            .enumerate()
            .map(|(ci, k)| match k {
                ColKind::Int => Attribute::int(format!("c{ci}")),
                _ => Attribute::text(format!("c{ci}")),
            })
            .collect();
        let mut rel = Relation::new(RelSchema::new(format!("r{ri}"), attrs));
        let rows = g.vec(0..13, |g| {
            kinds
                .iter()
                .map(|k| match k {
                    ColKind::Int => Value::Int(*g.pick(&INT_DOMAIN)),
                    ColKind::Str => Value::str(*g.pick(&STR_DOMAIN)),
                    ColKind::Mixed => mixed_value(g),
                })
                .collect::<Vec<Value>>()
        });
        for row in rows {
            rel.insert(row);
        }
        catalog.register(rel);
    }
    catalog.analyze();
    catalog
}

/// A random constant, rendered for the query parser.
fn random_const(g: &mut Gen) -> String {
    if *g.pick(&[true, false]) {
        g.pick(&INT_DOMAIN).to_string()
    } else {
        format!("'{}'", g.pick(&STR_DOMAIN))
    }
}

/// A random safe conjunctive query over `catalog`, as text: 1–3 atoms
/// with variables drawn from a small pool (frequent cross-atom joins,
/// repeated variables within one atom, and — when atoms share no
/// variables — cartesian steps), constants in atom positions, 0–2
/// comparisons. With `break_it`, the query references a missing relation
/// or a real one at the wrong arity instead.
fn random_query(g: &mut Gen, catalog: &Catalog, break_it: bool) -> String {
    let rels: Vec<(String, usize)> = catalog
        .names()
        .map(|n| (n.to_string(), catalog.get(n).unwrap().schema.arity()))
        .collect();
    let n_atoms = *g.pick(&[1usize, 2, 2, 3]);
    let broken_atom = if break_it { *g.pick(&[0, n_atoms - 1]) } else { usize::MAX };
    let mut body = Vec::new();
    let mut used: Vec<&str> = Vec::new();
    for ai in 0..n_atoms {
        let (name, mut arity) = g.pick(&rels).clone();
        let name = if ai == broken_atom && *g.pick(&[true, false]) {
            "ghost".to_string()
        } else {
            if ai == broken_atom {
                arity += 1;
            }
            name
        };
        // Draw this atom's variables from either half of the pool: atoms
        // drawing from disjoint halves share nothing, which makes the
        // step a cartesian product — the shape the `BuildIndex::All`
        // fan-out path must get byte-for-byte right.
        let pool: &[&str] = if *g.pick(&[true, false]) { &VARS[..3] } else { &VARS[2..] };
        let terms: Vec<String> = (0..arity)
            .map(|ti| {
                if (ai == 0 && ti == 0) || *g.pick(&[true, true, true, false]) {
                    let v = *g.pick(pool);
                    if !used.contains(&v) {
                        used.push(v);
                    }
                    v.to_string()
                } else {
                    random_const(g)
                }
            })
            .collect();
        body.push(format!("{name}({})", terms.join(", ")));
    }
    for _ in 0..*g.pick(&[0usize, 0, 1, 2]) {
        let v = *g.pick(&used);
        let op = *g.pick(&["=", "!=", "<", "<=", ">", ">="]);
        body.push(format!("{v} {op} {}", random_const(g)));
    }
    let h = *g.pick(&[1usize, 1, 2, 3]);
    let head: Vec<String> = (0..h).map(|_| g.pick(&used).to_string()).collect();
    format!("q({}) :- {}", head.join(", "), body.join(", "))
}

/// The morsel configurations every case is held byte-identical across:
/// sequential, and forced-parallel at morsel sizes 1, 7, 64, and
/// whole-relation (one morsel ⇒ one worker).
fn opts_sweep() -> Vec<(&'static str, VecOpts)> {
    vec![
        ("default", VecOpts::default()),
        ("sequential", VecOpts::sequential()),
        ("morsel=1", VecOpts::forced_parallel(1)),
        ("morsel=7", VecOpts::forced_parallel(7)),
        ("morsel=64", VecOpts::forced_parallel(64)),
        ("morsel=whole", VecOpts::forced_parallel(usize::MAX)),
    ]
}

fn run_row(q: &ConjunctiveQuery, plan: &Plan, c: &Catalog) -> Result<Relation, String> {
    eval_cq_bag_profiled_obs_row(q, plan, c, &Obs::disabled(), &SpanHandle::none())
        .map(|(r, _)| r)
        .map_err(|e| e.to_string())
}

fn run_vec(
    q: &ConjunctiveQuery,
    plan: &Plan,
    c: &Catalog,
    opts: &VecOpts,
) -> Result<Relation, String> {
    eval_cq_bag_profiled_obs_vec(q, plan, c, &Obs::disabled(), &SpanHandle::none(), opts)
        .map(|(r, _)| r)
        .map_err(|e| e.to_string())
}

/// Rows in canonical order, for comparison against the (differently
/// ordered) naive oracle.
fn sorted_rows(r: Relation) -> Vec<Vec<Value>> {
    r.sorted().into_rows()
}

/// Vectorized ≡ row engine *byte-for-byte* (unsorted — row order is part
/// of the contract) across the whole morsel sweep, and ≡ naive oracle
/// after canonical sort.
#[test]
fn vectorized_agrees_with_row_engine_and_naive_oracle() {
    for case in 0..64u64 {
        let mut g = case_gen(case);
        let catalog = random_catalog(&mut g);
        let text = random_query(&mut g, &catalog, false);
        let q = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
        assert!(q.is_safe(), "case {case}: generated unsafe query `{text}`");
        let plan = plan_cq(&q, &catalog);
        let row = run_row(&q, &plan, &catalog);
        for (label, opts) in opts_sweep() {
            let vec = run_vec(&q, &plan, &catalog, &opts);
            match (&row, &vec) {
                (Ok(r), Ok(v)) => assert_eq!(
                    r.rows(),
                    v.rows(),
                    "case {case} [{label}]: `{text}` (canonical `{}`) row order diverged",
                    q.canonical_key()
                ),
                (Err(r), Err(v)) => {
                    assert_eq!(r, v, "case {case} [{label}]: `{text}` errors diverged")
                }
                (r, v) => panic!("case {case} [{label}]: `{text}`: row {r:?} vs vec {v:?}"),
            }
        }
        if let Ok(r) = &row {
            // The bindings-only kernel (what E18 gates on) must agree with
            // the full evaluation: identical step traces from both engines,
            // and — these queries are safe, so every realized binding emits
            // exactly one head row — the same count as the answer bag.
            let kernel = |mode: ExecMode| {
                eval_cq_bindings_mode(&q, &plan, &catalog, &Obs::disabled(), &SpanHandle::none(), mode)
                    .unwrap_or_else(|e| panic!("case {case}: `{text}` bindings kernel ({mode}): {e}"))
            };
            let (row_n, row_trace) = kernel(ExecMode::Row);
            let (vec_n, vec_trace) = kernel(ExecMode::Vectorized);
            assert_eq!(row_n, r.len(), "case {case}: `{text}` bindings count vs answer bag");
            assert_eq!(vec_n, row_n, "case {case}: `{text}` bindings counts diverged");
            assert_eq!(vec_trace, row_trace, "case {case}: `{text}` bindings traces diverged");
        }
        let naive = eval_naive_bag(&q, &catalog).map_err(|e| e.to_string());
        match (row.clone(), naive) {
            (Ok(r), Ok(n)) => assert_eq!(
                sorted_rows(run_vec(&q, &plan, &catalog, &VecOpts::default()).unwrap()),
                sorted_rows(n),
                "case {case}: `{text}` vectorized vs naive diverged (row engine gave {} rows)",
                r.len()
            ),
            (Err(r), Err(n)) => assert_eq!(r, n, "case {case}: `{text}` errors diverged vs naive"),
            (r, n) => panic!("case {case}: `{text}`: row {r:?} vs naive {n:?}"),
        }
    }
}

/// Broken queries (unknown relation, wrong arity) error identically from
/// both engines — same message, not merely both erring.
#[test]
fn engines_agree_on_broken_queries() {
    for case in 0..32u64 {
        let mut g = case_gen(10_000 + case);
        let catalog = random_catalog(&mut g);
        let text = random_query(&mut g, &catalog, true);
        let q = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
        let plan = plan_cq(&q, &catalog);
        let row = run_row(&q, &plan, &catalog);
        let vec = run_vec(&q, &plan, &catalog, &VecOpts::default());
        assert!(row.is_err(), "case {case}: `{text}` should not evaluate");
        assert_eq!(row, vec, "case {case}: `{text}` errors diverged");
    }
}

/// A plan cached for a different query must be rejected with the same
/// error by both engines.
#[test]
fn engines_agree_on_inapplicable_plans() {
    let mut g = case_gen(20_000);
    let catalog = random_catalog(&mut g);
    let a = parse_query("q(X0) :- r0(X0)").unwrap();
    let b = parse_query("q(X0, X1) :- r1(X0, X1)").unwrap_or_else(|_| a.clone());
    let plan = plan_cq(&a, &catalog);
    let row = run_row(&b, &plan, &catalog);
    let vec = run_vec(&b, &plan, &catalog, &VecOpts::default());
    if row.is_ok() && vec.is_ok() {
        return; // arities happened to line up — nothing to compare
    }
    assert_eq!(row, vec, "inapplicable-plan errors diverged");
}

/// Real-thread coverage: a join over a relation large enough that every
/// forced-parallel configuration actually spawns workers, held
/// byte-identical to the sequential run (and to the row engine).
#[test]
fn morsel_parallel_is_byte_identical_on_large_inputs() {
    let mut edge = Relation::new(RelSchema::new(
        "edge",
        vec![Attribute::int("a"), Attribute::int("b")],
    ));
    // Deterministic pseudo-random graph over 400 nodes, 20k edges: big
    // enough for thousands of morsels at size 7, small enough to stay
    // fast as a test.
    let mut x: u64 = 0x2545_F491_4F6C_DD1D;
    for _ in 0..20_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let a = (x % 400) as i64;
        let b = ((x >> 16) % 400) as i64;
        edge.insert(vec![Value::Int(a), Value::Int(b)]);
    }
    let mut catalog = Catalog::new();
    catalog.register(edge);
    catalog.analyze();
    for text in [
        "q(A, C) :- edge(A, B), edge(B, C)",
        "q(A) :- edge(A, A)",
        "q(A, B) :- edge(A, B), edge(B, A), A != B",
    ] {
        let q = parse_query(text).unwrap();
        let plan = plan_cq(&q, &catalog);
        let row = run_row(&q, &plan, &catalog).unwrap();
        let sequential = run_vec(&q, &plan, &catalog, &VecOpts::sequential()).unwrap();
        assert_eq!(sequential.rows(), row.rows(), "`{text}`: vec vs row diverged");
        for (label, opts) in opts_sweep() {
            let parallel = run_vec(&q, &plan, &catalog, &opts).unwrap();
            assert_eq!(
                parallel.rows(),
                sequential.rows(),
                "`{text}` [{label}]: parallel vs sequential diverged"
            );
        }
    }
}
