//! Integration: the overlay health monitor and the production telemetry
//! profile (PR 10), spanning `revere-util`'s obs substrate and
//! `revere-pdms`'s network + monitor.
//!
//! Four contracts, all seed-parametric (`REVERE_E19_SEED`, default 1003;
//! `scripts/verify.sh` runs the suite under several seeds):
//!
//! 1. **Exact attribution** — under a seeded chaos plan plus one mid-run
//!    crash, the monitor's `Suspect`/`Down` set equals the injected
//!    degraded-peer set, with every detection inside
//!    `REVERE_E19_MAX_DETECT_TICKS`.
//! 2. **Answer invariance** — running a monitor beside a workload changes
//!    nothing: every query outcome is byte-identical to the unmonitored
//!    twin, same discipline as `tests/trace_obs.rs`.
//! 3. **Bounded tracing** — the flight recorder holds its fixed capacity
//!    over a trace 10× longer than E13's 48-query workload.
//! 4. **Determinism** — dashboards, event logs, and windowed rollups are
//!    byte-identical across same-seed runs.

use revere::prelude::*;
use revere::storage::Attribute;
use revere::workload::course_templates;

/// The seed under test: `REVERE_E19_SEED` or 1003.
fn seed() -> u64 {
    std::env::var("REVERE_E19_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1003)
}

/// Detection-latency bound: `REVERE_E19_MAX_DETECT_TICKS` or 8.
fn max_detect_ticks() -> u64 {
    std::env::var("REVERE_E19_MAX_DETECT_TICKS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(8)
}

/// A 16-peer random course overlay (same shape as the E12/E19 fixtures).
fn build_network(seed: u64, n: usize) -> PdmsNetwork {
    let topology = Topology::generate(TopologyKind::Random { extra: 2 }, n, seed);
    let mut net = PdmsNetwork::new();
    net.options.max_depth = n.max(8);
    for i in 0..n {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        for k in 0..3 {
            r.insert(vec![
                Value::str(format!("Course {k} at P{i}")),
                Value::Int((10 + (i * 7 + k * 13) % 300) as i64),
            ]);
        }
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("mapping parses"),
        );
    }
    net
}

/// The chaos plan under test plus the injected degraded set: whole-run
/// outage peers drawn by the chaos dial, and the first healthy non-P0
/// peer crashed at `crash_tick`.
fn chaos_with_crash(seed: u64, n: usize, crash_tick: u64) -> (FaultPlan, Vec<(String, u64)>) {
    let chaos = FaultPlan::new(FaultSpec::chaos(seed, 0.25));
    let mut injected: Vec<(String, u64)> = (0..n)
        .map(|i| format!("P{i}"))
        .filter(|p| chaos.is_down(p))
        .map(|p| (p, 0))
        .collect();
    let victim = (1..n)
        .map(|i| format!("P{i}"))
        .find(|p| !chaos.is_down(p))
        .expect("some peer survived the chaos draw");
    injected.push((victim.clone(), crash_tick));
    injected.sort();
    let plan = FaultPlan::new(FaultSpec::chaos(seed, 0.25).with_crash(victim, crash_tick));
    (plan, injected)
}

#[test]
fn monitor_attributes_injected_faults_exactly() {
    let seed = seed();
    let (n, ticks, crash_tick) = (16usize, 32u64, 16u64);
    let mut net = build_network(seed, n);
    let (plan, injected) = chaos_with_crash(seed, n, crash_tick);
    net.faults = plan;
    let templates = course_templates("P0", 6);
    let mut mon = Monitor::default();
    for tick in 0..ticks {
        let q = &templates[tick as usize % templates.len()];
        net.query_str("P0", q).expect("query runs");
        mon.scrape(&net, tick);
    }
    let expected: Vec<String> = injected.iter().map(|(p, _)| p.clone()).collect();
    assert!(!expected.is_empty(), "seed {seed} injected no faults");
    assert_eq!(
        mon.flagged(),
        expected,
        "attribution diverged under seed {seed}; events:\n{}",
        mon.event_log()
    );
    let bound = max_detect_ticks();
    for (peer, onset) in &injected {
        let detected = mon
            .first_flagged_tick(peer)
            .unwrap_or_else(|| panic!("injected peer {peer} never flagged under seed {seed}"));
        assert!(
            detected.saturating_sub(*onset) <= bound,
            "detecting {peer} took {} ticks > {bound} (REVERE_E19_MAX_DETECT_TICKS)",
            detected.saturating_sub(*onset)
        );
    }
}

#[test]
fn monitoring_never_changes_answers() {
    // Twin runs under the same chaos plan: one bare, one scraped by a
    // monitor after every query (with tracing enabled, so the golden
    // trace must match too). Every outcome must be identical — the
    // monitor observes the network, it never steers it.
    let seed = seed();
    let (n, ticks) = (10usize, 12u64);
    let run = |monitored: bool| {
        let mut net = build_network(seed, n);
        let (plan, _) = chaos_with_crash(seed, n, 6);
        net.faults = plan;
        net.obs = Obs::enabled();
        let mut mon = Monitor::default();
        let templates = course_templates("P0", 6);
        let mut outcomes = Vec::new();
        for tick in 0..ticks {
            let q = &templates[tick as usize % templates.len()];
            let out = net.query_str("P0", q).expect("query runs");
            outcomes.push((
                out.answers,
                out.completeness,
                out.messages,
                out.peers_contacted,
                out.tuples_shipped,
            ));
            if monitored {
                mon.scrape(&net, tick);
            }
        }
        let trace = net.obs.tracer().unwrap().chrome_trace();
        let metrics = net.obs.metrics().unwrap().snapshot().to_string();
        (outcomes, trace, metrics)
    };
    let (bare, monitored) = (run(false), run(true));
    assert_eq!(bare.0, monitored.0, "monitor scraping changed a query outcome (seed {seed})");
    assert_eq!(bare.1, monitored.1, "monitor scraping changed the golden trace (seed {seed})");
    assert_eq!(bare.2, monitored.2, "monitor scraping changed workload metrics (seed {seed})");
}

#[test]
fn flight_recorder_memory_is_fixed_over_a_10x_e13_trace() {
    // E13's workload is 48 queries; this drives 480 (10×, asserted
    // below) through a flight-recorder Obs and checks the ring never
    // grows past its capacity — the O(capacity) memory claim, measured
    // in retained span records.
    const E13_QUERIES: usize = 48;
    let queries = 10 * E13_QUERIES;
    assert_eq!(queries, 480);
    let capacity = 64usize;
    let net = {
        let mut net = build_network(seed(), 6);
        net.obs = Obs::with_config(ObsConfig {
            flight_capacity: Some(capacity),
            metric_windows: Some(8),
            sample_rate: None,
            sample_seed: seed(),
        });
        net
    };
    let templates = course_templates("P0", 12);
    for i in 0..queries {
        net.query_str("P0", &templates[i % templates.len()]).expect("query runs");
        net.obs.rotate_window();
    }
    let tracer = net.obs.tracer().expect("flight recorder is on");
    assert_eq!(tracer.capacity(), Some(capacity));
    assert_eq!(tracer.retained(), capacity, "ring should sit exactly at capacity");
    assert!(
        tracer.evicted() as usize > queries,
        "a 480-query trace must evict far more than it retains (evicted {})",
        tracer.evicted()
    );
    // The dump holds the capacity bound too: header + one line per span.
    assert_eq!(tracer.dump().lines().count(), 1 + capacity);
}

#[test]
fn monitored_runs_are_byte_deterministic() {
    let seed = seed();
    let run = || {
        let mut net = build_network(seed, 10);
        let (plan, _) = chaos_with_crash(seed, 10, 6);
        net.faults = plan;
        let mut mon = Monitor::default();
        let templates = course_templates("P0", 6);
        for tick in 0..12u64 {
            net.query_str("P0", &templates[tick as usize % templates.len()])
                .expect("query runs");
            mon.scrape(&net, tick);
        }
        (mon.render_dashboard(), mon.event_log(), mon.chrome_trace(), mon.rollup().to_string())
    };
    let (a, b) = (run(), run());
    assert_eq!(a.0, b.0, "dashboard diverged under seed {seed}");
    assert_eq!(a.1, b.1, "event log diverged under seed {seed}");
    assert_eq!(a.2, b.2, "chrome export diverged under seed {seed}");
    assert_eq!(a.3, b.3, "windowed rollup diverged under seed {seed}");
}
