//! Differential testing for the whole query stack.
//!
//! The planned evaluator ([`eval_cq_bag`] and friends) reorders joins,
//! builds hash indexes, and pushes filters; [`eval_naive_bag`] is a
//! nested-loop evaluator in textual body order with none of that. On any
//! input they must agree exactly — same bags, same sets, same errors.
//! These tests generate random catalogs and random (sometimes broken)
//! queries and hold every planned path to `planned ≡ naive`.
//!
//! The second half checks the *rewriting* layers against the containment
//! oracle: every MiniCon rewriting, once expanded through its view
//! definitions, must be contained in the query it rewrites; and every
//! disjunct the PDMS reformulator produces must be contained in the
//! original query after translating relation names back into the querying
//! peer's vocabulary.
//!
//! Seeding: `REVERE_DIFF_SEED` (default 1) offsets every generator, so
//! `scripts/verify.sh` can sweep several seeds. Failures print the
//! offending query text and its canonical key.

use revere::prelude::*;
use revere::storage::Attribute;
use revere_util::prop::Gen;

/// Base seed for this run, from `REVERE_DIFF_SEED` (default 1).
fn diff_seed() -> u64 {
    std::env::var("REVERE_DIFF_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1)
}

/// Independent generator for one case: mixes the run seed with the case
/// index so cases stay decorrelated within and across seeds.
fn case_gen(case: u64) -> Gen {
    Gen::from_seed(diff_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case))
}

const INT_DOMAIN: [i64; 4] = [0, 1, 2, 3];
const STR_DOMAIN: [&str; 3] = ["a", "b", "c"];
const VARS: [&str; 5] = ["X0", "X1", "X2", "X3", "X4"];

/// A random catalog: 2–4 relations `r0..`, arity 1–3, each column int or
/// text, 0–10 rows drawn from tiny domains (small domains force joins and
/// duplicates — the cases where bag semantics and join order can bite).
fn random_catalog(g: &mut Gen) -> Catalog {
    let mut catalog = Catalog::new();
    let n_rels = *g.pick(&[2usize, 3, 4]);
    for ri in 0..n_rels {
        let int_cols: Vec<bool> = g.vec(1..4, |g| *g.pick(&[true, false]));
        let attrs: Vec<Attribute> = int_cols
            .iter()
            .enumerate()
            .map(|(ci, is_int)| {
                if *is_int {
                    Attribute::int(format!("c{ci}"))
                } else {
                    Attribute::text(format!("c{ci}"))
                }
            })
            .collect();
        let mut rel = Relation::new(RelSchema::new(format!("r{ri}"), attrs));
        let rows = g.vec(0..11, |g| {
            int_cols
                .iter()
                .map(|is_int| {
                    if *is_int {
                        Value::Int(*g.pick(&INT_DOMAIN))
                    } else {
                        Value::str(*g.pick(&STR_DOMAIN))
                    }
                })
                .collect::<Vec<Value>>()
        });
        for row in rows {
            rel.insert(row);
        }
        catalog.register(rel);
    }
    catalog.analyze();
    catalog
}

/// A random constant, rendered for the query parser.
fn random_const(g: &mut Gen) -> String {
    if *g.pick(&[true, false]) {
        g.pick(&INT_DOMAIN).to_string()
    } else {
        format!("'{}'", g.pick(&STR_DOMAIN))
    }
}

/// A random safe conjunctive query over `catalog`, as text. 1–3 atoms,
/// variables shared across atoms (small pool ⇒ frequent joins and
/// repeated variables *within* one atom), constants in atom positions,
/// 0–2 comparisons over body variables. With `break_it`, the query instead
/// references a missing relation or uses a real one at the wrong arity —
/// the planned and naive evaluators must produce the *same* error.
fn random_query(g: &mut Gen, catalog: &Catalog, head_arity: Option<usize>, break_it: bool) -> String {
    let rels: Vec<(String, usize)> = catalog
        .names()
        .map(|n| (n.to_string(), catalog.get(n).unwrap().schema.arity()))
        .collect();
    let n_atoms = *g.pick(&[1usize, 2, 2, 3]);
    let broken_atom = if break_it { *g.pick(&[0, n_atoms - 1]) } else { usize::MAX };
    let mut body = Vec::new();
    let mut used: Vec<&str> = Vec::new();
    for ai in 0..n_atoms {
        let (name, mut arity) = g.pick(&rels).clone();
        let name = if ai == broken_atom && *g.pick(&[true, false]) {
            "ghost".to_string() // unknown relation
        } else {
            if ai == broken_atom {
                arity += 1; // known relation, wrong arity
            }
            name
        };
        let terms: Vec<String> = (0..arity)
            .map(|ti| {
                // The first position is always a variable, so the query is
                // safe even when every other position draws a constant.
                if (ai == 0 && ti == 0) || *g.pick(&[true, true, true, false]) {
                    let v = *g.pick(&VARS);
                    if !used.contains(&v) {
                        used.push(v);
                    }
                    v.to_string()
                } else {
                    random_const(g)
                }
            })
            .collect();
        body.push(format!("{name}({})", terms.join(", ")));
    }
    for _ in 0..*g.pick(&[0usize, 0, 1, 2]) {
        let v = *g.pick(&used);
        let op = *g.pick(&["=", "!=", "<", "<=", ">", ">="]);
        body.push(format!("{v} {op} {}", random_const(g)));
    }
    let h = head_arity.unwrap_or(*g.pick(&[1usize, 1, 2, 3]));
    let head: Vec<String> = (0..h).map(|_| g.pick(&used).to_string()).collect();
    format!("q({}) :- {}", head.join(", "), body.join(", "))
}

/// Rows of a relation in a canonical order, for byte-level comparison.
fn sorted_rows(r: Relation) -> Vec<Vec<Value>> {
    r.sorted().into_rows()
}

/// Assert planned ≡ naive for one query under both bag and set semantics,
/// including agreement on errors.
fn assert_agrees(case: u64, text: &str, q: &ConjunctiveQuery, catalog: &Catalog) {
    let ctx = || format!("case {case}, query `{text}`, canonical `{}`", q.canonical_key());
    match (eval_cq_bag(q, catalog), eval_naive_bag(q, catalog)) {
        (Ok(p), Ok(n)) => {
            assert_eq!(sorted_rows(p), sorted_rows(n), "bag semantics diverged: {}", ctx())
        }
        (Err(p), Err(n)) => assert_eq!(p, n, "errors diverged: {}", ctx()),
        (p, n) => panic!("planned {p:?} vs naive {n:?}: {}", ctx()),
    }
    match (eval_cq(q, catalog), eval_naive(q, catalog)) {
        (Ok(p), Ok(n)) => {
            assert_eq!(sorted_rows(p), sorted_rows(n), "set semantics diverged: {}", ctx())
        }
        (Err(p), Err(n)) => assert_eq!(p, n, "errors diverged (set): {}", ctx()),
        (p, n) => panic!("planned {p:?} vs naive {n:?} (set): {}", ctx()),
    }
}

#[test]
fn planned_evaluator_agrees_with_naive_oracle() {
    for case in 0..64 {
        let mut g = case_gen(case);
        let catalog = random_catalog(&mut g);
        let text = random_query(&mut g, &catalog, None, false);
        let q = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
        assert!(q.is_safe(), "case {case}: generated unsafe query `{text}`");
        assert_agrees(case, &text, &q, &catalog);
    }
}

/// Learned join statistics steer the *planner*, never the *answers*: a
/// catalog poisoned with arbitrary (including wildly wrong) learned
/// overlaps must evaluate every query exactly like the naive oracle, and
/// the uniform-selectivity plan of the same query must agree row for row.
#[test]
fn learned_statistics_never_change_answers() {
    for case in 0..32 {
        let mut g = case_gen(40_000 + case);
        let mut catalog = random_catalog(&mut g);
        let names: Vec<String> = catalog.names().map(str::to_string).collect();
        for _ in 0..*g.pick(&[1usize, 2, 4]) {
            let ra = g.pick(&names).clone();
            let rb = g.pick(&names).clone();
            let (ca, cb) = (*g.pick(&[0usize, 1, 2]), *g.pick(&[0usize, 1, 2]));
            let sel = *g.pick(&[1e-6, 0.01, 0.5, 1.0]);
            catalog.note_join_overlap(&ra, ca, &rb, cb, sel);
        }
        let text = random_query(&mut g, &catalog, None, false);
        let q = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
        assert_agrees(case, &text, &q, &catalog);
        let uniform =
            plan_cq_opts(&q, &catalog, Strategy::CostBased, Selectivity::Uniform);
        let planned = eval_cq_bag_planned(&q, &uniform, &catalog).map(sorted_rows);
        let naive = eval_naive_bag(&q, &catalog).map(sorted_rows);
        assert_eq!(planned, naive, "case {case}: uniform plan of `{text}` diverged");
    }
}

#[test]
fn planned_and_naive_agree_on_broken_queries() {
    for case in 0..32 {
        let mut g = case_gen(10_000 + case);
        let catalog = random_catalog(&mut g);
        let text = random_query(&mut g, &catalog, None, true);
        let q = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
        let planned = eval_cq_bag(&q, &catalog);
        let naive = eval_naive_bag(&q, &catalog);
        assert!(planned.is_err(), "case {case}: `{text}` should not evaluate");
        assert_eq!(planned, naive, "case {case}: `{text}` errors diverged");
    }
}

#[test]
fn planned_union_agrees_with_naive_union() {
    for case in 0..24 {
        let mut g = case_gen(20_000 + case);
        let catalog = random_catalog(&mut g);
        let arity = *g.pick(&[1usize, 2]);
        let k = *g.pick(&[1usize, 2, 3]);
        let mut texts = Vec::new();
        let mut union: Option<UnionQuery> = None;
        for _ in 0..k {
            // One disjunct in three may be broken: the union evaluator
            // skips unavailable disjuncts, and both paths must skip the
            // same ones.
            let broken = *g.pick(&[false, false, true]);
            let text = random_query(&mut g, &catalog, Some(arity), broken);
            let d = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
            texts.push(text);
            match union.as_mut() {
                None => union = Some(UnionQuery::single(d)),
                Some(u) => u.push_dedup(d),
            }
        }
        let union = union.unwrap();
        let planned = eval_union(&union, &catalog).map(sorted_rows);
        let naive = eval_naive_union(&union, &catalog).map(sorted_rows);
        assert_eq!(planned, naive, "case {case}: union of {texts:?} diverged");
    }
}

/// A random view set over the fixed two-relation schema `r0(a,b)`,
/// `r1(b,c)`, plus a random query — every MiniCon rewriting, expanded
/// back through the view definitions, must be contained in the query.
#[test]
fn minicon_rewritings_expand_to_contained_queries() {
    let shapes = [
        "q(X, Y) :- r0(X, Z), r1(Z, Y)",
        "q(X) :- r0(X, Z), r1(Z, Y)",
        "q(X, Z) :- r0(X, Z)",
        "q(X) :- r0(X, X)",
        "q(X, Y) :- r0(X, Z), r0(Z, Y)",
    ];
    let view_shapes = [
        "v0(A, B) :- r0(A, B)",
        "v1(A, B) :- r1(A, B)",
        "v2(A, C) :- r0(A, B), r1(B, C)",
        "v3(A) :- r0(A, B)",
        "v4(A, B, C) :- r0(A, B), r1(B, C)",
    ];
    for case in 0..32 {
        let mut g = case_gen(30_000 + case);
        let q = parse_query(*g.pick(&shapes)).unwrap();
        let views: Vec<ViewDef> = g
            .vec(1..4, |g| *g.pick(&view_shapes))
            .into_iter()
            .map(|s| ViewDef::from_query(&parse_query(s).unwrap()))
            .collect();
        for r in rewrite_using_views(&q, &views) {
            for expanded in unfold_with(&r, &views, 8) {
                assert!(
                    contained_in(&expanded, &q),
                    "case {case}: unsound rewriting `{r}` of `{q}` — expansion `{expanded}` \
                     (canonical `{}`) is not contained in the query",
                    expanded.canonical_key()
                );
            }
        }
    }
}

/// Every disjunct the PDMS reformulator emits, translated back into the
/// querying peer's vocabulary, must be contained in the original query.
/// The network's mappings are pure renamings (peer i's `course` is peer
/// j's `course`), so the translation is just re-qualifying each atom's
/// relation name — any variable-wiring mistake in reformulation would
/// break containment.
#[test]
fn reformulated_disjuncts_are_contained_in_the_original_query() {
    let mut net = PdmsNetwork::new();
    for name in ["A", "B", "C"] {
        let mut p = Peer::new(name);
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        r.insert(vec![Value::str(format!("intro at {name}")), Value::Int(30)]);
        p.add_relation(r);
        net.add_peer(p);
    }
    for (i, (a, b)) in [("A", "B"), ("B", "C")].iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{i}"),
                *a,
                *b,
                &format!("m(T, E) :- {a}.course(T, E) ==> m(T, E) :- {b}.course(T, E)"),
            )
            .unwrap(),
        );
    }
    for text in [
        "q(T, E) :- A.course(T, E)",
        "q(T) :- A.course(T, E), E > 20",
        "q(T, U) :- A.course(T, E), A.course(U, E)",
    ] {
        let q = parse_query(text).unwrap();
        let out = net.query_str("A", text).expect("query runs");
        assert!(out.reformulation.union.len() > 1, "expected remote disjuncts for `{text}`");
        for d in &out.reformulation.union.disjuncts {
            let mut renamed = d.clone();
            for atom in &mut renamed.body {
                if let Some((_, rel)) = atom.relation.split_once('.') {
                    atom.relation = format!("A.{rel}");
                }
            }
            assert!(
                contained_in(&renamed, &q),
                "disjunct `{d}` of `{text}` escapes the query: renamed `{renamed}` \
                 (canonical `{}`) is not contained in it",
                renamed.canonical_key()
            );
        }
    }
}
