//! Differential testing for incremental view maintenance.
//!
//! The delta-dataflow circuits ([`DataflowView`]) and the counting
//! maintainer ([`MaterializedView`] driven by [`maintain`]) both promise
//! the same contract: after any sequence of updategrams, the maintained
//! state equals what a from-scratch evaluation of the defining query over
//! the current catalog would produce. These tests generate random
//! catalogs, random conjunctive queries (self-joins, constants,
//! comparisons), and adversarial gram sequences — duplicate inserts,
//! multi-copy deletes, deletes of absent rows, bulk dataset joins and
//! leaves, churn on unrelated relations — and after **every** gram hold
//! both maintainers to the recompute oracle byte for byte.
//!
//! Seeding: `REVERE_IVM_SEED` (default 7) offsets every generator;
//! `scripts/verify.sh` sweeps `REVERE_IVM_SEEDS` (default `7 42 1003`).

use revere::prelude::*;
use revere::storage::Attribute;
use revere_util::prop::Gen;
use revere_util::RngExt;

/// Base seed for this run, from `REVERE_IVM_SEED` (default 7).
fn ivm_seed() -> u64 {
    std::env::var("REVERE_IVM_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7)
}

/// Independent generator for one case: mixes the run seed with the case
/// index so cases stay decorrelated within and across seeds.
fn case_gen(case: u64) -> Gen {
    Gen::from_seed(ivm_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(case))
}

const VARS: [&str; 5] = ["A", "B", "C", "D", "E"];

/// A random row for a binary int relation. The tiny domain forces joins,
/// duplicates, and delete collisions.
fn random_row(g: &mut Gen) -> Vec<Value> {
    vec![Value::Int(g.random_range(0i64..4)), Value::Int(g.random_range(0i64..4))]
}

/// A random catalog: 2–4 binary int relations `r0..` with 0–10 rows each
/// (duplicates included — bag semantics must survive maintenance), plus a
/// decoy relation `noise` the queries never mention.
fn random_catalog(g: &mut Gen) -> Catalog {
    let mut catalog = Catalog::new();
    let n_rels = *g.pick(&[2usize, 3, 4]);
    for ri in 0..n_rels {
        let mut rel = Relation::new(RelSchema::new(
            format!("r{ri}"),
            vec![Attribute::int("c0"), Attribute::int("c1")],
        ));
        for row in g.vec(0..11, random_row) {
            rel.insert(row);
        }
        catalog.register(rel);
    }
    let mut noise = Relation::new(RelSchema::new(
        "noise",
        vec![Attribute::int("c0"), Attribute::int("c1")],
    ));
    for row in g.vec(0..4, random_row) {
        noise.insert(row);
    }
    catalog.register(noise);
    catalog.analyze();
    catalog
}

/// A random safe conjunctive query over the `r*` relations: 2–3 atoms
/// (relations drawn with replacement, so self-joins happen), a small
/// variable pool (frequent join columns and repeated variables), optional
/// constants in atom positions, 0–2 comparisons over body variables.
fn random_query_text(g: &mut Gen, catalog: &Catalog) -> String {
    let rels: Vec<String> =
        catalog.names().filter(|n| n.starts_with('r')).map(str::to_string).collect();
    let n_atoms = *g.pick(&[2usize, 2, 3]);
    let mut body = Vec::new();
    let mut used: Vec<&str> = Vec::new();
    for ai in 0..n_atoms {
        let name = g.pick(&rels).clone();
        let terms: Vec<String> = (0..2)
            .map(|ti| {
                if (ai == 0 && ti == 0) || *g.pick(&[true, true, true, false]) {
                    let v = *g.pick(&VARS);
                    if !used.contains(&v) {
                        used.push(v);
                    }
                    v.to_string()
                } else {
                    g.random_range(0i64..4).to_string()
                }
            })
            .collect();
        body.push(format!("{name}({})", terms.join(", ")));
    }
    for _ in 0..*g.pick(&[0usize, 0, 1, 2]) {
        let v = *g.pick(&used);
        let op = *g.pick(&["=", "!=", "<", "<=", ">", ">="]);
        body.push(format!("{v} {op} {}", g.random_range(0i64..4)));
    }
    let h = *g.pick(&[1usize, 1, 2]);
    let head: Vec<String> = (0..h).map(|_| g.pick(&used).to_string()).collect();
    format!("q({}) :- {}", head.join(", "), body.join(", "))
}

/// A random updategram against the current catalog. Mixes the adversarial
/// shapes incremental maintainers get wrong: inserting rows that already
/// exist (multiplicity goes up, not set membership), deleting rows held at
/// multiplicity > 1, deleting rows that are absent (a no-op the delta path
/// must also treat as one), whole-dataset bulk arrivals and departures
/// (a peer joining or leaving the network), and churn on a relation the
/// query never reads.
fn random_gram(g: &mut Gen, catalog: &Catalog) -> Updategram {
    let names: Vec<String> = catalog.names().map(str::to_string).collect();
    let rel = if g.random_bool(0.15) {
        "noise".to_string()
    } else {
        g.pick(&names).clone()
    };
    let existing: Vec<Vec<Value>> = catalog.get(&rel).map(|r| r.rows().to_vec()).unwrap_or_default();
    match g.random_range(0i64..10) {
        // Fresh inserts (often colliding with existing rows anyway).
        0..=2 => Updategram::inserts(&rel, g.vec(1..4, random_row)),
        // Duplicate insert: re-assert a row that is already there.
        3 if !existing.is_empty() => {
            let row = g.pick(&existing).clone();
            Updategram::inserts(&rel, vec![row.clone(), row])
        }
        // Targeted delete (hits multi-copy rows when the bag has them).
        4..=5 if !existing.is_empty() => {
            Updategram::deletes(&rel, vec![g.pick(&existing).clone()])
        }
        // Delete of a row that may not exist.
        6 => Updategram::deletes(&rel, vec![random_row(g)]),
        // Mixed gram: deletes processed before inserts.
        7 => {
            let delete = if existing.is_empty() {
                vec![random_row(g)]
            } else {
                vec![g.pick(&existing).clone()]
            };
            Updategram { relation: rel, insert: g.vec(1..3, random_row), delete }
        }
        // Bulk join: a whole dataset arrives at once.
        8 => Updategram::inserts(&rel, g.vec(5..11, random_row)),
        // Bulk leave: the dataset departs (every distinct row deleted).
        _ => {
            let mut distinct = existing;
            distinct.sort();
            distinct.dedup();
            Updategram::deletes(&rel, distinct)
        }
    }
}

/// Rows of a relation in a canonical order, for byte-level comparison.
fn sorted_rows(r: Relation) -> Vec<Vec<Value>> {
    r.sorted().into_rows()
}

/// Hold one case to the oracle: after every gram, the circuit's bag equals
/// `eval_cq_bag_planned` recomputed from scratch, its set view equals
/// `eval_cq`, and the counting maintainer agrees with both. Returns false
/// when the generated query compiles to no circuit (skipped case).
fn run_case(case: u64, grams: usize) -> bool {
    let mut g = case_gen(case);
    let mut catalog = random_catalog(&mut g);
    let text = random_query_text(&mut g, &catalog);
    let q = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: `{text}`: {e}"));
    assert!(q.is_safe(), "case {case}: generated unsafe query `{text}`");

    let Ok(mut flow) = DataflowView::new("flow", q.clone(), &catalog) else {
        return false;
    };
    let mut counting_catalog = catalog.clone();
    let mut counting = MaterializedView::new("count", q.clone());
    counting.refresh_full(&counting_catalog).unwrap();

    for round in 0..grams {
        let gram = random_gram(&mut g, &catalog);
        flow.apply_gram(&mut catalog, &gram);
        maintain(
            &mut counting_catalog,
            &mut counting,
            std::slice::from_ref(&gram),
            Some(MaintenanceChoice::Incremental),
        )
        .unwrap();

        let ctx = || {
            format!(
                "case {case}, round {round}, query `{text}`, gram on `{}` (+{} -{})",
                gram.relation,
                gram.insert.len(),
                gram.delete.len()
            )
        };
        let plan = plan_cq(&q, &catalog);
        let bag_oracle = eval_cq_bag_planned(&q, &plan, &catalog).unwrap();
        assert_eq!(
            sorted_rows(flow.as_bag()),
            sorted_rows(bag_oracle),
            "circuit bag drifted from recompute: {}",
            ctx()
        );
        let set_oracle = eval_cq(&q, &catalog).unwrap();
        assert_eq!(
            sorted_rows(flow.as_relation()),
            sorted_rows(set_oracle.clone()),
            "circuit set drifted from recompute: {}",
            ctx()
        );
        assert_eq!(
            sorted_rows(counting.as_relation()),
            sorted_rows(set_oracle),
            "counting maintainer drifted from recompute: {}",
            ctx()
        );
    }
    true
}

#[test]
fn circuits_track_recompute_after_every_gram() {
    let mut compiled = 0;
    for case in 0..16u64 {
        if run_case(case, 40) {
            compiled += 1;
        }
    }
    assert!(compiled >= 12, "only {compiled}/16 generated queries compiled to circuits");
}

/// Long single-case soak: one query, hundreds of grams, catching drift
/// that only accumulates (arrangement leaks, sign errors that cancel over
/// short runs).
#[test]
fn one_circuit_survives_a_long_gram_stream() {
    assert!(
        run_case(90_001, 250) || run_case(90_002, 250),
        "soak cases failed to compile a circuit"
    );
}
