//! Integration: the PDMS under deterministic chaos (spanning revere-util's
//! fault substrate, revere-pdms networking and propagation).
//!
//! Every test reads its seed from `REVERE_CHAOS_SEED` (default 7) and must
//! hold for *any* seed: assertions are about invariants (determinism,
//! reported gaps, exactly-once application, budget honoring), never about
//! which specific peers a given seed happens to down.
//!
//! `scripts/verify.sh` runs this suite under several seeds; override the
//! set with `REVERE_CHAOS_SEEDS="1 2 3" scripts/verify.sh`.

use revere::pdms::durable::{checkpoint, recover, PeerDisk};
use revere::prelude::*;
use revere::storage::Attribute;

/// The seed under test: `REVERE_CHAOS_SEED` or 7.
fn chaos_seed() -> u64 {
    std::env::var("REVERE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7)
}

/// An `n`-peer PDMS over `topology`, one course row per peer.
fn build_network(kind: TopologyKind, n: usize, seed: u64) -> PdmsNetwork {
    let topology = Topology::generate(kind, n, seed);
    let mut net = PdmsNetwork::new();
    for i in 0..n {
        let mut p = Peer::new(format!("P{i}"));
        let mut r = Relation::new(RelSchema::new(
            "course",
            vec![Attribute::text("title"), Attribute::int("enrollment")],
        ));
        r.insert(vec![Value::str(format!("Course at P{i}")), Value::Int(10 + i as i64)]);
        p.add_relation(r);
        net.add_peer(p);
    }
    for (idx, (a, b)) in topology.edges.iter().enumerate() {
        net.add_mapping(
            GlavMapping::parse(
                format!("m{idx}"),
                format!("P{a}"),
                format!("P{b}"),
                &format!("m(T, E) :- P{a}.course(T, E) ==> m(T, E) :- P{b}.course(T, E)"),
            )
            .expect("mapping parses"),
        );
    }
    net
}

fn sorted_rows(out: &QueryOutcome) -> Vec<Vec<Value>> {
    let mut rows = out.answers.rows().to_vec();
    rows.sort();
    rows
}

#[test]
fn same_seed_chaos_runs_are_identical() {
    let run = || {
        let mut net = build_network(TopologyKind::Random { extra: 2 }, 10, 3);
        net.faults = FaultPlan::new(FaultSpec::chaos(chaos_seed(), 0.3));
        net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(sorted_rows(&a), sorted_rows(&b));
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.tuples_shipped, b.tuples_shipped);
    assert_eq!(a.completeness, b.completeness);
}

#[test]
fn downed_peer_yields_partial_answer_naming_it() {
    let mut net = build_network(TopologyKind::Chain, 4, 0);
    // Probabilities stay zero; P2 is forced down regardless of seed.
    net.faults = FaultPlan::new(
        FaultSpec { seed: chaos_seed(), ..FaultSpec::default() }.with_down_peer("P2"),
    );
    let out = net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
    // The other three peers still answer (reformulation composes the
    // mappings, so P3 is fetched directly — not routed through P2)...
    assert_eq!(out.answers.len(), 3, "{}", out.answers);
    assert!(!out.answers.iter().any(|r| r[0] == Value::str("Course at P2")));
    // ...and the gap is named, not silently absorbed.
    assert!(!out.completeness.is_complete());
    assert!(out.completeness.peers_unreachable.contains("P2"));
    assert!(out.completeness.relations_missing.contains("P2.course"));
    assert!(out.completeness.retries > 0, "down peer should have been retried");
    assert!(out.completeness.messages_dropped > 0);
}

#[test]
fn zero_fault_plan_matches_default_network_bit_for_bit() {
    let plain = build_network(TopologyKind::Random { extra: 2 }, 8, 11);
    let mut zeroed = build_network(TopologyKind::Random { extra: 2 }, 8, 11);
    zeroed.faults = FaultPlan::new(FaultSpec::chaos(chaos_seed(), 0.0));
    assert!(zeroed.faults.is_zero());
    let a = plain.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
    let b = zeroed.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
    assert_eq!(a.answers.rows(), b.answers.rows());
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.tuples_shipped, b.tuples_shipped);
    assert_eq!(a.peers_contacted, b.peers_contacted);
    assert!(b.completeness.is_complete());
    assert_eq!(b.completeness.retries, 0);
    assert_eq!(b.completeness.latency_ticks, 0);
}

#[test]
fn sequential_and_parallel_agree_under_chaos() {
    let mut net = build_network(TopologyKind::Random { extra: 3 }, 9, 5);
    net.faults = FaultPlan::new(FaultSpec::chaos(chaos_seed(), 0.35));
    let q = parse_query("q(T, E) :- P1.course(T, E)").unwrap();
    let seq = net.query("P1", &q).unwrap();
    let par = net.query_parallel("P1", &q).unwrap();
    assert_eq!(sorted_rows(&seq), sorted_rows(&par));
    assert_eq!(seq.messages, par.messages);
    assert_eq!(seq.tuples_shipped, par.tuples_shipped);
    assert_eq!(seq.completeness, par.completeness);
}

#[test]
fn message_budget_is_honored_and_reported() {
    let mut net = build_network(TopologyKind::Chain, 6, 0);
    net.budget = QueryBudget { max_messages: Some(4), deadline_ticks: None };
    let out = net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
    assert!(out.messages <= 4, "spent {} messages", out.messages);
    assert!(out.completeness.budget_exhausted);
    assert!(!out.completeness.is_complete());
    // The local row plus whatever fit in the budget.
    assert!(!out.answers.is_empty());
    assert!(out.answers.len() < 6, "{}", out.answers);
    assert!(!out.completeness.peers_unreachable.is_empty());
}

/// A one-relation remote cache: catalog holding `feed`, view caching it.
fn remote_cache() -> (Catalog, MaterializedView) {
    let mut rel = Relation::new(RelSchema::text("feed", &["title"]));
    rel.insert(vec!["Databases".into()]);
    let mut cat = Catalog::new();
    cat.register(rel);
    let mut view = MaterializedView::new("cache", parse_query("cache(T) :- feed(T)").unwrap());
    view.refresh_full(&cat).unwrap();
    (cat, view)
}

#[test]
fn duplicate_updategram_applies_exactly_once() {
    let (mut cat, mut view) = remote_cache();
    let mut inbox = GramInbox::new();
    let mut link = ReliableLink::new("M", FaultPlan::zero());
    let sealed = link.seal(Updategram::inserts("feed", vec![vec!["Greece".into()]]));
    // Shipped twice (sender crashed before recording the ack, say): the
    // second delivery is acknowledged but a no-op at the receiver.
    let first = link.ship(&sealed, &mut inbox, &mut cat, &mut view).unwrap();
    let second = link.ship(&sealed, &mut inbox, &mut cat, &mut view).unwrap();
    assert!(first.acknowledged && first.applied);
    assert!(second.acknowledged && !second.applied);
    assert_eq!(inbox.duplicates_ignored, 1);
    assert_eq!(inbox.applied_count(), 1);
    assert_eq!(cat.get("feed").unwrap().len(), 2, "insert applied exactly once");
    assert_eq!(view.len(), 2);
}

#[test]
fn lossy_link_still_delivers_exactly_once_to_the_cache() {
    let (mut cat, mut view) = remote_cache();
    let mut inbox = GramInbox::new();
    // Heavy drop/flaky/duplicate weather, but no outage: at-least-once
    // shipping converges for any seed within the round budget.
    let spec = FaultSpec {
        seed: chaos_seed(),
        drop_prob: 0.6,
        flaky_prob: 0.3,
        duplicate_prob: 0.4,
        ..FaultSpec::default()
    };
    let mut link = ReliableLink::new("M", FaultPlan::new(spec));
    let sealed = link.seal(Updategram::inserts("feed", vec![vec!["Greece".into()]]));
    let d = link
        .ship_until_acknowledged(&sealed, &mut inbox, &mut cat, &mut view, 64)
        .unwrap();
    assert!(d.acknowledged, "lossy link never converged: {:?}", link.stats);
    assert!(d.applied);
    // However many copies the weather produced, the cache saw one apply.
    assert_eq!(inbox.applied_count(), 1);
    assert_eq!(cat.get("feed").unwrap().len(), 2);
    assert_eq!(view.len(), 2);
}

// ---------------------------------------------------------------------
// Continuous queries under chaos (circuits × E12 weather × E16 restarts)
// ---------------------------------------------------------------------

/// The subscribing peer's base data for a joining continuous query:
/// `feed(title, kind)` and `tag(kind, label)`.
fn subscriber_catalog() -> Catalog {
    let mut feed = Relation::new(RelSchema::new(
        "feed",
        vec![Attribute::text("title"), Attribute::int("kind")],
    ));
    feed.insert(vec![Value::str("Databases"), Value::Int(0)]);
    feed.insert(vec![Value::str("Systems"), Value::Int(1)]);
    let mut tag = Relation::new(RelSchema::new(
        "tag",
        vec![Attribute::int("kind"), Attribute::text("label")],
    ));
    tag.insert(vec![Value::Int(0), Value::str("core")]);
    let mut cat = Catalog::new();
    cat.register(feed);
    cat.register(tag);
    cat
}

/// The deterministic updategram stream both twins replay: inserts on both
/// join sides (a `tag` insert re-derives many cached rows at once) and a
/// delete that always hits the previous tick's `feed` insert.
fn subscriber_gram(tick: u64) -> Updategram {
    match tick % 5 {
        0 | 1 | 3 => Updategram::inserts(
            "feed",
            vec![vec![Value::str(format!("t{tick}")), Value::Int((tick % 3) as i64)]],
        ),
        2 => Updategram::inserts(
            "tag",
            vec![vec![Value::Int((tick % 3) as i64), Value::str(format!("l{tick}"))]],
        ),
        _ => Updategram::deletes(
            "feed",
            vec![vec![Value::str(format!("t{}", tick - 1)), Value::Int(((tick - 1) % 3) as i64)]],
        ),
    }
}

/// One run of the stream into a circuit-backed continuous query behind
/// `spec` weather, optionally crashing the subscriber mid-stream and
/// recovering it from its disk (the circuit is volatile — it is rebuilt
/// from the recovered durable catalog). Returns the canonical end state:
/// (maintained bag rows, base catalog rows, grams applied).
fn dataflow_chaos_run(
    seed: u64,
    lossy: bool,
    crash_at: Option<u64>,
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>, usize) {
    const ROUNDS: u64 = 20;
    let plan = if lossy {
        FaultPlan::new(FaultSpec {
            seed,
            drop_prob: 0.6,
            flaky_prob: 0.3,
            duplicate_prob: 0.4,
            ..FaultSpec::default()
        })
    } else {
        FaultPlan::zero()
    };
    let disk = PeerDisk::new();
    let mut cat = subscriber_catalog();
    cat.attach_journal(disk.journal());
    checkpoint(&disk, &mut cat, &[], &[]);
    let q = parse_query("cache(T, L) :- feed(T, K), tag(K, L)").unwrap();
    let mut view = DataflowView::new("cache", q.clone(), &cat).unwrap();
    let mut inbox = GramInbox::durable("Src", disk.journal());
    let mut link = ReliableLink::new("Sub", plan);
    let mut pending: Vec<SequencedGram> = Vec::new();

    for tick in 0..ROUNDS {
        if crash_at == Some(tick) {
            drop(std::mem::take(&mut cat));
            let rec = recover(&disk).expect("subscriber recovers");
            cat = rec.catalog;
            inbox = rec
                .inboxes
                .into_iter()
                .find(|(l, _)| l == "Src")
                .map(|(_, i)| i)
                .unwrap_or_else(|| GramInbox::durable("Src", disk.journal()));
            view = DataflowView::new("cache", q.clone(), &cat).expect("circuit rebuilds");
        }
        pending.push(link.seal(subscriber_gram(tick)));
        // Ship strictly in sequence order: a delete must not overtake the
        // insert it targets (deletes of absent rows are no-ops, so
        // out-of-order delivery would not converge). The head gram blocks
        // the line until acknowledged.
        while let Some(g) = pending.first() {
            let d = link.ship_dataflow(g, &mut inbox, &mut cat, &mut view).expect("ship");
            if d.acknowledged {
                pending.remove(0);
            } else {
                break;
            }
        }
        if tick % 6 == 5 {
            checkpoint(&disk, &mut cat, &[&inbox], &[]);
        }
    }
    let mut rounds = 0;
    while let Some(g) = pending.first() {
        let d = link.ship_dataflow(g, &mut inbox, &mut cat, &mut view).expect("ship");
        if d.acknowledged {
            pending.remove(0);
        }
        rounds += 1;
        assert!(rounds < 10_000, "lossy-but-live weather must drain");
    }

    // Whatever the weather did, the circuit must agree with a fresh
    // evaluation of its own definition over the final base state.
    let oracle = eval_cq_bag_planned(&q, &plan_cq(&q, &cat), &cat).unwrap().sorted();
    assert_eq!(view.as_bag().rows(), oracle.rows(), "circuit drifted from recompute");

    let mut bag = view.as_bag().rows().to_vec();
    bag.sort();
    let mut base: Vec<Vec<Value>> = Vec::new();
    for rel in ["feed", "tag"] {
        base.extend(cat.get(rel).unwrap().rows().iter().cloned());
    }
    base.sort();
    (bag, base, inbox.applied_count())
}

#[test]
fn subscribed_circuit_under_chaos_converges_to_the_fault_free_twin() {
    let seed = chaos_seed();
    let clean = dataflow_chaos_run(seed, false, None);
    assert_eq!(clean.2, 20, "fault-free twin applies every gram once");
    let lossy = dataflow_chaos_run(seed, true, None);
    assert_eq!(lossy, clean, "seed {seed}: lossy weather diverged from the fault-free twin");
    // Crash-and-recover mid-stream: the durable catalog + inbox watermark
    // come back, the circuit re-seeds from them, and the stream continues
    // exactly-once — including re-deliveries of grams applied pre-crash.
    for crash_tick in [3u64, 9, 16] {
        let crashy = dataflow_chaos_run(seed, true, Some(crash_tick));
        assert_eq!(
            crashy, clean,
            "seed {seed}: crash at tick {crash_tick} diverged from the fault-free twin"
        );
    }
}

#[test]
fn raising_the_dial_never_creates_answers() {
    // Fixed dice, moving thresholds: with one seed, a higher failure rate
    // can only shrink the answer set.
    let mut counts = Vec::new();
    for rate in [0.0, 0.2, 0.4, 0.6] {
        let mut net = build_network(TopologyKind::Random { extra: 2 }, 10, 3);
        net.faults = FaultPlan::new(FaultSpec::chaos(chaos_seed(), rate));
        let out = net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
        counts.push(out.answers.len());
    }
    assert!(counts.windows(2).all(|w| w[1] <= w[0]), "{counts:?}");
}

#[test]
fn crash_at_tick_zero_is_indistinguishable_from_a_downed_peer() {
    // A peer whose kill-at-tick event fires before the query starts is
    // down for the whole query: answers and the completeness report must
    // match the static-outage plan exactly.
    let run = |spec: FaultSpec| {
        let mut net = build_network(TopologyKind::Chain, 6, 3);
        net.faults = FaultPlan::new(spec);
        net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap()
    };
    let crashed = run(FaultSpec::default().with_crash("P3", 0));
    let downed = run(FaultSpec::default().with_down_peer("P3"));
    assert_eq!(sorted_rows(&crashed), sorted_rows(&downed));
    assert_eq!(
        crashed.completeness.peers_unreachable,
        downed.completeness.peers_unreachable
    );
    assert!(!crashed.completeness.is_complete());
    assert!(crashed.completeness.peers_unreachable.contains("P3"));
}

#[test]
fn mid_query_crashes_surface_as_reported_gaps_never_silent_shrink() {
    // Kill-at-tick events landing *during* the fetch phase (the message
    // latency advances the query clock past them) may cost answers, but
    // every lost answer must be blamed in the completeness report — a
    // crash never silently shrinks the answer set.
    let seed = chaos_seed();
    let baseline = {
        let mut net = build_network(TopologyKind::Random { extra: 2 }, 10, 3);
        net.faults = FaultPlan::new(FaultSpec {
            seed,
            latency_ticks: (1, 3),
            ..FaultSpec::default()
        });
        net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap()
    };
    assert!(baseline.completeness.is_complete(), "latency alone loses nothing");
    for tick in [1u64, 4, 8, 16] {
        let mut spec = FaultSpec { seed, latency_ticks: (1, 3), ..FaultSpec::default() };
        for p in 1..10 {
            // Stagger the kills so different peers die at different ticks.
            spec = spec.with_crash(format!("P{p}"), tick + p % 3);
        }
        let mut net = build_network(TopologyKind::Random { extra: 2 }, 10, 3);
        net.faults = FaultPlan::new(spec);
        let out = net.query_str("P0", "q(T, E) :- P0.course(T, E)").unwrap();
        assert!(out.answers.len() <= baseline.answers.len());
        if out.answers.len() < baseline.answers.len() {
            assert!(
                !out.completeness.is_complete(),
                "tick {tick}: shrunken answers with a clean report"
            );
            assert!(
                !out.completeness.peers_unreachable.is_empty()
                    || out.completeness.disjuncts_dropped > 0,
                "tick {tick}: the gap names no culprit: {:?}",
                out.completeness
            );
        }
    }
}
