//! Composite statistics over partial structures (§4.2.2).
//!
//! "Composite statistics are similar to the ones above, but maintained
//! about partial structures ... the number of partial structures is
//! virtually infinite, and we will not be able to maintain all possible
//! statistics. Hence, we will maintain only statistics on partial
//! structures that appear frequently (discovered using techniques such as
//! \[50, 18, 39\]), and estimate the statistics for other partial
//! structures."
//!
//! A *partial structure* here is a set of (stemmed) attribute terms
//! co-resident in one relation. [`FrequentStructures::mine`] runs a
//! bottom-up apriori pass to find all such sets above a support
//! threshold; [`FrequentStructures::support`] answers exact counts for
//! mined sets and falls back to an independence-style **estimate** for
//! everything else — exactly the maintain-frequent/estimate-rest split
//! the paper prescribes.

use crate::corpus::Corpus;
use crate::text::{stem, tokenize};
use std::collections::{BTreeMap, BTreeSet};

/// An itemset of stemmed attribute terms.
pub type StructureKey = BTreeSet<String>;

/// Mined frequent attribute-sets with an estimator for the rest.
#[derive(Debug, Clone)]
pub struct FrequentStructures {
    /// Frequent itemsets (size ≥ 1) → exact support (relations containing
    /// all the terms).
    frequent: BTreeMap<StructureKey, usize>,
    /// Total relations scanned.
    pub relation_count: usize,
    /// The support threshold used.
    pub min_support: usize,
    /// Largest itemset size mined.
    pub max_size: usize,
}

/// Exact or estimated support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Support {
    /// The structure was mined: exact relation count.
    Exact(usize),
    /// The structure is infrequent/unseen: an independence estimate.
    Estimated(f64),
}

impl Support {
    /// The numeric value either way.
    pub fn value(&self) -> f64 {
        match self {
            Support::Exact(n) => *n as f64,
            Support::Estimated(e) => *e,
        }
    }
}

impl FrequentStructures {
    /// Mine all attribute-term itemsets with support ≥ `min_support`, up
    /// to `max_size` terms (apriori: every frequent k-set's (k−1)-subsets
    /// are frequent, so candidates are joined from the previous level).
    pub fn mine(corpus: &Corpus, min_support: usize, max_size: usize) -> FrequentStructures {
        // Transaction list: the stemmed attribute-term set of each relation.
        let transactions: Vec<StructureKey> = corpus
            .entries
            .iter()
            .flat_map(|e| e.schema.relations.iter())
            .map(|r| {
                r.attrs
                    .iter()
                    .flat_map(|a| tokenize(&a.name))
                    .map(|t| stem(&t))
                    .collect()
            })
            .collect();
        let mut frequent: BTreeMap<StructureKey, usize> = BTreeMap::new();

        // Level 1.
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for tx in &transactions {
            for t in tx {
                *counts.entry(t.clone()).or_default() += 1;
            }
        }
        let mut level: Vec<StructureKey> = Vec::new();
        for (t, n) in counts {
            if n >= min_support {
                let key: StructureKey = [t].into_iter().collect();
                frequent.insert(key.clone(), n);
                level.push(key);
            }
        }

        // Levels 2..=max_size.
        for _size in 2..=max_size {
            // Candidate generation: union pairs from the previous level
            // differing by one element.
            let mut candidates: BTreeSet<StructureKey> = BTreeSet::new();
            for (i, a) in level.iter().enumerate() {
                for b in level.iter().skip(i + 1) {
                    let union: StructureKey = a.union(b).cloned().collect();
                    if union.len() == a.len() + 1 {
                        // Apriori check: all subsets of size |a| frequent.
                        let all_frequent = union.iter().all(|drop| {
                            let sub: StructureKey =
                                union.iter().filter(|t| *t != drop).cloned().collect();
                            frequent.contains_key(&sub)
                        });
                        if all_frequent {
                            candidates.insert(union);
                        }
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            let mut next_level = Vec::new();
            for cand in candidates {
                let n = transactions.iter().filter(|tx| cand.is_subset(tx)).count();
                if n >= min_support {
                    frequent.insert(cand.clone(), n);
                    next_level.push(cand);
                }
            }
            if next_level.is_empty() {
                break;
            }
            level = next_level;
        }
        FrequentStructures {
            frequent,
            relation_count: transactions.len(),
            min_support,
            max_size,
        }
    }

    /// Support of an arbitrary attribute-term set: exact when mined,
    /// otherwise estimated by scaling the best mined-subset support by the
    /// marginal frequencies of the missing terms (independence
    /// assumption) — "estimate the statistics for other partial
    /// structures".
    pub fn support(&self, terms: &[&str]) -> Support {
        let key: StructureKey = terms.iter().map(|t| stem(t)).collect();
        if let Some(&n) = self.frequent.get(&key) {
            return Support::Exact(n);
        }
        if self.relation_count == 0 || key.is_empty() {
            return Support::Estimated(0.0);
        }
        // Find the largest mined subset of the key.
        let mut best_subset: Option<(&StructureKey, usize)> = None;
        for (k, &n) in &self.frequent {
            if k.is_subset(&key) {
                let better = match best_subset {
                    None => true,
                    Some((bk, _)) => k.len() > bk.len(),
                };
                if better {
                    best_subset = Some((k, n));
                }
            }
        }
        let (base_set, base_n) = match best_subset {
            Some(x) => x,
            None => return Support::Estimated(0.0),
        };
        // Multiply in each missing term's marginal probability.
        let mut estimate = base_n as f64;
        for t in key.difference(base_set) {
            let single: StructureKey = [t.clone()].into_iter().collect();
            let marginal = self
                .frequent
                .get(&single)
                .map(|&n| n as f64 / self.relation_count as f64)
                // Below threshold: bound by (min_support − 1) occurrences.
                .unwrap_or((self.min_support.saturating_sub(1)) as f64 / self.relation_count as f64);
            estimate *= marginal;
        }
        Support::Estimated(estimate)
    }

    /// All mined itemsets of a given size, most frequent first.
    pub fn of_size(&self, size: usize) -> Vec<(&StructureKey, usize)> {
        let mut out: Vec<_> = self
            .frequent
            .iter()
            .filter(|(k, _)| k.len() == size)
            .map(|(k, &n)| (k, n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// Number of mined itemsets.
    pub fn len(&self) -> usize {
        self.frequent.len()
    }

    /// True when nothing cleared the threshold.
    pub fn is_empty(&self) -> bool {
        self.frequent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusEntry;
    use revere_storage::{DbSchema, RelSchema};

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        // 5 schemas with course(title, instructor, time); 2 with
        // course(title, instructor); 1 odd one out.
        for i in 0..5 {
            c.add(CorpusEntry::schema_only(
                DbSchema::new(format!("A{i}"))
                    .with(RelSchema::text("course", &["title", "instructor", "time"])),
            ));
        }
        for i in 0..2 {
            c.add(CorpusEntry::schema_only(
                DbSchema::new(format!("B{i}"))
                    .with(RelSchema::text("course", &["title", "instructor"])),
            ));
        }
        c.add(CorpusEntry::schema_only(
            DbSchema::new("odd").with(RelSchema::text("paper", &["doi", "venue"])),
        ));
        c
    }

    #[test]
    fn mines_frequent_sets_by_level() {
        let fs = FrequentStructures::mine(&corpus(), 3, 4);
        assert_eq!(fs.relation_count, 8);
        // Singletons.
        assert_eq!(fs.support(&["title"]), Support::Exact(7));
        assert_eq!(fs.support(&["time"]), Support::Exact(5));
        // Pair and triple.
        assert_eq!(fs.support(&["title", "instructor"]), Support::Exact(7));
        assert_eq!(fs.support(&["title", "instructor", "time"]), Support::Exact(5));
        // Below threshold: doi appears once.
        assert!(matches!(fs.support(&["doi"]), Support::Estimated(_)));
    }

    #[test]
    fn estimates_unseen_structures() {
        let fs = FrequentStructures::mine(&corpus(), 3, 2);
        // The triple was not mined (max_size 2) → estimated from the pair
        // times time's marginal (5/8).
        let s = fs.support(&["title", "instructor", "time"]);
        match s {
            Support::Estimated(e) => {
                let expected = 7.0 * (5.0 / 8.0);
                assert!((e - expected).abs() < 1e-9, "estimate {e} != {expected}");
            }
            Support::Exact(_) => panic!("triple should not be mined at max_size 2"),
        }
    }

    #[test]
    fn estimate_orders_plausible_above_implausible() {
        let fs = FrequentStructures::mine(&corpus(), 3, 2);
        let plausible = fs.support(&["title", "instructor", "time"]).value();
        let implausible = fs.support(&["title", "doi"]).value();
        assert!(plausible > implausible);
    }

    #[test]
    fn of_size_sorted_by_support() {
        let fs = FrequentStructures::mine(&corpus(), 3, 3);
        let pairs = fs.of_size(2);
        assert!(!pairs.is_empty());
        assert!(pairs.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn empty_corpus_is_harmless() {
        let fs = FrequentStructures::mine(&Corpus::new(), 1, 3);
        assert!(fs.is_empty());
        assert_eq!(fs.support(&["anything"]).value(), 0.0);
    }

    #[test]
    fn stemming_applies_to_queries() {
        let fs = FrequentStructures::mine(&corpus(), 3, 2);
        assert_eq!(fs.support(&["titles"]), fs.support(&["title"]));
    }
}
