//! DesignAdvisor: corpus-assisted schema authoring (§4.3.1).
//!
//! "It is given a fragment of a database, i.e., a pair (S, D), where S is
//! a partial schema and D is a (possibly empty) set of data ... The tool
//! returns a ranked set of schemas S′ ... in decreasing order of their
//! similarity: sim(S′, (S,D)) = α·fit(S′, S, D) + β·preference(S′)",
//! where fit "is currently defined to be the ratio between the total
//! number of mappings between S′ and S and the total number of elements of
//! S′ and S", and preference covers "whether S′ is commonly used ... or is
//! relatively concise and minimal".
//!
//! The advisor also "monitors the coordinator's actions" and produces
//! refactoring advice — the paper's worked example being that "TA
//! information has been modeled in a table separate from the course table"
//! at most other universities, which here falls out of the corpus'
//! `usual_home` statistic.

use crate::matcher::MatchingAdvisor;
use crate::stats::CorpusStats;
use crate::text::{stem, tokenize};
use crate::corpus::Corpus;
use revere_storage::{Catalog, DbSchema};

/// One ranked corpus schema.
#[derive(Debug, Clone)]
pub struct RankedSchema {
    /// Index into the corpus entries.
    pub corpus_index: usize,
    /// Schema name.
    pub name: String,
    /// The combined similarity score.
    pub sim: f64,
    /// The fit component.
    pub fit: f64,
    /// The preference component.
    pub preference: f64,
    /// Number of element correspondences found between fragment and schema.
    pub mapped_elements: usize,
}

/// A piece of design advice.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaAdvice {
    /// Attributes the top-ranked schemas have for this relation that the
    /// fragment lacks (the auto-complete of §4.3).
    MissingAttributes {
        /// The fragment relation.
        relation: String,
        /// Suggested attribute names (from corpus schemas).
        suggestions: Vec<String>,
    },
    /// An attribute usually modeled in a different relation — the paper's
    /// TA example.
    AttributeUsuallyElsewhere {
        /// The fragment relation holding the attribute.
        relation: String,
        /// The attribute.
        attribute: String,
        /// The relation-name term it usually lives under in the corpus.
        usual_relation: String,
        /// How many corpus schemas model it there.
        support: usize,
    },
}

/// The advisor: corpus + statistics + matcher.
#[derive(Debug, Clone)]
pub struct DesignAdvisor {
    /// Weight α on fit.
    pub alpha: f64,
    /// Weight β on preference.
    pub beta: f64,
    matcher: MatchingAdvisor,
    stats: CorpusStats,
    usage: Vec<usize>,
    element_counts: Vec<usize>,
    names: Vec<String>,
}

impl DesignAdvisor {
    /// Build from a corpus and a trained matcher.
    pub fn new(corpus: &Corpus, matcher: MatchingAdvisor) -> DesignAdvisor {
        DesignAdvisor {
            alpha: 0.8,
            beta: 0.2,
            matcher,
            stats: CorpusStats::compute(corpus),
            usage: corpus.entries.iter().map(|e| e.usage_count).collect(),
            element_counts: corpus.entries.iter().map(|e| e.schema.element_count()).collect(),
            names: corpus.entries.iter().map(|e| e.schema.name.clone()).collect(),
        }
    }

    /// Borrow the computed corpus statistics.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Rank corpus schemas for a fragment `(S, D)`.
    pub fn rank(&self, corpus: &Corpus, fragment: &DbSchema, data: &Catalog) -> Vec<RankedSchema> {
        let max_usage = self.usage.iter().copied().max().unwrap_or(1).max(1) as f64;
        let mut out: Vec<RankedSchema> = corpus
            .entries
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let corr = self
                    .matcher
                    .match_schemas(fragment, data, &entry.schema, &entry.data);
                let mapped = corr.len();
                // fit: mappings / total elements of both (the paper's ratio,
                // ×2 so a perfect 1:1 cover of identical schemas scores
                // 1.0), with each mapping weighted by the matcher's
                // confidence so a handful of dubious matches to a tiny
                // schema does not out-rank solid matches to a real one.
                let mapped_confidence: f64 = corr.iter().map(|c| c.confidence).sum();
                let total = fragment.element_count() + self.element_counts[i];
                let fit = if total == 0 { 0.0 } else { 2.0 * mapped_confidence / total as f64 };
                // preference: usage popularity + conciseness.
                let popularity = self.usage[i] as f64 / max_usage;
                let conciseness = 1.0 / (1.0 + self.element_counts[i] as f64 / 20.0);
                let preference = 0.7 * popularity + 0.3 * conciseness;
                RankedSchema {
                    corpus_index: i,
                    name: self.names[i].clone(),
                    sim: self.alpha * fit + self.beta * preference,
                    fit,
                    preference,
                    mapped_elements: mapped,
                }
            })
            .collect();
        out.sort_by(|a, b| b.sim.total_cmp(&a.sim).then_with(|| a.corpus_index.cmp(&b.corpus_index)));
        out
    }

    /// Auto-complete + refactoring advice for a fragment, using the top
    /// `k` ranked schemas.
    pub fn advise(
        &self,
        corpus: &Corpus,
        fragment: &DbSchema,
        data: &Catalog,
        k: usize,
    ) -> Vec<SchemaAdvice> {
        let ranking = self.rank(corpus, fragment, data);
        let mut advice = Vec::new();

        // Missing attributes: for each fragment relation, see what the
        // top-k schemas' matched relations have that the fragment lacks.
        for frag_rel in &fragment.relations {
            let mut suggestions: Vec<String> = Vec::new();
            for ranked in ranking.iter().take(k) {
                let entry = &corpus.entries[ranked.corpus_index];
                let corr =
                    self.matcher
                        .match_schemas(fragment, data, &entry.schema, &entry.data);
                // Which corpus relation does this fragment relation map to?
                let mut target_rel: Option<&str> = None;
                for c in &corr {
                    if c.left.0 == frag_rel.name {
                        target_rel = Some(
                            entry
                                .schema
                                .relations
                                .iter()
                                .find(|r| r.name == c.right.0)
                                .map(|r| r.name.as_str())
                                .unwrap_or(""),
                        );
                        break;
                    }
                }
                let Some(target_rel) = target_rel else { continue };
                let Some(target) = entry.schema.relation(target_rel) else { continue };
                let mapped_right: Vec<&str> = corr
                    .iter()
                    .filter(|c| c.left.0 == frag_rel.name)
                    .map(|c| c.right.1.as_str())
                    .collect();
                for attr in target.attr_names() {
                    if !mapped_right.contains(&attr)
                        && !suggestions.iter().any(|s| s == attr)
                        && frag_rel.position(attr).is_none()
                    {
                        suggestions.push(attr.to_string());
                    }
                }
            }
            if !suggestions.is_empty() {
                advice.push(SchemaAdvice::MissingAttributes {
                    relation: frag_rel.name.clone(),
                    suggestions,
                });
            }
        }

        // "Usually modeled elsewhere": compare each attribute's home
        // relation against corpus statistics.
        for frag_rel in &fragment.relations {
            let rel_term = tokenize(&frag_rel.name)
                .first()
                .map(|t| stem(t))
                .unwrap_or_default();
            for attr in frag_rel.attr_names() {
                for tok in tokenize(attr) {
                    if let Some((usual, support)) = self.stats.usual_home(&tok) {
                        if usual != rel_term && support >= 2 {
                            advice.push(SchemaAdvice::AttributeUsuallyElsewhere {
                                relation: frag_rel.name.clone(),
                                attribute: attr.to_string(),
                                usual_relation: usual,
                                support,
                            });
                            break;
                        }
                    }
                }
            }
        }
        advice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifiers::MultiStrategyClassifier;
    use crate::corpus::CorpusEntry;
    use revere_storage::{RelSchema, Relation, Value};

    /// Corpus: several course schemas; most keep TA info in its own table.
    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        for i in 0..4 {
            let schema = DbSchema::new(format!("U{i}"))
                .with(RelSchema::text("course", &["title", "instructor", "time", "room"]))
                .with(RelSchema::text("ta", &["ta_name", "contact_phone"]));
            let mut e = CorpusEntry::schema_only(schema);
            e.usage_count = 4 - i; // U0 most popular
            let mut r = Relation::new(RelSchema::text(
                "course",
                &["title", "instructor", "time", "room"],
            ));
            for k in 0..5 {
                r.insert(vec![
                    Value::str(format!("Topics {k}")),
                    Value::str("Prof Grace Hopper"),
                    Value::str("MWF 10:30-11:20"),
                    Value::str("Sieg 134"),
                ]);
            }
            e.data.register(r);
            for (attr, canon) in [
                ("title", "title"),
                ("instructor", "instructor"),
                ("time", "time"),
                ("room", "room"),
            ] {
                e.labels.insert(
                    ("course".into(), attr.into()),
                    ("course".into(), canon.into()),
                );
            }
            for (attr, canon) in [("ta_name", "name"), ("contact_phone", "phone")] {
                e.labels.insert(("ta".into(), attr.into()), ("ta".into(), canon.into()));
            }
            c.add(e);
        }
        // One unrelated schema (publications) to rank below.
        c.add(CorpusEntry::schema_only(
            DbSchema::new("Pubs").with(RelSchema::text("paper", &["doi", "venue", "pages"])),
        ));
        c
    }

    fn advisor(c: &Corpus) -> DesignAdvisor {
        DesignAdvisor::new(c, MatchingAdvisor::new(MultiStrategyClassifier::train(c)))
    }

    fn fragment() -> (DbSchema, Catalog) {
        let schema = DbSchema::new("UW").with(RelSchema::text("class", &["name", "teacher"]));
        let mut cat = Catalog::new();
        let mut r = Relation::new(RelSchema::text("class", &["name", "teacher"]));
        for k in 0..5 {
            r.insert(vec![
                Value::str(format!("Intro {k}")),
                Value::str("Prof Ada Lovelace"),
            ]);
        }
        cat.register(r);
        (schema, cat)
    }

    #[test]
    fn ranks_domain_schemas_above_unrelated() {
        let c = corpus();
        let a = advisor(&c);
        let (frag, data) = fragment();
        let ranking = a.rank(&c, &frag, &data);
        assert_eq!(ranking.len(), 5);
        assert!(ranking[0].name.starts_with('U'), "{ranking:?}");
        let pubs_rank = ranking.iter().position(|r| r.name == "Pubs").unwrap();
        assert!(pubs_rank >= 3, "unrelated schema ranked {pubs_rank}");
        assert!(ranking[0].sim >= ranking[1].sim);
    }

    #[test]
    fn popularity_breaks_fit_ties() {
        let c = corpus();
        let a = advisor(&c);
        let (frag, data) = fragment();
        let ranking = a.rank(&c, &frag, &data);
        // U0..U3 have identical schemas; popularity (usage_count) must
        // order U0 first among them.
        let course_ranks: Vec<&RankedSchema> =
            ranking.iter().filter(|r| r.name.starts_with('U')).collect();
        assert_eq!(course_ranks[0].name, "U0");
    }

    #[test]
    fn suggests_missing_attributes() {
        let c = corpus();
        let a = advisor(&c);
        let (frag, data) = fragment();
        let advice = a.advise(&c, &frag, &data, 2);
        let missing = advice.iter().find_map(|adv| match adv {
            SchemaAdvice::MissingAttributes { relation, suggestions } if relation == "class" => {
                Some(suggestions.clone())
            }
            _ => None,
        });
        let missing = missing.expect("missing-attribute advice for class");
        assert!(
            missing.iter().any(|s| s == "time") && missing.iter().any(|s| s == "room"),
            "{missing:?}"
        );
    }

    #[test]
    fn flags_attribute_usually_elsewhere() {
        // Fragment models the TA phone inside the course table.
        let c = corpus();
        let a = advisor(&c);
        let schema = DbSchema::new("UW").with(RelSchema::text(
            "course",
            &["title", "contact_phone"],
        ));
        let advice = a.advise(&c, &schema, &Catalog::new(), 2);
        assert!(
            advice.iter().any(|adv| matches!(
                adv,
                SchemaAdvice::AttributeUsuallyElsewhere { attribute, usual_relation, .. }
                    if attribute == "contact_phone" && usual_relation == "ta"
            )),
            "{advice:?}"
        );
    }

    #[test]
    fn alpha_beta_weights_shift_ranking() {
        let c = corpus();
        let mut a = advisor(&c);
        let (frag, data) = fragment();
        a.alpha = 0.0;
        a.beta = 1.0;
        let pref_only = a.rank(&c, &frag, &data);
        // With fit ignored, the most popular schema wins outright.
        assert_eq!(pref_only[0].name, "U0");
        assert!(pref_only[0].fit <= 1.0);
    }
}
