//! Statistics over structures: the corpus component of REVERE (§4).
//!
//! "We propose to build for the S-WORLD the analog of one of the most
//! powerful techniques of the U-WORLD, namely the statistical analysis of
//! corpora ... Based on these statistics, we will build a set of general
//! purpose tools to assist structuring and mapping applications."
//!
//! * [`text`] — the U-WORLD toolbox adapted to schema terms: tokenization
//!   of identifiers, a light stemmer, synonym tables, string similarity,
//!   TF-IDF vectors (§4.2.1's "word stemming, synonym tables,
//!   inter-language dictionaries" axes).
//! * [`corpus`] — the corpus itself: schemas, data samples, ground-truth
//!   concept labels and known mappings (§4.1's inventory).
//! * [`stats`] — basic statistics (term usage by role, co-occurring schema
//!   elements, similar names) and composite statistics (frequent partial
//!   structures) per §4.2.
//! * [`classifiers`] — the LSD-style multi-strategy learners \[13\]: name,
//!   value and structure learners plus a trained meta-combiner.
//! * [`matcher`] — `MatchingAdvisor` (§4.3.2): classify the elements of
//!   two unseen schemas against the corpus and "find correlations in the
//!   predictions", producing correspondences with confidences.
//! * [`advisor`] — `DesignAdvisor` (§4.3.1): ranked schema retrieval for a
//!   fragment under `sim = α·fit + β·preference`, plus refactoring advice
//!   (the "TA information ... in a table separate from the course table"
//!   example).
//! * [`qreform`] — §4.4's unfamiliar-schema querying: keywords in the
//!   user's vocabulary → ranked well-formed queries over the actual schema.

pub mod advisor;
pub mod classifiers;
pub mod composite;
pub mod corpus;
pub mod instance;
pub mod matcher;
pub mod qreform;
pub mod stats;
pub mod text;

pub use advisor::{DesignAdvisor, RankedSchema, SchemaAdvice};
pub use classifiers::{Learner, MultiStrategyClassifier, Prediction};
pub use composite::{FrequentStructures, Support};
pub use corpus::{Corpus, CorpusEntry};
pub use instance::{match_by_instances, ColumnProfile};
pub use matcher::{Correspondence, MatchQuality, MatchingAdvisor};
pub use qreform::QueryReformulator;
pub use stats::{CorpusStats, TermRole};
