//! The LSD-style multi-strategy learners (§4.3.2, \[13\]).
//!
//! "The system uses a multi-strategy learning method that can employ
//! multiple learners, thereby having the ability to learn from different
//! kinds of information in the input (e.g., values of the data instances,
//! names of attributes, proximity of attributes, structure of the schema,
//! etc)." Three base learners are implemented — name, value (a naive
//! Bayes over surface features of data values) and structure (sibling
//! context) — plus a meta-learner whose per-learner weights are fitted on
//! the training data, mirroring LSD's stacking.
//!
//! "The classifiers computed by LSD actually encode a statistic for a
//! composite structure that includes the set of values in a column and the
//! column name": [`MultiStrategyClassifier::predict`] is exactly that
//! statistic, normalized into a distribution over corpus concepts.

use crate::corpus::{ConceptLabel, Corpus};
use crate::text::{jaccard, name_similarity, stem, tokenize, SparseVec, SynonymTable};
use revere_storage::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Everything the learners may inspect about one schema element.
#[derive(Debug, Clone)]
pub struct ElementInfo {
    /// Attribute name.
    pub name: String,
    /// Name of the relation it belongs to.
    pub relation: String,
    /// Sibling attribute names.
    pub siblings: Vec<String>,
    /// Sampled data values (may be empty).
    pub values: Vec<Value>,
}

/// A normalized distribution over concept labels, best first.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// `(label, probability)` sorted descending.
    pub scores: Vec<(ConceptLabel, f64)>,
}

impl Prediction {
    /// The most likely label with its probability.
    pub fn top(&self) -> Option<(&ConceptLabel, f64)> {
        self.scores.first().map(|(l, s)| (l, *s))
    }

    /// The distribution as a sparse vector (for prediction correlation).
    pub fn as_vector(&self) -> SparseVec {
        SparseVec::from_counts(
            self.scores
                .iter()
                .map(|((c, a), s)| (format!("{c}.{a}"), *s)),
        )
    }

    fn normalized(mut scores: Vec<(ConceptLabel, f64)>) -> Prediction {
        let sum: f64 = scores.iter().map(|(_, s)| s.max(0.0)).sum();
        if sum > 0.0 {
            for (_, s) in &mut scores {
                *s = s.max(0.0) / sum;
            }
        }
        scores.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Prediction { scores }
    }
}

/// Which base learner(s) to consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Learner {
    /// Attribute/relation name similarity.
    Name,
    /// Naive Bayes over data-value surface features.
    Value,
    /// Sibling-context similarity.
    Structure,
    /// Weighted combination of all three.
    Meta,
}

// ---------------------------------------------------------------------
// Name learner
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct NameLearner {
    /// label → surface names seen in training (attribute and relation).
    surface: BTreeMap<ConceptLabel, Vec<(String, String)>>,
}

impl NameLearner {
    fn train(&mut self, label: &ConceptLabel, relation: &str, attr: &str) {
        self.surface
            .entry(label.clone())
            .or_default()
            .push((relation.to_string(), attr.to_string()));
    }

    fn score(&self, el: &ElementInfo, label: &ConceptLabel, syn: &SynonymTable) -> f64 {
        let Some(names) = self.surface.get(label) else {
            return 0.0;
        };
        names
            .iter()
            .map(|(rel, attr)| {
                0.75 * name_similarity(&el.name, attr, syn)
                    + 0.25 * name_similarity(&el.relation, rel, syn)
            })
            .fold(0.0, f64::max)
    }
}

// ---------------------------------------------------------------------
// Value learner (naive Bayes over surface features)
// ---------------------------------------------------------------------

/// Surface features of one data value.
fn value_features(v: &Value) -> Vec<&'static str> {
    let s = v.to_string();
    let mut f = Vec::new();
    if matches!(v, Value::Int(_) | Value::Float(_)) {
        f.push("numeric_type");
    }
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
    let alphas = s.chars().filter(|c| c.is_alphabetic()).count();
    if digits > 0 {
        f.push("has_digit");
    }
    if alphas > 0 {
        f.push("has_alpha");
    }
    if digits > alphas {
        f.push("mostly_digits");
    }
    if s.contains('@') {
        f.push("has_at");
    }
    if s.contains('-') {
        f.push("has_dash");
    }
    if s.contains(':') {
        f.push("has_colon");
    }
    if s.contains("http") {
        f.push("has_http");
    }
    f.push(match s.len() {
        0..=4 => "len_tiny",
        5..=9 => "len_short",
        10..=19 => "len_medium",
        _ => "len_long",
    });
    f.push(match s.split_whitespace().count() {
        0 | 1 => "tok_1",
        2 => "tok_2",
        3 => "tok_3",
        _ => "tok_many",
    });
    if s.chars().next().is_some_and(|c| c.is_uppercase()) {
        f.push("starts_upper");
    }
    f
}

#[derive(Debug, Clone, Default)]
struct ValueLearner {
    /// label → (feature → count).
    feature_counts: BTreeMap<ConceptLabel, BTreeMap<&'static str, usize>>,
    /// label → number of training values.
    totals: BTreeMap<ConceptLabel, usize>,
}

impl ValueLearner {
    fn train(&mut self, label: &ConceptLabel, values: &[Value]) {
        for v in values {
            *self.totals.entry(label.clone()).or_default() += 1;
            let counts = self.feature_counts.entry(label.clone()).or_default();
            for f in value_features(v) {
                *counts.entry(f).or_default() += 1;
            }
        }
    }

    /// Log-likelihood of the element's values under the label's feature
    /// model, turned into a bounded score via per-label comparison (the
    /// caller normalizes across labels).
    fn score(&self, el: &ElementInfo, label: &ConceptLabel) -> f64 {
        if el.values.is_empty() {
            return 0.0;
        }
        let Some(total) = self.totals.get(label).copied() else {
            return 0.0;
        };
        let counts = &self.feature_counts[label];
        let mut log_sum = 0.0;
        let n = el.values.len().min(10);
        for v in el.values.iter().take(10) {
            for f in value_features(v) {
                let c = counts.get(f).copied().unwrap_or(0);
                // Laplace smoothing; denominator = training values + 2.
                let p = (c as f64 + 1.0) / (total as f64 + 2.0);
                log_sum += p.ln();
            }
        }
        // Geometric-mean likelihood per value, in (0, 1].
        (log_sum / n as f64).exp()
    }
}

// ---------------------------------------------------------------------
// Structure learner (sibling context)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct StructureLearner {
    /// label → typical stemmed sibling tokens.
    contexts: BTreeMap<ConceptLabel, BTreeSet<String>>,
}

fn stemmed_tokens(names: &[String]) -> BTreeSet<String> {
    names
        .iter()
        .flat_map(|n| tokenize(n))
        .map(|t| stem(&t))
        .collect()
}

impl StructureLearner {
    fn train(&mut self, label: &ConceptLabel, siblings: &[String]) {
        self.contexts
            .entry(label.clone())
            .or_default()
            .extend(stemmed_tokens(siblings));
    }

    fn score(&self, el: &ElementInfo, label: &ConceptLabel) -> f64 {
        let Some(ctx) = self.contexts.get(label) else {
            return 0.0;
        };
        let mine = stemmed_tokens(&el.siblings);
        jaccard(&mine, ctx)
    }
}

// ---------------------------------------------------------------------
// Multi-strategy classifier
// ---------------------------------------------------------------------

/// The trained classifier set: three base learners plus fitted weights.
#[derive(Debug, Clone)]
pub struct MultiStrategyClassifier {
    labels: Vec<ConceptLabel>,
    name: NameLearner,
    value: ValueLearner,
    structure: StructureLearner,
    /// Meta weights for (name, value, structure), fitted on training data.
    pub weights: [f64; 3],
    synonyms: SynonymTable,
}

impl MultiStrategyClassifier {
    /// Train on every labeled element of the corpus, then fit the meta
    /// weights by **leave-one-schema-out** accuracy of each base learner
    /// (LSD-style stacking). Plain training accuracy would let the name
    /// learner — which memorizes every training surface name — dominate
    /// while generalizing worst; held-out fitting measures what each
    /// learner contributes on schemas it has not seen.
    pub fn train(corpus: &Corpus) -> MultiStrategyClassifier {
        let mut clf = Self::build(corpus, None);
        let mut correct = [0usize; 3];
        let mut total = 0usize;
        for skip in 0..corpus.entries.len() {
            if corpus.entries[skip].labels.is_empty() {
                continue;
            }
            let held_out = Self::build(corpus, Some(skip));
            for ((rel, attr), label) in &corpus.entries[skip].labels {
                let entry = &corpus.entries[skip];
                let info = ElementInfo {
                    name: attr.clone(),
                    relation: rel.clone(),
                    siblings: entry.siblings(rel, attr).iter().map(|s| s.to_string()).collect(),
                    values: entry.sample_values(rel, attr, 10),
                };
                total += 1;
                for (k, learner) in [Learner::Name, Learner::Value, Learner::Structure]
                    .iter()
                    .enumerate()
                {
                    if let Some((top, _)) = held_out.predict_with(&info, &[*learner]).top() {
                        if top == label {
                            correct[k] += 1;
                        }
                    }
                }
            }
        }
        if total > 0 {
            // Sharpen: held-out accuracies cluster (0.7-0.95), so a high
            // power is needed for the reliably-better learner to actually
            // steer the product-of-experts combination.
            for (w, c) in clf.weights.iter_mut().zip(correct) {
                let acc = c as f64 / total as f64;
                *w = acc.powi(6).max(0.01);
            }
        }
        clf
    }

    /// Build the base learners from every labeled element, optionally
    /// skipping one corpus entry (for leave-one-out weight fitting).
    fn build(corpus: &Corpus, skip: Option<usize>) -> MultiStrategyClassifier {
        let mut clf = MultiStrategyClassifier {
            labels: corpus.label_space(),
            name: NameLearner::default(),
            value: ValueLearner::default(),
            structure: StructureLearner::default(),
            weights: [1.0, 1.0, 1.0],
            synonyms: SynonymTable::default_domain(),
        };
        for (i, (rel, attr), label) in corpus.labeled_elements() {
            if skip == Some(i) {
                continue;
            }
            let entry = &corpus.entries[i];
            clf.name.train(label, rel, attr);
            clf.value.train(label, &entry.sample_values(rel, attr, 10));
            clf.structure.train(
                label,
                &entry
                    .siblings(rel, attr)
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>(),
            );
        }
        clf
    }

    /// The label space.
    pub fn labels(&self) -> &[ConceptLabel] {
        &self.labels
    }

    /// Replace the synonym table consulted by the name learner.
    pub fn set_synonyms(&mut self, synonyms: SynonymTable) {
        self.synonyms = synonyms;
    }

    /// Predict with the full meta-combination.
    pub fn predict(&self, el: &ElementInfo) -> Prediction {
        self.predict_with(el, &[Learner::Meta])
    }

    /// Predict with a chosen subset of learners (the E6 ablation knob).
    pub fn predict_with(&self, el: &ElementInfo, learners: &[Learner]) -> Prediction {
        let use_meta = learners.contains(&Learner::Meta);
        let active = |l: Learner| use_meta || learners.contains(&l);
        // Per-learner scores are normalized independently before
        // combination so no learner dominates on raw scale.
        let mut per_learner: Vec<(f64, Vec<f64>)> = Vec::new();
        if active(Learner::Name) {
            let raw: Vec<f64> = self
                .labels
                .iter()
                .map(|l| self.name.score(el, l, &self.synonyms))
                .collect();
            per_learner.push((if use_meta { self.weights[0] } else { 1.0 }, normalize(raw)));
        }
        if active(Learner::Value) {
            let raw: Vec<f64> = self.labels.iter().map(|l| self.value.score(el, l)).collect();
            per_learner.push((if use_meta { self.weights[1] } else { 1.0 }, normalize(raw)));
        }
        if active(Learner::Structure) {
            let raw: Vec<f64> = self
                .labels
                .iter()
                .map(|l| self.structure.score(el, l))
                .collect();
            per_learner.push((if use_meta { self.weights[2] } else { 1.0 }, normalize(raw)));
        }
        // Log-linear (product-of-experts) combination: a label must be
        // plausible under EVERY consulted learner, weighted by the
        // learner's held-out reliability. This stops one confidently
        // wrong learner (typically the name learner on a renamed
        // element) from outvoting two diffusely right ones, which a
        // linear mixture cannot. Weights are taken relative to the MOST
        // reliable learner (not normalized to sum 1): sum-normalization
        // caps the pooled exponents at 1, which flattens the combined
        // distribution below every input — downstream consumers that
        // weight correlation by peak confidence (the matcher) would then
        // see the meta-prediction as maximally uncertain and ignore it.
        // The smoothing floor scales with the label space so it stays a
        // fraction of the uniform mass instead of swamping it.
        let eps = 0.5 / self.labels.len().max(1) as f64;
        let mut combined = vec![0.0f64; self.labels.len()];
        if per_learner.len() > 1 {
            let wmax: f64 = per_learner.iter().map(|(w, _)| *w).fold(f64::MIN, f64::max);
            for (i, c) in combined.iter_mut().enumerate() {
                let mut log_score = 0.0;
                for (w, scores) in &per_learner {
                    log_score += (w / wmax) * (scores[i] + eps).ln();
                }
                *c = log_score.exp();
            }
        } else {
            for (w, scores) in &per_learner {
                for (i, s) in scores.iter().enumerate() {
                    combined[i] += w * s;
                }
            }
        }
        Prediction::normalized(
            self.labels
                .iter()
                .cloned()
                .zip(combined)
                .collect::<Vec<_>>(),
        )
    }
}

fn normalize(raw: Vec<f64>) -> Vec<f64> {
    let sum: f64 = raw.iter().map(|s| s.max(0.0)).sum();
    if sum <= 0.0 {
        return raw;
    }
    raw.into_iter().map(|s| s.max(0.0) / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusEntry;
    use revere_storage::{DbSchema, RelSchema, Relation};

    /// A small labeled corpus: courses (title + enrollment) and people
    /// (name + phone) under varying surface vocabulary.
    fn labeled_corpus() -> Corpus {
        let mut c = Corpus::new();
        let variants = [
            ("course", "title", "enrollment", "instructor"),
            ("class", "name", "size", "teacher"),
            ("subject", "heading", "seats", "professor"),
        ];
        for (i, (rel, title, enr, inst)) in variants.iter().enumerate() {
            let schema =
                DbSchema::new(format!("U{i}")).with(RelSchema::text(*rel, &[title, enr, inst]));
            let mut e = CorpusEntry::schema_only(schema);
            let mut r = Relation::new(RelSchema::text(*rel, &[title, enr, inst]));
            for k in 0..6 {
                r.insert(vec![
                    Value::str(format!("Introduction to Topic {k}")),
                    Value::Int(20 + k),
                    Value::str(format!("Prof Ada Lovelace{k}")),
                ]);
            }
            e.data.register(r);
            for (attr, canon) in [(title, "title"), (enr, "enrollment"), (inst, "instructor")] {
                e.labels.insert(
                    (rel.to_string(), attr.to_string()),
                    ("course".to_string(), canon.to_string()),
                );
            }
            c.add(e);
        }
        c
    }

    fn element(name: &str, relation: &str, siblings: &[&str], values: Vec<Value>) -> ElementInfo {
        ElementInfo {
            name: name.into(),
            relation: relation.into(),
            siblings: siblings.iter().map(|s| s.to_string()).collect(),
            values,
        }
    }

    #[test]
    fn name_learner_recognizes_synonyms() {
        let clf = MultiStrategyClassifier::train(&labeled_corpus());
        let el = element("lecturer", "offering", &["titolo"], vec![]);
        let p = clf.predict_with(&el, &[Learner::Name]);
        assert_eq!(p.top().unwrap().0 .1, "instructor");
    }

    #[test]
    fn value_learner_separates_numbers_from_names() {
        let clf = MultiStrategyClassifier::train(&labeled_corpus());
        let numeric = element(
            "zzz",
            "unknown",
            &[],
            (0..5).map(|i| Value::Int(30 + i)).collect(),
        );
        let p = clf.predict_with(&numeric, &[Learner::Value]);
        assert_eq!(p.top().unwrap().0 .1, "enrollment", "{:?}", p.scores);
    }

    #[test]
    fn structure_learner_uses_siblings() {
        let clf = MultiStrategyClassifier::train(&labeled_corpus());
        // Unhelpful name, but siblings match the course context.
        let el = element("x1", "tbl", &["title", "enrollment"], vec![]);
        let p = clf.predict_with(&el, &[Learner::Structure]);
        let ((concept, _), _) = p.top().unwrap();
        assert_eq!(concept, "course");
    }

    #[test]
    fn meta_combines_and_weights_are_fitted() {
        let clf = MultiStrategyClassifier::train(&labeled_corpus());
        assert!(clf.weights.iter().all(|w| *w > 0.0));
        let el = element(
            "course_title",
            "offering",
            &["capacity", "professor"],
            vec![
                Value::str("Introduction to Topic 77"),
                Value::str("Introduction to Topic 78"),
            ],
        );
        let p = clf.predict(&el);
        assert_eq!(p.top().unwrap().0 .1, "title", "{:?}", p.scores);
    }

    #[test]
    fn predictions_are_distributions() {
        let clf = MultiStrategyClassifier::train(&labeled_corpus());
        let el = element("title", "course", &["enrollment"], vec![]);
        let p = clf.predict(&el);
        let sum: f64 = p.scores.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(p.scores.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn empty_corpus_trains_empty_label_space() {
        let clf = MultiStrategyClassifier::train(&Corpus::new());
        assert!(clf.labels().is_empty());
        let p = clf.predict(&element("x", "y", &[], vec![]));
        assert!(p.top().is_none());
    }

    #[test]
    fn prediction_vector_for_correlation() {
        let clf = MultiStrategyClassifier::train(&labeled_corpus());
        let a = clf.predict(&element("title", "course", &["enrollment"], vec![]));
        let b = clf.predict(&element("heading", "subject", &["seats"], vec![]));
        // Same concept: distributions correlate strongly.
        assert!(a.as_vector().cosine(&b.as_vector()) > 0.5);
    }
}
