//! The corpus of structures (§4.1).
//!
//! "Each corpus will include: forms of schema information ... actual data:
//! example tables ... known mappings between schemas in the corpus ...
//! relevant metadata." A [`CorpusEntry`] is one contributed database:
//! schema, sampled data, and (when the contributor supplied them — e.g.
//! via previously confirmed mappings) concept labels on its elements,
//! which are the learners' training signal.

use revere_storage::{Catalog, DbSchema, Value};
use std::collections::BTreeMap;

/// An element of some schema: `(relation, attribute)`.
pub type Element = (String, String);

/// A concept label: `(concept, canonical attribute)`, e.g.
/// `("course", "title")`.
pub type ConceptLabel = (String, String);

/// One schema (with optional data and labels) in the corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The schema.
    pub schema: DbSchema,
    /// Sampled data for the schema's relations (may be empty).
    pub data: Catalog,
    /// Ground-truth concept labels for elements, when known.
    pub labels: BTreeMap<Element, ConceptLabel>,
    /// How often this schema is known to be used/adopted (the `preference`
    /// signal of §4.3.1: "whether S′ is commonly used").
    pub usage_count: usize,
}

impl CorpusEntry {
    /// Entry with schema only.
    pub fn schema_only(schema: DbSchema) -> Self {
        CorpusEntry { schema, data: Catalog::new(), labels: BTreeMap::new(), usage_count: 1 }
    }

    /// Up to `n` sample values for an element.
    pub fn sample_values(&self, rel: &str, attr: &str, n: usize) -> Vec<Value> {
        self.data
            .get(rel)
            .map(|r| r.sample_values(attr, n))
            .unwrap_or_default()
    }

    /// Sibling attribute names of an element (its structural context).
    pub fn siblings(&self, rel: &str, attr: &str) -> Vec<&str> {
        self.schema
            .relation(rel)
            .map(|r| r.attr_names().filter(|a| *a != attr).collect())
            .unwrap_or_default()
    }
}

/// A known mapping between two corpus entries: confirmed element
/// correspondences ("known mappings between schemas in the corpus").
#[derive(Debug, Clone)]
pub struct KnownMapping {
    /// Index of the first entry.
    pub left: usize,
    /// Index of the second entry.
    pub right: usize,
    /// Confirmed element pairs.
    pub pairs: Vec<(Element, Element)>,
}

/// The corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// The entries.
    pub entries: Vec<CorpusEntry>,
    /// Confirmed mappings between entries.
    pub known_mappings: Vec<KnownMapping>,
}

impl Corpus {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entry, returning its index.
    pub fn add(&mut self, entry: CorpusEntry) -> usize {
        self.entries.push(entry);
        self.entries.len() - 1
    }

    /// Record a confirmed mapping between two entries.
    pub fn add_known_mapping(&mut self, mapping: KnownMapping) {
        assert!(mapping.left < self.entries.len() && mapping.right < self.entries.len());
        self.known_mappings.push(mapping);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the corpus holds no schemas.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All labeled elements across entries:
    /// `(entry index, element, label)`.
    pub fn labeled_elements(&self) -> impl Iterator<Item = (usize, &Element, &ConceptLabel)> {
        self.entries
            .iter()
            .enumerate()
            .flat_map(|(i, e)| e.labels.iter().map(move |(el, lb)| (i, el, lb)))
    }

    /// Distinct concept labels present in the corpus, sorted.
    pub fn label_space(&self) -> Vec<ConceptLabel> {
        let mut labels: Vec<ConceptLabel> = self
            .labeled_elements()
            .map(|(_, _, l)| l.clone())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Propagate labels along known mappings: if one side of a confirmed
    /// pair is labeled and the other is not, copy the label. Returns how
    /// many labels were added — this is how "the corpus and its associated
    /// statistics act as a domain expert" that grows with use.
    pub fn propagate_labels(&mut self) -> usize {
        let mut added = 0;
        for m in self.known_mappings.clone() {
            for (a, b) in &m.pairs {
                let la = self.entries[m.left].labels.get(a).cloned();
                let lb = self.entries[m.right].labels.get(b).cloned();
                match (la, lb) {
                    (Some(l), None) => {
                        self.entries[m.right].labels.insert(b.clone(), l);
                        added += 1;
                    }
                    (None, Some(l)) => {
                        self.entries[m.left].labels.insert(a.clone(), l);
                        added += 1;
                    }
                    _ => {}
                }
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_storage::{RelSchema, Relation};

    fn entry(name: &str, rel: &str, attrs: &[&str]) -> CorpusEntry {
        let schema = DbSchema::new(name).with(RelSchema::text(rel, attrs));
        let mut e = CorpusEntry::schema_only(schema);
        let mut r = Relation::new(RelSchema::text(rel, attrs));
        r.insert(attrs.iter().map(|a| Value::str(format!("{a}_v1"))).collect());
        r.insert(attrs.iter().map(|a| Value::str(format!("{a}_v2"))).collect());
        e.data.register(r);
        e
    }

    #[test]
    fn add_and_sample() {
        let mut c = Corpus::new();
        let i = c.add(entry("U1", "course", &["title", "size"]));
        assert_eq!(i, 0);
        let vals = c.entries[0].sample_values("course", "title", 10);
        assert_eq!(vals.len(), 2);
        assert!(c.entries[0].sample_values("nope", "title", 10).is_empty());
    }

    #[test]
    fn siblings_exclude_self() {
        let e = entry("U1", "course", &["title", "size", "teacher"]);
        assert_eq!(e.siblings("course", "size"), vec!["title", "teacher"]);
    }

    #[test]
    fn label_space_dedups() {
        let mut c = Corpus::new();
        let mut e1 = entry("U1", "course", &["title"]);
        e1.labels.insert(
            ("course".into(), "title".into()),
            ("course".into(), "title".into()),
        );
        let mut e2 = entry("U2", "class", &["name"]);
        e2.labels.insert(
            ("class".into(), "name".into()),
            ("course".into(), "title".into()),
        );
        c.add(e1);
        c.add(e2);
        assert_eq!(c.label_space().len(), 1);
        assert_eq!(c.labeled_elements().count(), 2);
    }

    #[test]
    fn propagate_labels_through_known_mappings() {
        let mut c = Corpus::new();
        let mut e1 = entry("U1", "course", &["title"]);
        e1.labels.insert(
            ("course".into(), "title".into()),
            ("course".into(), "title".into()),
        );
        let e2 = entry("U2", "class", &["name"]);
        c.add(e1);
        c.add(e2);
        c.add_known_mapping(KnownMapping {
            left: 0,
            right: 1,
            pairs: vec![(
                ("course".into(), "title".into()),
                ("class".into(), "name".into()),
            )],
        });
        assert_eq!(c.propagate_labels(), 1);
        assert_eq!(
            c.entries[1].labels.get(&("class".into(), "name".into())),
            Some(&("course".into(), "title".into()))
        );
        // Idempotent.
        assert_eq!(c.propagate_labels(), 0);
    }
}
