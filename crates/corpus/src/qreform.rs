//! Querying unfamiliar data (§4.4).
//!
//! "A user should be able to access a database ... the schema of which she
//! does not know, and pose a query using her own terminology ... One can
//! imagine a tool that uses the corpus to propose reformulations of the
//! user's query that are well formed w.r.t. the schema at hand. The tool
//! may propose a few such queries ... and let the user choose among them."
//!
//! [`QueryReformulator`] maps each user keyword to candidate schema
//! elements (via corpus classifiers + name similarity), then assembles
//! well-formed conjunctive queries: one atom per relation touched, joined
//! on attributes the corpus statistics say co-refer (same concept), with
//! the matched attributes as the query head.

use crate::classifiers::{ElementInfo, MultiStrategyClassifier};
use crate::text::{name_similarity, SynonymTable};
use revere_query::{parse_query, ConjunctiveQuery};
use revere_storage::{Catalog, DbSchema};
use std::collections::BTreeMap;

/// A proposed query with its score and a human-readable rendering.
#[derive(Debug, Clone)]
pub struct ProposedQuery {
    /// The well-formed query over the actual schema.
    pub query: ConjunctiveQuery,
    /// Combined keyword-match score.
    pub score: f64,
    /// Which element each keyword was mapped to.
    pub bindings: Vec<(String, (String, String))>,
}

/// The keyword→query tool.
#[derive(Debug, Clone)]
pub struct QueryReformulator {
    classifier: MultiStrategyClassifier,
    synonyms: SynonymTable,
    /// Candidate elements considered per keyword.
    pub fanout: usize,
    /// Proposals returned.
    pub max_proposals: usize,
}

impl QueryReformulator {
    /// Build from trained corpus classifiers.
    pub fn new(classifier: MultiStrategyClassifier) -> Self {
        QueryReformulator {
            classifier,
            synonyms: SynonymTable::default_domain(),
            fanout: 3,
            max_proposals: 5,
        }
    }

    /// Score how well `keyword` denotes schema element `(rel, attr)`.
    fn keyword_score(&self, keyword: &str, schema: &DbSchema, data: &Catalog, rel: &str, attr: &str) -> f64 {
        let direct = 0.8 * name_similarity(keyword, attr, &self.synonyms)
            + 0.2 * name_similarity(keyword, rel, &self.synonyms);
        // Corpus-aware component: classify the element with the full
        // multi-strategy classifier (name, values, siblings), then measure
        // how much of its predicted concept mass lands on labels whose
        // *canonical* names match the keyword. The keyword→concept step is
        // deliberately synonym-free: canonical labels are the corpus's own
        // vocabulary, and the broad domain synsets (which merge e.g.
        // title/name/nome) would erase exactly the distinction the user's
        // keyword carries. Cross-vocabulary generalization is the
        // classifier's job instead — an Italian `insegnamento.nome`
        // element predicted as (course, title) from its values and
        // siblings scores high for the keyword "title" even though its
        // surface name reads as "name".
        let el_info = ElementInfo {
            name: attr.to_string(),
            relation: rel.to_string(),
            siblings: schema
                .relation(rel)
                .map(|r| r.attr_names().filter(|a| *a != attr).map(str::to_string).collect())
                .unwrap_or_default(),
            values: data.get(rel).map(|r| r.sample_values(attr, 10)).unwrap_or_default(),
        };
        let prediction = self.classifier.predict(&el_info);
        let strict = SynonymTable::new();
        let affinity = |concept: &str, canon: &str| -> f64 {
            // Sharpened so near-misses ("title" vs "name") barely count.
            name_similarity(keyword, canon, &strict)
                .max(0.8 * name_similarity(keyword, concept, &strict))
                .powi(4)
        };
        let (mut hit, mut base) = (0.0, 0.0);
        for ((concept, canon), p) in &prediction.scores {
            let w = affinity(concept, canon);
            hit += p * w;
            base += w;
        }
        let corpus_score = if base > 1e-9 {
            // Lift of the expected affinity under the prediction over a
            // uniform prediction, squashed into (0, 1); 0.5 = the
            // prediction is uninformative about the keyword's concept.
            let lift = hit * prediction.scores.len() as f64 / base;
            lift / (1.0 + lift)
        } else {
            // Keyword shares no vocabulary with the corpus: stay neutral.
            0.5
        };
        0.6 * direct + 0.4 * corpus_score
    }

    /// Propose ranked well-formed queries for the user's keywords.
    pub fn propose(&self, keywords: &[&str], schema: &DbSchema, data: &Catalog) -> Vec<ProposedQuery> {
        if keywords.is_empty() {
            return Vec::new();
        }
        // Candidate elements per keyword.
        let mut candidates: Vec<Vec<((String, String), f64)>> = Vec::new();
        for kw in keywords {
            let mut scored: Vec<((String, String), f64)> = schema
                .elements()
                .map(|(rel, attr)| {
                    (
                        (rel.to_string(), attr.to_string()),
                        self.keyword_score(kw, schema, data, rel, attr),
                    )
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            scored.truncate(self.fanout);
            candidates.push(scored);
        }
        // Cartesian combination of candidates (bounded by fanout^keywords,
        // which the small fanout keeps tractable).
        let mut combos: Vec<(Vec<(String, String)>, f64)> = vec![(Vec::new(), 0.0)];
        for cands in &candidates {
            let mut next = Vec::new();
            for (chosen, score) in &combos {
                for (el, s) in cands {
                    let mut c = chosen.clone();
                    c.push(el.clone());
                    next.push((c, score + s));
                }
            }
            combos = next;
        }
        combos.sort_by(|a, b| b.1.total_cmp(&a.1));
        combos.truncate(self.max_proposals);

        let mut out = Vec::new();
        for (elements, score) in combos {
            if let Some(q) = self.assemble(&elements, schema) {
                out.push(ProposedQuery {
                    query: q,
                    score: score / keywords.len() as f64,
                    bindings: keywords
                        .iter()
                        .map(|k| k.to_string())
                        .zip(elements.iter().cloned())
                        .collect(),
                });
            }
        }
        out
    }

    /// Build a well-formed CQ touching the chosen elements: one atom per
    /// distinct relation, variables shared across relations when two
    /// attributes have similar names (the join heuristic).
    fn assemble(&self, elements: &[(String, String)], schema: &DbSchema) -> Option<ConjunctiveQuery> {
        let mut rels: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (rel, attr) in elements {
            rels.entry(rel).or_default().push(attr);
        }
        let mut body = Vec::new();
        let mut head_vars = Vec::new();
        // Variable name per (relation, attribute).
        let var_of = |rel: &str, attr: &str| format!("V_{}_{}", sanitize(rel), sanitize(attr));
        let rel_list: Vec<&str> = rels.keys().copied().collect();
        for rel in &rel_list {
            let rs = schema.relation(rel)?;
            let mut terms = Vec::new();
            for attr in rs.attr_names() {
                terms.push(var_of(rel, attr));
            }
            body.push(format!("{}({})", rel, terms.join(", ")));
            for attr in &rels[rel] {
                head_vars.push(var_of(rel, attr));
            }
        }
        // Join heuristic: equate variables of similar-named attributes in
        // different relations (e.g. ta.course with course.code).
        let mut joins: Vec<String> = Vec::new();
        for (i, r1) in rel_list.iter().enumerate() {
            for r2 in rel_list.iter().skip(i + 1) {
                let (s1, s2) = (schema.relation(r1)?, schema.relation(r2)?);
                let mut best: Option<(f64, String, String)> = None;
                for a1 in s1.attr_names() {
                    for a2 in s2.attr_names() {
                        let sim = name_similarity(a1, a2, &self.synonyms)
                            .max(name_similarity(a1, r2, &self.synonyms))
                            .max(name_similarity(a2, r1, &self.synonyms));
                        if sim > 0.65 && best.as_ref().map(|(b, _, _)| sim > *b).unwrap_or(true) {
                            best = Some((sim, var_of(r1, a1), var_of(r2, a2)));
                        }
                    }
                }
                if let Some((_, v1, v2)) = best {
                    joins.push(format!("{v1} = {v2}"));
                }
            }
        }
        let mut items = body;
        items.extend(joins);
        let text = format!("q({}) :- {}", head_vars.join(", "), items.join(", "));
        parse_query(&text).ok()
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusEntry};
    use revere_storage::{RelSchema, Relation, Value};

    fn trained() -> QueryReformulator {
        let mut c = Corpus::new();
        let schema = DbSchema::new("U0")
            .with(RelSchema::text("course", &["title", "instructor"]))
            .with(RelSchema::text("instructor", &["name", "phone"]));
        let mut e = CorpusEntry::schema_only(schema);
        for (rel, attrs, canon_rel) in [
            ("course", vec!["title", "instructor"], "course"),
            ("instructor", vec!["name", "phone"], "instructor"),
        ] {
            let mut r = Relation::new(RelSchema::text(rel, &attrs.to_vec()));
            for k in 0..4 {
                r.insert(attrs.iter().map(|a| Value::str(format!("{a} value {k}"))).collect());
            }
            e.data.register(r);
            for a in &attrs {
                e.labels.insert(
                    (rel.to_string(), a.to_string()),
                    (canon_rel.to_string(), a.to_string()),
                );
            }
        }
        c.add(e);
        QueryReformulator::new(MultiStrategyClassifier::train(&c))
    }

    fn unfamiliar_schema() -> (DbSchema, Catalog) {
        let schema = DbSchema::new("X")
            .with(RelSchema::text("offering", &["heading", "lecturer"]))
            .with(RelSchema::text("staff", &["full_name", "telephone"]));
        (schema, Catalog::new())
    }

    #[test]
    fn maps_keywords_to_foreign_vocabulary() {
        let r = trained();
        let (schema, data) = unfamiliar_schema();
        let proposals = r.propose(&["title"], &schema, &data);
        assert!(!proposals.is_empty());
        let top = &proposals[0];
        assert_eq!(top.bindings[0].1, ("offering".to_string(), "heading".to_string()));
        // Proposed query is well-formed over the actual schema.
        assert_eq!(top.query.body[0].relation, "offering");
        assert!(top.query.is_safe());
    }

    #[test]
    fn multi_keyword_queries_join_relations() {
        let r = trained();
        let (schema, data) = unfamiliar_schema();
        let proposals = r.propose(&["title", "phone"], &schema, &data);
        assert!(!proposals.is_empty());
        let top = &proposals[0];
        assert_eq!(top.query.body.len(), 2, "{}", top.query);
        assert_eq!(top.query.head.terms.len(), 2);
    }

    #[test]
    fn proposals_are_ranked() {
        let r = trained();
        let (schema, data) = unfamiliar_schema();
        let proposals = r.propose(&["telephone"], &schema, &data);
        assert!(proposals.len() >= 2);
        assert!(proposals.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(proposals[0].bindings[0].1 .1, "telephone");
    }

    #[test]
    fn empty_keywords_yield_nothing() {
        let r = trained();
        let (schema, data) = unfamiliar_schema();
        assert!(r.propose(&[], &schema, &data).is_empty());
    }
}
