//! GLUE-style instance-based matching (§4.3.2, \[14\]).
//!
//! The paper's MatchingAdvisor builds on "our previous work on schema
//! matching in the LSD \[13\] and GLUE \[14\] Systems". GLUE's signature move
//! is matching by the *joint distribution of instances*: two elements
//! correspond when their data values look alike, independent of any names
//! or corpus. This module provides that corpus-free baseline: columns are
//! summarized by a distribution over surface features plus a value-overlap
//! term, and schemas are matched greedily on the combined similarity.
//!
//! It complements the corpus-trained [`crate::matcher::MatchingAdvisor`]:
//! useful when no corpus exists yet (the bootstrap problem), and as a
//! baseline the corpus-assisted matcher must beat.

use crate::matcher::Correspondence;
use revere_storage::{Catalog, DbSchema, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Feature histogram of a column's values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnProfile {
    features: BTreeMap<&'static str, f64>,
    values: BTreeSet<String>,
    n: usize,
}

/// Surface features of one value (the same axes the LSD value learner
/// uses, kept independent so the two can evolve separately).
fn features_of(v: &Value) -> Vec<&'static str> {
    let s = v.to_string();
    let mut f = Vec::new();
    if matches!(v, Value::Int(_) | Value::Float(_)) {
        f.push("numeric");
    }
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
    let alphas = s.chars().filter(|c| c.is_alphabetic()).count();
    if digits > alphas {
        f.push("digit_heavy");
    }
    if s.contains('@') {
        f.push("at_sign");
    }
    if s.contains('-') {
        f.push("dash");
    }
    if s.contains(':') {
        f.push("colon");
    }
    if s.contains("http") {
        f.push("url_like");
    }
    f.push(match s.len() {
        0..=4 => "len_0_4",
        5..=9 => "len_5_9",
        10..=19 => "len_10_19",
        _ => "len_20_plus",
    });
    f.push(match s.split_whitespace().count() {
        0 | 1 => "words_1",
        2 => "words_2",
        _ => "words_3_plus",
    });
    if s.chars().next().is_some_and(|c| c.is_uppercase()) {
        f.push("capitalized");
    }
    f
}

impl ColumnProfile {
    /// Summarize a column from (a sample of) its values.
    pub fn from_values(values: &[Value]) -> ColumnProfile {
        let mut p = ColumnProfile::default();
        for v in values {
            p.n += 1;
            p.values.insert(v.to_string().to_lowercase());
            for f in features_of(v) {
                *p.features.entry(f).or_default() += 1.0;
            }
        }
        // Normalize to a distribution.
        if p.n > 0 {
            for w in p.features.values_mut() {
                *w /= p.n as f64;
            }
        }
        p
    }

    /// Number of sampled values.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no values were sampled.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Similarity in [0, 1]: feature-distribution affinity (1 − total
    /// variation distance) blended with exact value overlap (Jaccard) —
    /// the overlap term is what lets shared vocabularies (course codes,
    /// department names) snap columns together the way GLUE's joint
    /// distribution estimation does.
    pub fn similarity(&self, other: &ColumnProfile) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let keys: BTreeSet<&&str> = self.features.keys().chain(other.features.keys()).collect();
        let tv: f64 = keys
            .into_iter()
            .map(|k| {
                (self.features.get(*k).copied().unwrap_or(0.0)
                    - other.features.get(*k).copied().unwrap_or(0.0))
                .abs()
            })
            .sum::<f64>()
            / 2.0;
        let dist_sim = 1.0 - tv.clamp(0.0, 1.0);
        let inter = self.values.intersection(&other.values).count();
        let union = self.values.len() + other.values.len() - inter;
        let overlap = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
        0.7 * dist_sim + 0.3 * overlap
    }
}

/// Match two schemas purely on instance profiles (no names, no corpus).
/// Greedy one-to-one extraction by descending similarity; pairs below
/// `threshold` are dropped.
pub fn match_by_instances(
    s1: &DbSchema,
    d1: &Catalog,
    s2: &DbSchema,
    d2: &Catalog,
    threshold: f64,
) -> Vec<Correspondence> {
    let profile = |schema: &DbSchema, data: &Catalog| -> Vec<((String, String), ColumnProfile)> {
        let mut out = Vec::new();
        for rel in &schema.relations {
            for attr in rel.attr_names() {
                let values = data
                    .get(&rel.name)
                    .map(|r| r.sample_values(attr, 25))
                    .unwrap_or_default();
                out.push((
                    (rel.name.clone(), attr.to_string()),
                    ColumnProfile::from_values(&values),
                ));
            }
        }
        out
    };
    let left = profile(s1, d1);
    let right = profile(s2, d2);
    let mut scored: Vec<(usize, usize, f64)> = Vec::new();
    for (i, (_, lp)) in left.iter().enumerate() {
        for (j, (_, rp)) in right.iter().enumerate() {
            let s = lp.similarity(rp);
            if s >= threshold {
                scored.push((i, j, s));
            }
        }
    }
    scored.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
    let mut used_l = BTreeSet::new();
    let mut used_r = BTreeSet::new();
    let mut out = Vec::new();
    for (i, j, s) in scored {
        if used_l.contains(&i) || used_r.contains(&j) {
            continue;
        }
        used_l.insert(i);
        used_r.insert(j);
        out.push(Correspondence {
            left: left[i].0.clone(),
            right: right[j].0.clone(),
            confidence: s,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_storage::{RelSchema, Relation};

    fn phones() -> Vec<Value> {
        (0..10).map(|i| Value::str(format!("206-555-{i:04}"))).collect()
    }

    fn names() -> Vec<Value> {
        (0..10).map(|i| Value::str(format!("Ada Lovelace{i}"))).collect()
    }

    fn counts() -> Vec<Value> {
        (0..10).map(|i| Value::Int(40 + i)).collect()
    }

    #[test]
    fn profiles_separate_kinds() {
        let p_phone = ColumnProfile::from_values(&phones());
        let p_name = ColumnProfile::from_values(&names());
        let p_count = ColumnProfile::from_values(&counts());
        assert!(p_phone.similarity(&p_phone) > 0.99);
        assert!(p_phone.similarity(&p_name) < p_phone.similarity(&p_phone));
        assert!(p_count.similarity(&p_name) < 0.5);
    }

    #[test]
    fn value_overlap_boosts_shared_vocabulary() {
        let dept_a: Vec<Value> = ["History", "Classics", "Physics"]
            .iter()
            .map(|s| Value::str(*s))
            .collect();
        let dept_b: Vec<Value> = ["History", "Physics", "Biology"]
            .iter()
            .map(|s| Value::str(*s))
            .collect();
        let other: Vec<Value> = ["MWF 10:30-11:20", "TTh 9:00-10:20", "F 13:30-14:20"]
            .iter()
            .map(|s| Value::str(*s))
            .collect();
        let pa = ColumnProfile::from_values(&dept_a);
        let pb = ColumnProfile::from_values(&dept_b);
        let po = ColumnProfile::from_values(&other);
        assert!(pa.similarity(&pb) > pa.similarity(&po));
    }

    #[test]
    fn empty_profiles_never_match() {
        let empty = ColumnProfile::from_values(&[]);
        let full = ColumnProfile::from_values(&phones());
        assert_eq!(empty.similarity(&full), 0.0);
        assert!(empty.is_empty());
    }

    fn schema_with(rel: &str, cols: &[(&str, Vec<Value>)]) -> (DbSchema, Catalog) {
        let attrs: Vec<&str> = cols.iter().map(|(a, _)| *a).collect();
        let schema = DbSchema::new("X").with(RelSchema::text(rel, &attrs));
        let mut r = Relation::new(RelSchema::text(rel, &attrs));
        for i in 0..cols[0].1.len() {
            r.insert(cols.iter().map(|(_, vs)| vs[i].clone()).collect());
        }
        let mut cat = Catalog::new();
        cat.register(r);
        (schema, cat)
    }

    #[test]
    fn matches_columns_with_opaque_names() {
        // Names are deliberately useless; only instances can match these.
        let (s1, d1) = schema_with("t1", &[("a1", phones()), ("a2", names()), ("a3", counts())]);
        let (s2, d2) = schema_with("t2", &[("b1", names()), ("b2", counts()), ("b3", phones())]);
        let corr = match_by_instances(&s1, &d1, &s2, &d2, 0.5);
        assert_eq!(corr.len(), 3, "{corr:?}");
        let find = |l: &str| corr.iter().find(|c| c.left.1 == l).map(|c| c.right.1.as_str());
        assert_eq!(find("a1"), Some("b3"));
        assert_eq!(find("a2"), Some("b1"));
        assert_eq!(find("a3"), Some("b2"));
    }

    #[test]
    fn one_to_one_is_respected() {
        let (s1, d1) = schema_with("t1", &[("a1", phones()), ("a2", phones())]);
        let (s2, d2) = schema_with("t2", &[("b1", phones())]);
        let corr = match_by_instances(&s1, &d1, &s2, &d2, 0.3);
        assert_eq!(corr.len(), 1);
    }

    #[test]
    fn threshold_filters_weak_pairs() {
        let (s1, d1) = schema_with("t1", &[("a1", phones())]);
        let (s2, d2) = schema_with("t2", &[("b1", names())]);
        let strict = match_by_instances(&s1, &d1, &s2, &d2, 0.9);
        assert!(strict.is_empty());
    }
}
