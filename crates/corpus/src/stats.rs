//! Basic and composite statistics over the corpus (§4.2).
//!
//! Basic statistics (§4.2.1): "Term usage: how frequently the term is used
//! as a relation name, attribute name, or in data ... Co-occurring schema
//! elements: for each of the different uses of a term, which relation
//! names and attributes tend to appear with it? ... Similar names: for
//! each of the uses of a term, which other words tend to be used with
//! similar statistical characteristics?"
//!
//! Composite statistics (§4.2.2) are kept for "partial structures that
//! appear frequently": we mine frequent attribute-name pairs within
//! relations (an apriori-style pass), which is exactly the signal the
//! DesignAdvisor's "TA info is usually a separate table" advice needs.

use crate::corpus::Corpus;
use crate::text::{stem, tokenize, SparseVec};
use std::collections::{BTreeMap, BTreeSet};

/// The role a term plays in structured data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TermRole {
    /// Used as a relation name.
    RelationName,
    /// Used as an attribute name.
    AttributeName,
    /// Appears inside data values.
    DataValue,
}

/// Per-term usage counts by role.
#[derive(Debug, Clone, Default)]
pub struct TermUsage {
    /// Schemas in which the term names a relation.
    pub as_relation: usize,
    /// Schemas in which the term names an attribute.
    pub as_attribute: usize,
    /// Sampled values containing the term.
    pub in_data: usize,
}

impl TermUsage {
    /// Total uses.
    pub fn total(&self) -> usize {
        self.as_relation + self.as_attribute + self.in_data
    }

    /// The dominant role, if the term is used at all.
    pub fn dominant_role(&self) -> Option<TermRole> {
        if self.total() == 0 {
            return None;
        }
        let mut best = (TermRole::RelationName, self.as_relation);
        if self.as_attribute > best.1 {
            best = (TermRole::AttributeName, self.as_attribute);
        }
        if self.in_data > best.1 {
            best = (TermRole::DataValue, self.in_data);
        }
        Some(best.0)
    }
}

/// Statistics computed over a corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Stemmed term → usage counts.
    pub usage: BTreeMap<String, TermUsage>,
    /// Stemmed attribute term → co-occurrence vector over sibling
    /// attribute terms (how often they share a relation).
    cooccurrence: BTreeMap<String, SparseVec>,
    /// Frequent within-relation attribute pairs: (a, b) sorted → count.
    pub frequent_pairs: BTreeMap<(String, String), usize>,
    /// Attribute term → relation-name terms it appears under.
    pub home_relations: BTreeMap<String, BTreeMap<String, usize>>,
    /// Number of schemas in the corpus when computed.
    pub schema_count: usize,
}

impl CorpusStats {
    /// Compute all statistics in one pass over the corpus.
    pub fn compute(corpus: &Corpus) -> CorpusStats {
        let mut stats = CorpusStats {
            schema_count: corpus.len(),
            ..Default::default()
        };
        for entry in &corpus.entries {
            for rel in &entry.schema.relations {
                for tok in tokenize(&rel.name) {
                    stats.usage.entry(stem(&tok)).or_default().as_relation += 1;
                }
                let attr_terms: Vec<String> = rel
                    .attrs
                    .iter()
                    .flat_map(|a| tokenize(&a.name))
                    .map(|t| stem(&t))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let rel_term = tokenize(&rel.name)
                    .first()
                    .map(|t| stem(t))
                    .unwrap_or_default();
                for t in &attr_terms {
                    stats.usage.entry(t.clone()).or_default().as_attribute += 1;
                    *stats
                        .home_relations
                        .entry(t.clone())
                        .or_default()
                        .entry(rel_term.clone())
                        .or_default() += 1;
                }
                // Co-occurrence + frequent pairs.
                for (i, a) in attr_terms.iter().enumerate() {
                    for b in attr_terms.iter().skip(i + 1) {
                        stats
                            .cooccurrence
                            .entry(a.clone())
                            .or_default()
                            .add(b.clone(), 1.0);
                        stats
                            .cooccurrence
                            .entry(b.clone())
                            .or_default()
                            .add(a.clone(), 1.0);
                        let key = if a <= b {
                            (a.clone(), b.clone())
                        } else {
                            (b.clone(), a.clone())
                        };
                        *stats.frequent_pairs.entry(key).or_default() += 1;
                    }
                }
                // Data term usage (sampled).
                if let Some(data) = entry.data.get(&rel.name) {
                    for attr in rel.attr_names() {
                        for v in data.sample_values(attr, 5) {
                            for tok in tokenize(&v.to_string()) {
                                stats.usage.entry(stem(&tok)).or_default().in_data += 1;
                            }
                        }
                    }
                }
            }
        }
        stats
    }

    /// Usage of one term (stemmed lookup).
    pub fn term_usage(&self, term: &str) -> TermUsage {
        self.usage.get(&stem(term)).cloned().unwrap_or_default()
    }

    /// Terms whose co-occurrence profiles are most similar to `term`'s —
    /// §4.2.1's "similar names" statistic: distributional similarity, not
    /// string similarity, so it can surface synonyms the dictionary lacks.
    pub fn similar_names(&self, term: &str, k: usize) -> Vec<(String, f64)> {
        let t = stem(term);
        let Some(vec) = self.cooccurrence.get(&t) else {
            return Vec::new();
        };
        let mut scored: Vec<(String, f64)> = self
            .cooccurrence
            .iter()
            .filter(|(other, _)| **other != t)
            .map(|(other, v)| (other.clone(), vec.cosine(v)))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// How often two attribute terms share a relation.
    pub fn pair_support(&self, a: &str, b: &str) -> usize {
        let (sa, sb) = (stem(a), stem(b));
        let key = if sa <= sb { (sa, sb) } else { (sb, sa) };
        self.frequent_pairs.get(&key).copied().unwrap_or(0)
    }

    /// The relation-name term an attribute term most commonly lives under,
    /// with its support.
    pub fn usual_home(&self, attr_term: &str) -> Option<(String, usize)> {
        self.home_relations
            .get(&stem(attr_term))
            .and_then(|homes| {
                homes
                    .iter()
                    .max_by_key(|(name, n)| (**n, std::cmp::Reverse((*name).clone())))
                    .map(|(name, n)| (name.clone(), *n))
            })
    }

    /// Frequent attribute pairs above a support threshold, most frequent
    /// first (the composite statistics of §4.2.2).
    pub fn frequent_pairs_above(&self, min_support: usize) -> Vec<(&(String, String), usize)> {
        let mut pairs: Vec<_> = self
            .frequent_pairs
            .iter()
            .filter(|(_, &n)| n >= min_support)
            .map(|(p, &n)| (p, n))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusEntry;
    use revere_storage::{DbSchema, RelSchema};

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        for i in 0..4 {
            let schema = DbSchema::new(format!("U{i}"))
                .with(RelSchema::text("course", &["title", "instructor", "time"]))
                .with(RelSchema::text("ta", &["name", "email"]));
            c.add(CorpusEntry::schema_only(schema));
        }
        // One deviant schema using "class(name, teacher, time)".
        let schema = DbSchema::new("U9")
            .with(RelSchema::text("class", &["name", "teacher", "time"]));
        c.add(CorpusEntry::schema_only(schema));
        c
    }

    #[test]
    fn term_usage_by_role() {
        let s = CorpusStats::compute(&corpus());
        let course = s.term_usage("course");
        assert_eq!(course.as_relation, 4);
        assert_eq!(course.as_attribute, 0);
        assert_eq!(course.dominant_role(), Some(TermRole::RelationName));
        let title = s.term_usage("title");
        assert_eq!(title.as_attribute, 4);
        assert_eq!(s.term_usage("nonexistent").total(), 0);
    }

    #[test]
    fn cooccurrence_surfaces_distributional_synonyms() {
        let s = CorpusStats::compute(&corpus());
        // "instructor" and "teacher" never co-occur with each other but
        // share the neighbors {title/name?, time} — "teacher" co-occurs
        // with {name, time}, "instructor" with {title, time}; both share
        // "time", so they show up in each other's similar-names lists.
        let sims = s.similar_names("instructor", 10);
        assert!(
            sims.iter().any(|(t, _)| t == &stem("teacher")),
            "expected stem of teacher among {sims:?}"
        );
    }

    #[test]
    fn frequent_pairs_mined() {
        let s = CorpusStats::compute(&corpus());
        assert_eq!(s.pair_support("title", "instructor"), 4);
        assert_eq!(s.pair_support("instructor", "title"), 4);
        assert_eq!(s.pair_support("title", "email"), 0);
        let top = s.frequent_pairs_above(4);
        assert!(!top.is_empty());
        assert!(top[0].1 >= 4);
    }

    #[test]
    fn usual_home_of_attribute() {
        let s = CorpusStats::compute(&corpus());
        let (home, n) = s.usual_home("email").unwrap();
        assert_eq!(home, "ta");
        assert_eq!(n, 4);
        assert!(s.usual_home("never_seen").is_none());
    }

    #[test]
    fn stats_are_stem_insensitive() {
        let s = CorpusStats::compute(&corpus());
        assert_eq!(s.term_usage("courses").as_relation, 4);
        assert_eq!(s.pair_support("titles", "instructors"), 4);
    }

    #[test]
    fn data_values_counted() {
        let mut c = Corpus::new();
        let schema = DbSchema::new("U").with(RelSchema::text("person", &["phone"]));
        let mut e = CorpusEntry::schema_only(schema);
        let mut r = revere_storage::Relation::new(RelSchema::text("person", &["phone"]));
        r.insert(vec![revere_storage::Value::str("contact 5551234")]);
        e.data.register(r);
        c.add(e);
        let s = CorpusStats::compute(&c);
        assert!(s.term_usage("contact").in_data >= 1);
    }
}
