//! MatchingAdvisor: corpus-assisted schema matching (§4.3.2).
//!
//! "Given two schemas, S1 and S2, we apply the classifiers in the corpus
//! to their elements respectively, and find correlations in the
//! predictions for elements of S1 and S2. For example, if we find that all
//! (or most) of the classifiers had the same prediction on element s1 ∈ S1
//! and s2 ∈ S2, then we may hypothesize that s1 matches s2."
//!
//! The advisor scores every element pair by the Pearson correlation of
//! their predicted concept distributions (optionally restricted to a
//! learner subset for the E6 ablation), blended with direct name
//! similarity, then extracts a one-to-one matching greedily by descending
//! confidence. [`MatchQuality`] computes precision/recall/F1 against
//! ground-truth correspondences — the measurement behind the paper's
//! "accuracies in the 70%–90% range" claim.

use crate::classifiers::{ElementInfo, Learner, MultiStrategyClassifier};
use crate::corpus::Element;
use crate::text::{name_similarity, SynonymTable};
use revere_storage::{Catalog, DbSchema};
use std::collections::BTreeSet;

/// One proposed element correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    /// Element of the first schema.
    pub left: Element,
    /// Element of the second schema.
    pub right: Element,
    /// Confidence in [0, 1].
    pub confidence: f64,
}

/// The matching advisor: a trained classifier set plus scoring knobs.
#[derive(Debug, Clone)]
pub struct MatchingAdvisor {
    /// The corpus classifiers.
    pub classifier: MultiStrategyClassifier,
    /// Learners consulted (default: the meta-learner).
    pub learners: Vec<Learner>,
    /// Weight of prediction correlation vs direct name similarity.
    pub correlation_weight: f64,
    /// Pairs below this confidence are not proposed.
    pub threshold: f64,
    synonyms: SynonymTable,
}

impl MatchingAdvisor {
    /// Build from a trained classifier with default knobs.
    pub fn new(classifier: MultiStrategyClassifier) -> Self {
        MatchingAdvisor {
            classifier,
            learners: vec![Learner::Meta],
            correlation_weight: 0.6,
            threshold: 0.25,
            synonyms: SynonymTable::default_domain(),
        }
    }

    /// Use a specific learner subset (E6 ablation).
    pub fn with_learners(mut self, learners: Vec<Learner>) -> Self {
        self.learners = learners;
        self
    }

    /// Replace the synonym table (e.g. an English-only table to model a
    /// coordinator without an inter-language dictionary — the E10 setup).
    /// Also propagates to the classifier's name learner.
    pub fn with_synonyms(mut self, synonyms: SynonymTable) -> Self {
        self.synonyms = synonyms.clone();
        self.classifier.set_synonyms(synonyms);
        self
    }

    /// Collect the [`ElementInfo`] of every element of a schema.
    fn elements_of(schema: &DbSchema, data: &Catalog) -> Vec<(Element, ElementInfo)> {
        let mut out = Vec::new();
        for rel in &schema.relations {
            for attr in rel.attr_names() {
                let info = ElementInfo {
                    name: attr.to_string(),
                    relation: rel.name.clone(),
                    siblings: rel
                        .attr_names()
                        .filter(|a| *a != attr)
                        .map(str::to_string)
                        .collect(),
                    values: data
                        .get(&rel.name)
                        .map(|r| r.sample_values(attr, 10))
                        .unwrap_or_default(),
                };
                out.push(((rel.name.clone(), attr.to_string()), info));
            }
        }
        out
    }

    /// Propose a one-to-one matching between two (previously unseen)
    /// schemas, with optional data samples for each.
    pub fn match_schemas(
        &self,
        s1: &DbSchema,
        d1: &Catalog,
        s2: &DbSchema,
        d2: &Catalog,
    ) -> Vec<Correspondence> {
        let left = Self::elements_of(s1, d1);
        let right = Self::elements_of(s2, d2);
        let predict =
            |info: &ElementInfo| self.classifier.predict_with(info, &self.learners).as_vector();
        let left_preds: Vec<_> = left.iter().map(|(_, info)| predict(info)).collect();
        let right_preds: Vec<_> = right.iter().map(|(_, info)| predict(info)).collect();
        let dim = self.classifier.labels().len();

        // Score all pairs. Pearson (centered) correlation over the label
        // space: an element the classifiers are unsure about has a
        // near-uniform distribution whose centered norm vanishes, so it
        // correlates with nothing — uncertainty suppresses itself without
        // a separate confidence weighting. (Raw cosine would instead rate
        // two near-uniform predictions as near-identical.)
        let mut scored: Vec<(usize, usize, f64)> = Vec::new();
        for (i, (_, li)) in left.iter().enumerate() {
            for (j, (_, ri)) in right.iter().enumerate() {
                let correlation = left_preds[i].pearson(&right_preds[j], dim).max(0.0);
                let name_score = 0.8 * name_similarity(&li.name, &ri.name, &self.synonyms)
                    + 0.2 * name_similarity(&li.relation, &ri.relation, &self.synonyms);
                let w = self.correlation_weight;
                let score = w * correlation + (1.0 - w) * name_score;
                if score >= self.threshold {
                    scored.push((i, j, score));
                }
            }
        }
        // Greedy one-to-one extraction by descending score.
        scored.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
        let mut used_l = BTreeSet::new();
        let mut used_r = BTreeSet::new();
        let mut out = Vec::new();
        for (i, j, score) in scored {
            if used_l.contains(&i) || used_r.contains(&j) {
                continue;
            }
            used_l.insert(i);
            used_r.insert(j);
            out.push(Correspondence {
                left: left[i].0.clone(),
                right: right[j].0.clone(),
                confidence: score,
            });
        }
        out
    }
}

/// Precision/recall/F1 of proposed correspondences against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// Fraction of proposals that are correct.
    pub precision: f64,
    /// Fraction of true correspondences proposed.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Matching *accuracy* in LSD's sense: of the elements that have a
    /// true match, the fraction assigned their correct partner.
    pub accuracy: f64,
}

impl MatchQuality {
    /// Score proposals against the set of true pairs.
    pub fn evaluate(
        proposed: &[Correspondence],
        truth: &[(Element, Element)],
    ) -> MatchQuality {
        let truth_set: BTreeSet<(&Element, &Element)> =
            truth.iter().map(|(a, b)| (a, b)).collect();
        let correct = proposed
            .iter()
            .filter(|c| truth_set.contains(&(&c.left, &c.right)))
            .count();
        let precision = if proposed.is_empty() {
            0.0
        } else {
            correct as f64 / proposed.len() as f64
        };
        // Elements (left side) that truly have some match.
        let matchable: BTreeSet<&Element> = truth.iter().map(|(a, _)| a).collect();
        let recall = if truth.is_empty() {
            0.0
        } else {
            correct as f64 / truth.len() as f64
        };
        let accuracy = if matchable.is_empty() {
            0.0
        } else {
            correct as f64 / matchable.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        MatchQuality { precision, recall, f1, accuracy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusEntry};
    use revere_storage::{RelSchema, Relation, Value};

    /// Train on three vocabulary variants of the course concept.
    fn trained() -> MatchingAdvisor {
        let mut c = Corpus::new();
        let variants = [
            ("course", "title", "enrollment"),
            ("class", "name", "size"),
            ("subject", "heading", "seats"),
        ];
        for (i, (rel, title, enr)) in variants.iter().enumerate() {
            let schema = DbSchema::new(format!("U{i}")).with(RelSchema::text(*rel, &[title, enr]));
            let mut e = CorpusEntry::schema_only(schema);
            let mut r = Relation::new(RelSchema::text(*rel, &[title, enr]));
            for k in 0..6 {
                r.insert(vec![
                    Value::str(format!("Topics in Subject {k}")),
                    Value::Int(15 + k),
                ]);
            }
            e.data.register(r);
            for (attr, canon) in [(title, "title"), (enr, "enrollment")] {
                e.labels.insert(
                    (rel.to_string(), attr.to_string()),
                    ("course".to_string(), canon.to_string()),
                );
            }
            c.add(e);
        }
        MatchingAdvisor::new(MultiStrategyClassifier::train(&c))
    }

    fn schema_with_data(rel: &str, attrs: &[&str], numeric_col: usize) -> (DbSchema, Catalog) {
        let schema = DbSchema::new("X").with(RelSchema::text(rel, attrs));
        let mut cat = Catalog::new();
        let mut r = Relation::new(RelSchema::text(rel, attrs));
        for k in 0..6 {
            r.insert(
                attrs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        if i == numeric_col {
                            Value::Int(40 + k)
                        } else {
                            Value::str(format!("Advanced Topic {k}"))
                        }
                    })
                    .collect(),
            );
        }
        cat.register(r);
        (schema, cat)
    }

    #[test]
    fn matches_unseen_vocabulary_pair() {
        let advisor = trained();
        let (s1, d1) = schema_with_data("offering", &["course_title", "capacity"], 1);
        let (s2, d2) = schema_with_data("module", &["heading", "num_students"], 1);
        let corr = advisor.match_schemas(&s1, &d1, &s2, &d2);
        assert_eq!(corr.len(), 2, "{corr:?}");
        let find = |l: &str| corr.iter().find(|c| c.left.1 == l).unwrap();
        assert_eq!(find("course_title").right.1, "heading");
        assert_eq!(find("capacity").right.1, "num_students");
    }

    #[test]
    fn one_to_one_constraint_holds() {
        let advisor = trained();
        let (s1, d1) = schema_with_data("course", &["title", "name2"], usize::MAX);
        let (s2, d2) = schema_with_data("course", &["title"], usize::MAX);
        let corr = advisor.match_schemas(&s1, &d1, &s2, &d2);
        let rights: BTreeSet<_> = corr.iter().map(|c| &c.right).collect();
        assert_eq!(rights.len(), corr.len(), "a right element was reused");
        assert!(corr.len() <= 1 + 1);
    }

    #[test]
    fn quality_metrics() {
        let el = |r: &str, a: &str| (r.to_string(), a.to_string());
        let proposed = vec![
            Correspondence { left: el("c", "x"), right: el("d", "x"), confidence: 0.9 },
            Correspondence { left: el("c", "y"), right: el("d", "wrong"), confidence: 0.5 },
        ];
        let truth = vec![
            (el("c", "x"), el("d", "x")),
            (el("c", "y"), el("d", "y")),
            (el("c", "z"), el("d", "z")),
        ];
        let q = MatchQuality::evaluate(&proposed, &truth);
        assert!((q.precision - 0.5).abs() < 1e-9);
        assert!((q.recall - 1.0 / 3.0).abs() < 1e-9);
        assert!((q.accuracy - 1.0 / 3.0).abs() < 1e-9);
        assert!(q.f1 > 0.0);
    }

    #[test]
    fn empty_proposals_score_zero() {
        let q = MatchQuality::evaluate(&[], &[(("a".into(), "b".into()), ("c".into(), "d".into()))]);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn threshold_suppresses_garbage_pairs() {
        let advisor = trained();
        let (s1, d1) = schema_with_data("course", &["title"], usize::MAX);
        // A schema from a completely different domain with numeric junk.
        let s2 = DbSchema::new("Y").with(RelSchema::text("zzqk", &["wwxy"]));
        let mut d2 = Catalog::new();
        let mut r = Relation::new(RelSchema::text("zzqk", &["wwxy"]));
        for k in 0..6 {
            r.insert(vec![Value::Int(k)]);
        }
        d2.register(r);
        let corr = advisor.match_schemas(&s1, &d1, &s2, &d2);
        assert!(
            corr.is_empty() || corr[0].confidence < 0.6,
            "nonsense pair got high confidence: {corr:?}"
        );
    }
}
