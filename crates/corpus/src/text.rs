//! The U-WORLD text toolbox, adapted to schema terms.
//!
//! §4.2.1 keeps statistics in several versions "depending on whether we
//! take into consideration word stemming, synonym tables, inter-language
//! dictionaries, or any combination of these three". This module supplies
//! those three axes plus the similarity primitives the learners use.

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Split an identifier into lowercase word tokens: `course_title`,
/// `courseTitle`, `Course-Title` and `course title` all yield
/// `["course", "title"]`.
pub fn tokenize(identifier: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in identifier.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower
                && !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            prev_lower = c.is_lowercase() || c.is_numeric();
            current.extend(c.to_lowercase());
        } else {
            prev_lower = false;
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// A light suffix-stripping stemmer, iterated to a fixpoint so that
/// morphological variants land on the same stem: `courses` → `course` →
/// `cours`; `course` → `cours`; `classes` → `classe` → `class`;
/// `teaching` → `teach`; `enrollment(s)` → `enroll`.
pub fn stem(word: &str) -> String {
    let mut w = word.to_lowercase();
    loop {
        let next = stem_step(&w);
        if next == w {
            return w;
        }
        w = next;
    }
}

fn stem_step(w: &str) -> String {
    if w.len() > 4 && w.ends_with("ies") {
        return format!("{}y", &w[..w.len() - 3]);
    }
    if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") {
        return w[..w.len() - 1].to_string();
    }
    for suf in ["ment", "tion"] {
        if w.len() > suf.len() + 3 && w.ends_with(suf) {
            return w[..w.len() - suf.len()].to_string();
        }
    }
    for suf in ["ing", "ed", "er"] {
        if w.len() > suf.len() + 3 && w.ends_with(suf) {
            return w[..w.len() - suf.len()].to_string();
        }
    }
    if w.len() > 4 && w.ends_with('e') {
        return w[..w.len() - 1].to_string();
    }
    w.to_string()
}

/// A synonym table: groups of interchangeable terms. Lookup is symmetric.
#[derive(Debug, Clone, Default)]
pub struct SynonymTable {
    canonical: HashMap<String, usize>,
    groups: Vec<BTreeSet<String>>,
}

impl SynonymTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a synonym group; overlapping groups are merged.
    pub fn add_group(&mut self, words: &[&str]) {
        let mut target: Option<usize> = None;
        for w in words {
            if let Some(&g) = self.canonical.get(&w.to_lowercase()) {
                target = Some(g);
                break;
            }
        }
        let g = target.unwrap_or_else(|| {
            self.groups.push(BTreeSet::new());
            self.groups.len() - 1
        });
        for w in words {
            let w = w.to_lowercase();
            self.groups[g].insert(w.clone());
            self.canonical.insert(w, g);
        }
    }

    /// Are two words synonymous (or identical)?
    pub fn synonymous(&self, a: &str, b: &str) -> bool {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        if a == b {
            return true;
        }
        match (self.canonical.get(&a), self.canonical.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// English-only synonym groups: the [`SynonymTable::default_domain`]
    /// table with every Italian term removed — models a coordinator who
    /// has no inter-language dictionary (the E10 ablation).
    pub fn english_only() -> SynonymTable {
        let full = SynonymTable::default_domain();
        let italian = [
            "corso", "insegnamento", "docente", "professore", "titolo", "nome", "iscritti",
            "orario", "aula", "ufficio", "telefono", "posta", "dipartimento", "facolta",
            "assistente", "libro", "testo", "crediti", "periodo", "sito", "direttore",
            "relatore", "autore", "codice", "seminario",
        ];
        let mut t = SynonymTable::new();
        for group in &full.groups {
            let kept: Vec<&str> = group
                .iter()
                .map(String::as_str)
                .filter(|w| !italian.contains(w))
                .collect();
            if kept.len() >= 2 {
                t.add_group(&kept);
            }
        }
        t
    }

    /// The English/Italian dictionary implicit in the paper's Example 3.1
    /// plus common schema-vocabulary synonym groups. Tools can start from
    /// this and grow it from corpus statistics.
    pub fn default_domain() -> SynonymTable {
        let mut t = SynonymTable::new();
        for group in [
            &["course", "class", "subject", "offering", "module", "corso", "insegnamento"][..],
            &["instructor", "teacher", "professor", "lecturer", "faculty", "docente", "professore"],
            &["title", "name", "heading", "titolo", "nome"],
            &["enrollment", "size", "capacity", "seats", "iscritti"],
            &["time", "schedule", "when", "hours", "orario"],
            &["room", "location", "place", "building", "aula", "ufficio", "office", "venue"],
            &["phone", "telephone", "telefono"],
            &["email", "mail", "posta"],
            &["department", "dept", "school", "division", "dipartimento", "facolta", "unit"],
            &["ta", "assistant", "tutor", "grader", "assistente"],
            &["book", "text", "textbook", "reading", "libro", "testo"],
            &["credits", "units", "crediti"],
            &["term", "quarter", "semester", "session", "periodo"],
            &["url", "homepage", "website", "sito"],
            &["chair", "head", "director", "dean", "direttore"],
            &["speaker", "presenter", "relatore"],
            &["author", "autore"],
            &["code", "number", "id", "codice"],
            &["seminar", "talk", "colloquium", "seminario"],
        ] {
            t.add_group(group);
        }
        t
    }
}

/// Levenshtein edit distance.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized string similarity in [0, 1] (1 = identical).
pub fn string_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max as f64
}

/// Jaccard similarity between two token sets.
pub fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Name similarity combining the three §4.2.1 axes: exact/edit similarity
/// on the raw names, token-level Jaccard after stemming, and synonym-table
/// credit.
pub fn name_similarity(a: &str, b: &str, synonyms: &SynonymTable) -> f64 {
    if a.eq_ignore_ascii_case(b) {
        return 1.0;
    }
    let ta: Vec<String> = tokenize(a);
    let tb: Vec<String> = tokenize(b);
    // Synonym credit: best pairwise token synonymy.
    let mut syn_hits = 0usize;
    for x in &ta {
        if tb.iter().any(|y| synonyms.synonymous(x, y)) {
            syn_hits += 1;
        }
    }
    let syn_score = if ta.is_empty() {
        0.0
    } else {
        syn_hits as f64 / ta.len().max(tb.len()) as f64
    };
    let sa: BTreeSet<String> = ta.iter().map(|t| stem(t)).collect();
    let sb: BTreeSet<String> = tb.iter().map(|t| stem(t)).collect();
    let token_score = jaccard(&sa, &sb);
    let edit_score = string_similarity(&a.to_lowercase(), &b.to_lowercase());
    syn_score.max(token_score).max(edit_score * 0.9)
}

/// A sparse TF-IDF-style vector with cosine similarity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    weights: BTreeMap<String, f64>,
}

impl SparseVec {
    /// Build from raw term counts.
    pub fn from_counts(counts: impl IntoIterator<Item = (String, f64)>) -> Self {
        SparseVec { weights: counts.into_iter().filter(|(_, w)| *w != 0.0).collect() }
    }

    /// Add weight to a term.
    pub fn add(&mut self, term: impl Into<String>, w: f64) {
        *self.weights.entry(term.into()).or_insert(0.0) += w;
    }

    /// Cosine similarity.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let (small, large) = if self.weights.len() <= other.weights.len() {
            (&self.weights, &other.weights)
        } else {
            (&other.weights, &self.weights)
        };
        let dot: f64 = small
            .iter()
            .filter_map(|(k, v)| large.get(k).map(|w| v * w))
            .sum();
        let na: f64 = self.weights.values().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = other.weights.values().map(|v| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Pearson correlation between two sparse vectors embedded in a
    /// `dim`-dimensional space (absent entries are zero). Unlike
    /// [`SparseVec::cosine`], this centers both vectors first, so two
    /// near-uniform probability distributions — which cosine-correlate
    /// highly for no semantic reason — score ≈ 0: only the *shape* above
    /// the baseline correlates. Returns 0 when either vector is
    /// (near-)constant.
    pub fn pearson(&self, other: &SparseVec, dim: usize) -> f64 {
        if dim == 0 {
            return 0.0;
        }
        let n = dim as f64;
        let (small, large) = if self.weights.len() <= other.weights.len() {
            (&self.weights, &other.weights)
        } else {
            (&other.weights, &self.weights)
        };
        let dot: f64 = small
            .iter()
            .filter_map(|(k, v)| large.get(k).map(|w| v * w))
            .sum();
        let sa: f64 = self.weights.values().sum();
        let sb: f64 = other.weights.values().sum();
        let qa: f64 = self.weights.values().map(|v| v * v).sum();
        let qb: f64 = other.weights.values().map(|v| v * v).sum();
        let (va, vb) = (qa - sa * sa / n, qb - sb * sb / n);
        if va <= 1e-12 || vb <= 1e-12 {
            return 0.0;
        }
        (dot - sa * sb / n) / (va * vb).sqrt()
    }

    /// Number of nonzero terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when all weights are zero.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_handles_cases() {
        assert_eq!(tokenize("course_title"), vec!["course", "title"]);
        assert_eq!(tokenize("courseTitle"), vec!["course", "title"]);
        assert_eq!(tokenize("Course-Title2"), vec!["course", "title2"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
    }

    #[test]
    fn stemming_collapses_morphology() {
        assert_eq!(stem("courses"), stem("course"));
        assert_eq!(stem("classes"), stem("class"));
        assert_eq!(stem("enrollments"), stem("enrollment"));
        assert_eq!(stem("teaches"), stem("teaching"));
        assert_eq!(stem("teaching"), "teach");
        assert_eq!(stem("studies"), stem("study"));
        // Short words are untouched.
        assert_eq!(stem("as"), "as");
    }

    #[test]
    fn synonym_table_symmetric_and_merged() {
        let t = SynonymTable::default_domain();
        assert!(t.synonymous("course", "class"));
        assert!(t.synonymous("class", "course"));
        assert!(t.synonymous("corso", "subject"));
        assert!(!t.synonymous("course", "phone"));
        assert!(t.synonymous("same", "same"));
    }

    #[test]
    fn overlapping_groups_merge() {
        let mut t = SynonymTable::new();
        t.add_group(&["a", "b"]);
        t.add_group(&["b", "c"]);
        assert!(t.synonymous("a", "c"));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
    }

    #[test]
    fn name_similarity_axes() {
        let syn = SynonymTable::default_domain();
        assert_eq!(name_similarity("title", "Title", &syn), 1.0);
        // Synonyms beat edit distance.
        assert!(name_similarity("instructor", "docente", &syn) > 0.9);
        // Shared stemmed token.
        assert!(name_similarity("course_title", "title", &syn) > 0.4);
        // Unrelated stays low.
        assert!(name_similarity("phone", "title", &syn) < 0.4);
    }

    #[test]
    fn cosine_similarity() {
        let mut a = SparseVec::default();
        a.add("x", 1.0);
        a.add("y", 1.0);
        let mut b = SparseVec::default();
        b.add("x", 1.0);
        b.add("y", 1.0);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-9);
        let mut c = SparseVec::default();
        c.add("z", 5.0);
        assert_eq!(a.cosine(&c), 0.0);
        assert_eq!(SparseVec::default().cosine(&a), 0.0);
    }

    #[test]
    fn jaccard_edge_cases() {
        let empty: BTreeSet<String> = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        let a: BTreeSet<String> = ["x".to_string()].into();
        assert_eq!(jaccard(&a, &empty), 0.0);
    }
}
