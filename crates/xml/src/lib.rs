//! XML substrate for the REVERE reproduction.
//!
//! Piazza (the PDMS component of REVERE) "assumes an XML data model, since
//! this is general enough to encompass relational, hierarchical, or
//! semi-structured data" (§3.1 of the paper). This crate provides that
//! substrate, built from scratch:
//!
//! * [`tree`] — an arena-backed document tree ([`Document`], [`NodeId`]).
//! * [`parser`] — a strict XML parser for the subset REVERE needs
//!   (elements, attributes, text, comments, the five predefined entities,
//!   and numeric character references).
//! * [`writer`] — serialization, both compact and pretty-printed.
//! * [`dtd`] — DTD-style content models in the compact `Element name(child*)`
//!   syntax of the paper's Figure 3, plus validation of documents.
//! * [`path`] — the "limited path expressions" (§3.1.1) used by the mapping
//!   language: `/a/b`, `//c`, `[child = 'value']` filters and `text()`.
//!
//! # Example
//!
//! ```
//! use revere_xml::{parse, Path};
//!
//! let doc = parse("<schedule><college><name>Berkeley</name></college></schedule>").unwrap();
//! let path = Path::parse("/schedule/college/name").unwrap();
//! let hits = path.eval(&doc, doc.root());
//! assert_eq!(doc.text_content(hits[0]), "Berkeley");
//! ```

pub mod dtd;
pub mod error;
pub mod parser;
pub mod path;
pub mod tree;
pub mod writer;

pub use dtd::{ContentModel, Dtd, Occurrence, Particle};
pub use error::XmlError;
pub use parser::parse;
pub use path::{Path, Step};
pub use tree::{Document, Node, NodeId, NodeKind};
pub use writer::{to_pretty_string, to_string};
