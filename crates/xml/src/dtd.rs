//! DTD-style schemas in the compact notation of the paper's Figure 3.
//!
//! Figure 3 writes peer schemas as, e.g.:
//!
//! ```text
//! Element schedule(college*)
//! Element college(name, dept*)
//! Element dept(name, course*)
//! Element course(title, size)
//! ```
//!
//! A [`Dtd`] is a set of such element declarations. An element whose name is
//! declared but has no children declaration (or declares `#PCDATA`) holds
//! text. [`Dtd::validate`] checks a [`Document`] against the content models.

use crate::error::XmlError;
use crate::tree::{Document, NodeId, NodeKind};
use std::collections::BTreeMap;
use std::fmt;

/// How many times a particle may repeat, mirroring DTD occurrence markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// Exactly once (no marker).
    One,
    /// Zero or one (`?`).
    Optional,
    /// Zero or more (`*`).
    Star,
    /// One or more (`+`).
    Plus,
}

impl Occurrence {
    fn accepts(self, n: usize) -> bool {
        match self {
            Occurrence::One => n == 1,
            Occurrence::Optional => n <= 1,
            Occurrence::Star => true,
            Occurrence::Plus => n >= 1,
        }
    }

    fn marker(self) -> &'static str {
        match self {
            Occurrence::One => "",
            Occurrence::Optional => "?",
            Occurrence::Star => "*",
            Occurrence::Plus => "+",
        }
    }
}

/// One child slot in a content model: an element name plus its occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Particle {
    /// Child element name.
    pub name: String,
    /// How many times it may repeat.
    pub occurrence: Occurrence,
}

/// What an element may contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// Character data only (`#PCDATA`, or an empty declaration).
    Text,
    /// A sequence of named children. Validation is order-insensitive within
    /// the sequence (the paper's examples never rely on sibling order, and
    /// generated peer schemas reorder fields freely) but cardinalities are
    /// enforced, and no undeclared child may appear.
    Children(Vec<Particle>),
}

/// A set of element declarations, keyed by element name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dtd {
    elements: BTreeMap<String, ContentModel>,
    root: Option<String>,
}

impl Dtd {
    /// Create an empty DTD.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an element. The first declaration names the document root.
    pub fn declare(&mut self, name: impl Into<String>, model: ContentModel) -> &mut Self {
        let name = name.into();
        if self.root.is_none() {
            self.root = Some(name.clone());
        }
        self.elements.insert(name, model);
        self
    }

    /// The root element name (the first declared element), if any.
    pub fn root(&self) -> Option<&str> {
        self.root.as_deref()
    }

    /// Look up an element's content model.
    pub fn model(&self, name: &str) -> Option<&ContentModel> {
        self.elements.get(name)
    }

    /// All declared element names, sorted.
    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.elements.keys().map(String::as_str)
    }

    /// Number of declared elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when no element has been declared.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Parse the Figure 3 notation: one `Element name(child, child*)`
    /// declaration per line. Blank lines and `#` comments are ignored.
    /// `Element name(#PCDATA)` and `Element name()` both declare text
    /// content.
    pub fn parse(src: &str) -> Result<Dtd, XmlError> {
        let mut dtd = Dtd::new();
        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rest = line.strip_prefix("Element").ok_or_else(|| XmlError::BadDtd {
                message: format!("line {}: expected 'Element', got {line:?}", lineno + 1),
            })?;
            let rest = rest.trim_start();
            let open = rest.find('(').ok_or_else(|| XmlError::BadDtd {
                message: format!("line {}: missing '(' in {line:?}", lineno + 1),
            })?;
            let name = rest[..open].trim();
            if name.is_empty() {
                return Err(XmlError::BadDtd {
                    message: format!("line {}: empty element name", lineno + 1),
                });
            }
            let close = rest.rfind(')').ok_or_else(|| XmlError::BadDtd {
                message: format!("line {}: missing ')' in {line:?}", lineno + 1),
            })?;
            let inner = rest[open + 1..close].trim();
            let model = if inner.is_empty() || inner == "#PCDATA" {
                ContentModel::Text
            } else {
                let mut particles = Vec::new();
                for part in inner.split(',') {
                    let part = part.trim();
                    let (name, occurrence) = match part.as_bytes().last() {
                        Some(b'*') => (&part[..part.len() - 1], Occurrence::Star),
                        Some(b'+') => (&part[..part.len() - 1], Occurrence::Plus),
                        Some(b'?') => (&part[..part.len() - 1], Occurrence::Optional),
                        _ => (part, Occurrence::One),
                    };
                    if name.is_empty() {
                        return Err(XmlError::BadDtd {
                            message: format!("line {}: empty particle in {line:?}", lineno + 1),
                        });
                    }
                    particles.push(Particle {
                        name: name.to_string(),
                        occurrence,
                    });
                }
                ContentModel::Children(particles)
            };
            dtd.declare(name, model);
        }
        if dtd.is_empty() {
            return Err(XmlError::BadDtd {
                message: "no element declarations found".into(),
            });
        }
        Ok(dtd)
    }

    /// Validate a document against this DTD.
    ///
    /// Checks: the root element is the DTD's root; every element is
    /// declared; text-model elements contain no child elements; child-model
    /// elements contain only declared children within their cardinalities
    /// and no non-whitespace text.
    pub fn validate(&self, doc: &Document) -> Result<(), XmlError> {
        let root_name = doc.name(doc.root()).unwrap_or_default();
        if let Some(expected) = self.root() {
            if root_name != expected {
                return Err(XmlError::Invalid {
                    element: root_name.to_string(),
                    message: format!("root must be <{expected}>"),
                });
            }
        }
        self.validate_node(doc, doc.root())
    }

    fn validate_node(&self, doc: &Document, id: NodeId) -> Result<(), XmlError> {
        let name = doc.name(id).expect("validate_node called on element");
        let model = self.model(name).ok_or_else(|| XmlError::Invalid {
            element: name.to_string(),
            message: "element not declared in DTD".into(),
        })?;
        match model {
            ContentModel::Text => {
                if doc.child_elements(id).next().is_some() {
                    return Err(XmlError::Invalid {
                        element: name.to_string(),
                        message: "text-only element contains child elements".into(),
                    });
                }
                Ok(())
            }
            ContentModel::Children(particles) => {
                for &c in doc.children(id) {
                    if let NodeKind::Text(t) = &doc.node(c).kind {
                        if !t.trim().is_empty() {
                            return Err(XmlError::Invalid {
                                element: name.to_string(),
                                message: format!("unexpected text {:?}", t.trim()),
                            });
                        }
                    }
                }
                let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
                for c in doc.child_elements(id) {
                    let cname = doc.name(c).expect("child element");
                    *counts.entry(cname).or_default() += 1;
                }
                for cname in counts.keys() {
                    if !particles.iter().any(|p| p.name == **cname) {
                        return Err(XmlError::Invalid {
                            element: name.to_string(),
                            message: format!("undeclared child <{cname}>"),
                        });
                    }
                }
                for p in particles {
                    let n = counts.get(p.name.as_str()).copied().unwrap_or(0);
                    if !p.occurrence.accepts(n) {
                        return Err(XmlError::Invalid {
                            element: name.to_string(),
                            message: format!(
                                "child <{}> occurs {n} times, allowed {}{}",
                                p.name,
                                p.name,
                                p.occurrence.marker()
                            ),
                        });
                    }
                }
                for c in doc.child_elements(id) {
                    self.validate_node(doc, c)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Dtd {
    /// Renders back in the Figure 3 notation, root declaration first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.elements.keys().map(String::as_str).collect();
        if let Some(root) = self.root() {
            names.retain(|n| *n != root);
            names.insert(0, root);
        }
        for name in names {
            match &self.elements[name] {
                ContentModel::Text => writeln!(f, "Element {name}(#PCDATA)")?,
                ContentModel::Children(ps) => {
                    let inner: Vec<String> = ps
                        .iter()
                        .map(|p| format!("{}{}", p.name, p.occurrence.marker()))
                        .collect();
                    writeln!(f, "Element {name}({})", inner.join(", "))?;
                }
            }
        }
        Ok(())
    }
}

/// The Berkeley peer schema of Figure 3, verbatim.
pub fn berkeley_schema() -> Dtd {
    Dtd::parse(
        "Element schedule(college*)\n\
         Element college(name, dept*)\n\
         Element dept(name, course*)\n\
         Element course(title, size)\n\
         Element name(#PCDATA)\n\
         Element title(#PCDATA)\n\
         Element size(#PCDATA)",
    )
    .expect("static schema parses")
}

/// The MIT peer schema of Figure 3, verbatim.
pub fn mit_schema() -> Dtd {
    Dtd::parse(
        "Element catalog(course*)\n\
         Element course(name, subject*)\n\
         Element subject(title, enrollment)\n\
         Element name(#PCDATA)\n\
         Element title(#PCDATA)\n\
         Element enrollment(#PCDATA)",
    )
    .expect("static schema parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn parses_figure3_notation() {
        let dtd = berkeley_schema();
        assert_eq!(dtd.root(), Some("schedule"));
        assert_eq!(
            dtd.model("college"),
            Some(&ContentModel::Children(vec![
                Particle { name: "name".into(), occurrence: Occurrence::One },
                Particle { name: "dept".into(), occurrence: Occurrence::Star },
            ]))
        );
        assert_eq!(dtd.model("title"), Some(&ContentModel::Text));
    }

    #[test]
    fn display_roundtrips() {
        let dtd = mit_schema();
        let again = Dtd::parse(&dtd.to_string()).unwrap();
        assert_eq!(dtd, again);
    }

    #[test]
    fn validates_conforming_document() {
        let doc = parse(
            "<schedule><college><name>Berkeley</name>\
             <dept><name>History</name>\
             <course><title>Ancient Greece</title><size>40</size></course>\
             </dept></college></schedule>",
        )
        .unwrap();
        berkeley_schema().validate(&doc).unwrap();
    }

    #[test]
    fn rejects_wrong_root() {
        let doc = parse("<catalog/>").unwrap();
        assert!(matches!(
            berkeley_schema().validate(&doc).unwrap_err(),
            XmlError::Invalid { .. }
        ));
    }

    #[test]
    fn rejects_missing_required_child() {
        // course requires both title and size.
        let doc = parse(
            "<schedule><college><name>B</name><dept><name>H</name>\
             <course><title>X</title></course></dept></college></schedule>",
        )
        .unwrap();
        let err = berkeley_schema().validate(&doc).unwrap_err();
        assert!(err.to_string().contains("size"), "{err}");
    }

    #[test]
    fn rejects_undeclared_child() {
        let doc = parse("<schedule><bogus/></schedule>").unwrap();
        let err = berkeley_schema().validate(&doc).unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn rejects_text_in_element_content() {
        let doc = parse("<schedule>stray</schedule>").unwrap();
        assert!(berkeley_schema().validate(&doc).is_err());
    }

    #[test]
    fn star_allows_zero() {
        let doc = parse("<schedule/>").unwrap();
        berkeley_schema().validate(&doc).unwrap();
    }

    #[test]
    fn plus_requires_one() {
        let dtd = Dtd::parse("Element a(b+)\nElement b(#PCDATA)").unwrap();
        assert!(dtd.validate(&parse("<a/>").unwrap()).is_err());
        dtd.validate(&parse("<a><b>x</b></a>").unwrap()).unwrap();
    }

    #[test]
    fn optional_rejects_two() {
        let dtd = Dtd::parse("Element a(b?)\nElement b(#PCDATA)").unwrap();
        assert!(dtd.validate(&parse("<a><b/><b/></a>").unwrap()).is_err());
    }

    #[test]
    fn bad_dtd_errors() {
        assert!(Dtd::parse("Elem a(b)").is_err());
        assert!(Dtd::parse("Element a b)").is_err());
        assert!(Dtd::parse("").is_err());
    }
}
