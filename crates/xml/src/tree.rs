//! Arena-backed XML document tree.
//!
//! All nodes of a [`Document`] live in one `Vec`; a [`NodeId`] is an index
//! into it. This gives cheap cloning of ids, cache-friendly traversal, and
//! no reference-counted cycles — the idiom the rest of the workspace follows
//! for trees and graphs.

use std::fmt;

/// Identifier of a node within one [`Document`].
///
/// Ids are only meaningful for the document that created them; using an id
/// from another document yields unspecified (but memory-safe) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The index of this node in its document's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The payload of a node: an element with a name and attributes, or a run
/// of character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node such as `<course size="30">`.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
    },
    /// A text node. Adjacent text is merged by the parser.
    Text(String),
}

/// One node of the arena: payload plus tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// Element or text payload.
    pub kind: NodeKind,
    /// Parent node, `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order (empty for text nodes).
    pub children: Vec<NodeId>,
}

/// An XML document: a root element plus the arena of all its nodes.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Create a document whose root element has the given tag name.
    pub fn new(root_name: impl Into<String>) -> Self {
        let root = Node {
            kind: NodeKind::Element { name: root_name.into(), attrs: Vec::new() },
            parent: None,
            children: Vec::new(),
        };
        Document { nodes: vec![root], root: NodeId(0) }
    }

    /// The root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements and text runs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds only its root element with no content.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].children.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Append a child element under `parent` and return its id.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        self.push_node(
            parent,
            NodeKind::Element { name: name.into(), attrs: Vec::new() },
        )
    }

    /// Append a text node under `parent` and return its id.
    ///
    /// If the last child of `parent` is already a text node the runs are
    /// merged, preserving the invariant that no two text siblings are
    /// adjacent.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let text = text.into();
        if let Some(&last) = self.nodes[parent.index()].children.last() {
            if let NodeKind::Text(existing) = &mut self.nodes[last.index()].kind {
                existing.push_str(&text);
                return last;
            }
        }
        self.push_node(parent, NodeKind::Text(text))
    }

    /// Set (or overwrite) an attribute on an element node.
    ///
    /// # Panics
    /// Panics if `id` is a text node.
    pub fn set_attr(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attrs, .. } => {
                if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = value.into();
                } else {
                    attrs.push((name, value.into()));
                }
            }
            NodeKind::Text(_) => panic!("set_attr on text node {id}"),
        }
    }

    fn push_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, parent: Some(parent), children: Vec::new() });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Tag name of an element node, or `None` for text nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            NodeKind::Text(_) => None,
        }
    }

    /// Attribute value on an element node, if present.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attrs, .. } => {
                attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
            }
            NodeKind::Text(_) => None,
        }
    }

    /// Children of a node in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// Child *elements* of a node in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(|&c| matches!(self.node(c).kind, NodeKind::Element { .. }))
    }

    /// First child element with the given tag name.
    pub fn child_named(&self, id: NodeId, name: &str) -> Option<NodeId> {
        self.child_elements(id).find(|&c| self.name(c) == Some(name))
    }

    /// The concatenation of all text beneath `id` (the XPath `string()`
    /// value).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Element { .. } => {
                for &c in self.children(id) {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Pre-order traversal of the subtree rooted at `id` (including `id`).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push in reverse so children are visited in document order.
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Depth of a node (root is 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Structural equality between two documents, ignoring node ids and
    /// attribute order.
    pub fn structurally_eq(&self, other: &Document) -> bool {
        fn eq(a: &Document, an: NodeId, b: &Document, bn: NodeId) -> bool {
            match (&a.node(an).kind, &b.node(bn).kind) {
                (NodeKind::Text(x), NodeKind::Text(y)) => x == y,
                (
                    NodeKind::Element { name: nx, attrs: ax },
                    NodeKind::Element { name: ny, attrs: ay },
                ) => {
                    if nx != ny || ax.len() != ay.len() {
                        return false;
                    }
                    let mut sx: Vec<_> = ax.clone();
                    let mut sy: Vec<_> = ay.clone();
                    sx.sort();
                    sy.sort();
                    if sx != sy {
                        return false;
                    }
                    let ca = a.children(an);
                    let cb = b.children(bn);
                    ca.len() == cb.len()
                        && ca.iter().zip(cb).all(|(&x, &y)| eq(a, x, b, y))
                }
                _ => false,
            }
        }
        eq(self, self.root(), other, other.root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut d = Document::new("catalog");
        let course = d.add_element(d.root(), "course");
        d.set_attr(course, "id", "cse444");
        let title = d.add_element(course, "title");
        d.add_text(title, "Databases");
        d
    }

    #[test]
    fn build_and_navigate() {
        let d = sample();
        assert_eq!(d.name(d.root()), Some("catalog"));
        let course = d.child_named(d.root(), "course").unwrap();
        assert_eq!(d.attr(course, "id"), Some("cse444"));
        let title = d.child_named(course, "title").unwrap();
        assert_eq!(d.text_content(title), "Databases");
        assert_eq!(d.depth(title), 2);
    }

    #[test]
    fn adjacent_text_merges() {
        let mut d = Document::new("r");
        let a = d.add_text(d.root(), "foo");
        let b = d.add_text(d.root(), "bar");
        assert_eq!(a, b);
        assert_eq!(d.text_content(d.root()), "foobar");
        assert_eq!(d.children(d.root()).len(), 1);
    }

    #[test]
    fn set_attr_overwrites() {
        let mut d = Document::new("r");
        d.set_attr(d.root(), "k", "1");
        d.set_attr(d.root(), "k", "2");
        assert_eq!(d.attr(d.root(), "k"), Some("2"));
    }

    #[test]
    fn descendants_in_document_order() {
        let d = sample();
        let names: Vec<_> = d
            .descendants(d.root())
            .into_iter()
            .map(|n| d.name(n).unwrap_or("#text").to_string())
            .collect();
        assert_eq!(names, vec!["catalog", "course", "title", "#text"]);
    }

    #[test]
    fn structural_equality_ignores_attr_order() {
        let mut a = Document::new("r");
        a.set_attr(a.root(), "x", "1");
        a.set_attr(a.root(), "y", "2");
        let mut b = Document::new("r");
        b.set_attr(b.root(), "y", "2");
        b.set_attr(b.root(), "x", "1");
        assert!(a.structurally_eq(&b));
        b.set_attr(b.root(), "x", "9");
        assert!(!a.structurally_eq(&b));
    }

    #[test]
    fn text_content_concatenates_subtree() {
        let d = sample();
        assert_eq!(d.text_content(d.root()), "Databases");
    }

    #[test]
    fn is_empty_only_for_bare_root() {
        let d = Document::new("r");
        assert!(d.is_empty());
        assert!(!sample().is_empty());
    }
}
