//! Serialization of [`Document`]s back to XML text.

use crate::tree::{Document, NodeId, NodeKind};
use std::fmt::Write as _;

/// Serialize a document compactly (no added whitespace).
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, doc.root(), &mut out, None, 0);
    out
}

/// Serialize a document with two-space indentation.
///
/// Elements with mixed content (text children) are kept on one line so the
/// text value is not perturbed by indentation.
pub fn to_pretty_string(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, doc.root(), &mut out, Some(2), 0);
    out.push('\n');
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String, indent: Option<usize>, depth: usize) {
    match &doc.node(id).kind {
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Element { name, attrs } => {
            if let Some(step) = indent {
                if depth > 0 {
                    out.push('\n');
                    for _ in 0..depth * step {
                        out.push(' ');
                    }
                }
            }
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                let _ = write!(out, " {}=\"{}\"", k, escape_attr(v));
            }
            let kids = doc.children(id);
            if kids.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let mixed = kids
                .iter()
                .any(|&k| matches!(doc.node(k).kind, NodeKind::Text(_)));
            let child_indent = if mixed { None } else { indent };
            for &k in kids {
                write_node(doc, k, out, child_indent, depth + 1);
            }
            if child_indent.is_some() {
                if let Some(step) = indent {
                    out.push('\n');
                    for _ in 0..depth * step {
                        out.push(' ');
                    }
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

/// Escape text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for a double-quoted attribute.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<catalog><course id="1"><title>DB &amp; IR</title></course></catalog>"#;
        let doc = parse(src).unwrap();
        assert_eq!(to_string(&doc), src);
    }

    #[test]
    fn pretty_print_indents_pure_element_content() {
        let doc = parse("<a><b><c>x</c></b></a>").unwrap();
        let pretty = to_pretty_string(&doc);
        assert!(pretty.contains("\n  <b>"));
        assert!(pretty.contains("<c>x</c>"));
        // Pretty output reparses to the same tree.
        assert!(parse(&pretty).unwrap().structurally_eq(&doc));
    }

    #[test]
    fn escapes_attr_quotes() {
        let mut d = crate::tree::Document::new("a");
        d.set_attr(d.root(), "t", "say \"hi\" & <go>");
        let s = to_string(&d);
        assert_eq!(s, r#"<a t="say &quot;hi&quot; &amp; &lt;go>"/>"#);
        let back = parse(&s).unwrap();
        assert_eq!(back.attr(back.root(), "t"), Some("say \"hi\" & <go>"));
    }

    #[test]
    fn empty_elements_self_close() {
        let d = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&d), "<a><b/></a>");
    }
}
