//! The "limited path expressions" of the Piazza mapping language (§3.1.1).
//!
//! The paper's mapping language "supports hierarchical XML construction and
//! limited path expressions, but avoids most of the complex ... features of
//! XQuery". The grammar implemented here:
//!
//! ```text
//! path      := step+
//! step      := ('/' | '//') name predicate?
//! predicate := '[' name '=' '\'' literal '\'' ']'
//! ```
//!
//! A trailing `/text()` may be appended; it is consumed and recorded in
//! [`Path::returns_text`], and evaluation still returns the element nodes —
//! callers ask the document for text content, mirroring how Figure 4's
//! `$c/name/text()` bindings are consumed.

use crate::error::XmlError;
use crate::tree::{Document, NodeId};

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// `true` for `//name` (descendant-or-self), `false` for `/name` (child).
    pub descendant: bool,
    /// Element name to match.
    pub name: String,
    /// Optional `[child = 'value']` filter: keep nodes having a child
    /// element `child` whose text equals `value`.
    pub predicate: Option<(String, String)>,
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The steps in order.
    pub steps: Vec<Step>,
    /// Whether the expression ended in `/text()`.
    pub returns_text: bool,
}

impl Path {
    /// Parse a path expression such as `/schedule/college/dept`,
    /// `//course[title='Ancient Greece']` or `dept/course/title/text()`.
    ///
    /// A leading separator is optional: `a/b` is equivalent to `/a/b`
    /// relative to the context node.
    pub fn parse(src: &str) -> Result<Path, XmlError> {
        let src = src.trim();
        if src.is_empty() {
            return Err(XmlError::BadPath { message: "empty path".into() });
        }
        let mut rest = src;
        let mut steps = Vec::new();
        let mut returns_text = false;
        while !rest.is_empty() {
            let descendant = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                true
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                false
            } else if steps.is_empty() {
                false // implicit leading child step
            } else {
                return Err(XmlError::BadPath {
                    message: format!("expected '/' before {rest:?}"),
                });
            };
            let name_end = rest
                .find(['/', '['])
                .unwrap_or(rest.len());
            let name = &rest[..name_end];
            rest = &rest[name_end..];
            if name == "text()" {
                if !rest.is_empty() {
                    return Err(XmlError::BadPath {
                        message: "text() must be the final step".into(),
                    });
                }
                if steps.is_empty() {
                    return Err(XmlError::BadPath {
                        message: "text() needs a preceding step".into(),
                    });
                }
                returns_text = true;
                break;
            }
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
            {
                return Err(XmlError::BadPath {
                    message: format!("bad step name {name:?}"),
                });
            }
            let mut predicate = None;
            if let Some(r) = rest.strip_prefix('[') {
                let close = r.find(']').ok_or_else(|| XmlError::BadPath {
                    message: "unclosed predicate".into(),
                })?;
                let body = &r[..close];
                rest = &r[close + 1..];
                let eq = body.find('=').ok_or_else(|| XmlError::BadPath {
                    message: format!("predicate {body:?} lacks '='"),
                })?;
                let child = body[..eq].trim().to_string();
                let value = body[eq + 1..].trim();
                let value = value
                    .strip_prefix('\'')
                    .and_then(|v| v.strip_suffix('\''))
                    .or_else(|| value.strip_prefix('"').and_then(|v| v.strip_suffix('"')))
                    .ok_or_else(|| XmlError::BadPath {
                        message: format!("predicate value in {body:?} must be quoted"),
                    })?;
                predicate = Some((child, value.to_string()));
            }
            steps.push(Step {
                descendant,
                name: name.to_string(),
                predicate,
            });
        }
        if steps.is_empty() {
            return Err(XmlError::BadPath { message: "no steps".into() });
        }
        Ok(Path { steps, returns_text })
    }

    /// Evaluate against `doc`, starting from `context`.
    ///
    /// The first step matches children of `context` — except when `context`
    /// is the root element and the step names the root itself, in which case
    /// it matches the root (so absolute paths like `/schedule/college` work
    /// when evaluated from the root, matching XPath's document-node
    /// behaviour). Results are in document order without duplicates.
    pub fn eval(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        let mut current = vec![context];
        for (i, step) in self.steps.iter().enumerate() {
            let mut next = Vec::new();
            for &node in &current {
                if step.descendant {
                    for d in doc.descendants(node) {
                        if d != node && doc.name(d) == Some(&step.name) {
                            next.push(d);
                        }
                    }
                    // descendant-or-self: the context itself may match.
                    if doc.name(node) == Some(&step.name) {
                        next.push(node);
                    }
                } else {
                    // Absolute-path convenience on the first step.
                    if i == 0 && node == doc.root() && doc.name(node) == Some(&step.name) {
                        next.push(node);
                    }
                    for c in doc.child_elements(node) {
                        if doc.name(c) == Some(&step.name) {
                            next.push(c);
                        }
                    }
                }
            }
            if let Some((child, value)) = &step.predicate {
                next.retain(|&n| {
                    doc.child_named(n, child)
                        .map(|c| doc.text_content(c) == *value)
                        .unwrap_or(false)
                });
            }
            next.sort();
            next.dedup();
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Evaluate and return the text content of each hit.
    pub fn eval_text(&self, doc: &Document, context: NodeId) -> Vec<String> {
        self.eval(doc, context)
            .into_iter()
            .map(|n| doc.text_content(n))
            .collect()
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if s.descendant {
                write!(f, "//{}", s.name)?;
            } else if i == 0 {
                write!(f, "{}", s.name)?;
            } else {
                write!(f, "/{}", s.name)?;
            }
            if let Some((c, v)) = &s.predicate {
                write!(f, "[{c}='{v}']")?;
            }
        }
        if self.returns_text {
            write!(f, "/text()")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn berkeley_doc() -> Document {
        parse(
            "<schedule>\
               <college><name>Berkeley</name>\
                 <dept><name>History</name>\
                   <course><title>Ancient Greece</title><size>40</size></course>\
                   <course><title>Rome</title><size>25</size></course>\
                 </dept>\
                 <dept><name>CS</name>\
                   <course><title>Databases</title><size>120</size></course>\
                 </dept>\
               </college>\
             </schedule>",
        )
        .unwrap()
    }

    #[test]
    fn child_steps() {
        let d = berkeley_doc();
        let p = Path::parse("/schedule/college/dept").unwrap();
        assert_eq!(p.eval(&d, d.root()).len(), 2);
    }

    #[test]
    fn descendant_step() {
        let d = berkeley_doc();
        let p = Path::parse("//course").unwrap();
        assert_eq!(p.eval(&d, d.root()).len(), 3);
    }

    #[test]
    fn descendant_mid_path() {
        let d = berkeley_doc();
        let p = Path::parse("/schedule//title").unwrap();
        assert_eq!(p.eval_text(&d, d.root()), vec!["Ancient Greece", "Rome", "Databases"]);
    }

    #[test]
    fn predicate_filters() {
        let d = berkeley_doc();
        let p = Path::parse("//dept[name='History']/course/title").unwrap();
        assert_eq!(p.eval_text(&d, d.root()), vec!["Ancient Greece", "Rome"]);
    }

    #[test]
    fn text_suffix_recorded() {
        let p = Path::parse("dept/name/text()").unwrap();
        assert!(p.returns_text);
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn relative_eval_from_inner_node() {
        let d = berkeley_doc();
        let dept = Path::parse("//dept").unwrap().eval(&d, d.root())[0];
        let titles = Path::parse("course/title").unwrap().eval_text(&d, dept);
        assert_eq!(titles, vec!["Ancient Greece", "Rome"]);
    }

    #[test]
    fn display_roundtrips() {
        for src in ["/a/b//c", "a/b[t='x y']/c/text()", "//q"] {
            let p = Path::parse(src).unwrap();
            let again = Path::parse(&p.to_string()).unwrap();
            assert_eq!(p, again, "{src}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("a/[x='1']").is_err());
        assert!(Path::parse("a[t=unquoted]").is_err());
        assert!(Path::parse("a[t='v'").is_err());
        assert!(Path::parse("text()").is_err());
        assert!(Path::parse("a/text()/b").is_err());
    }

    #[test]
    fn no_duplicate_results() {
        let d = parse("<a><a><a/></a></a>").unwrap();
        let p = Path::parse("//a").unwrap();
        let hits = p.eval(&d, d.root());
        let mut uniq = hits.clone();
        uniq.dedup();
        assert_eq!(hits, uniq);
        assert_eq!(hits.len(), 3);
    }
}
