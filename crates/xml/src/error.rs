//! Error type shared by the XML parser, DTD machinery and path language.

use std::fmt;

/// An error raised while parsing or validating XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The parser hit end-of-input while still expecting content.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A character that is illegal at the current position.
    UnexpectedChar {
        /// Byte offset into the input.
        pos: usize,
        /// The offending character.
        found: char,
        /// What was expected instead.
        expected: &'static str,
    },
    /// A closing tag did not match the innermost open tag.
    MismatchedTag {
        /// Byte offset of the closing tag.
        pos: usize,
        /// Name of the element that is open.
        open: String,
        /// Name found in the closing tag.
        close: String,
    },
    /// An entity reference (`&name;`) that is not one of the five
    /// predefined entities and not a numeric character reference.
    UnknownEntity {
        /// Byte offset of the `&`.
        pos: usize,
        /// The entity name as written.
        name: String,
    },
    /// The same attribute appeared twice on one element.
    DuplicateAttribute {
        /// Byte offset of the second occurrence.
        pos: usize,
        /// The attribute name.
        name: String,
    },
    /// Trailing non-whitespace content after the document element.
    TrailingContent {
        /// Byte offset where the trailing content starts.
        pos: usize,
    },
    /// The document had no root element at all.
    EmptyDocument,
    /// A DTD declaration could not be parsed.
    BadDtd {
        /// Human-readable description of the problem.
        message: String,
    },
    /// A document failed validation against a DTD.
    Invalid {
        /// Name of the element whose content was invalid.
        element: String,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A path expression could not be parsed.
    BadPath {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::UnexpectedChar { pos, found, expected } => {
                write!(f, "unexpected character {found:?} at byte {pos}, expected {expected}")
            }
            XmlError::MismatchedTag { pos, open, close } => {
                write!(f, "closing tag </{close}> at byte {pos} does not match open <{open}>")
            }
            XmlError::UnknownEntity { pos, name } => {
                write!(f, "unknown entity &{name}; at byte {pos}")
            }
            XmlError::DuplicateAttribute { pos, name } => {
                write!(f, "duplicate attribute {name:?} at byte {pos}")
            }
            XmlError::TrailingContent { pos } => {
                write!(f, "content after document element at byte {pos}")
            }
            XmlError::EmptyDocument => write!(f, "document has no root element"),
            XmlError::BadDtd { message } => write!(f, "bad DTD: {message}"),
            XmlError::Invalid { element, message } => {
                write!(f, "element <{element}> invalid: {message}")
            }
            XmlError::BadPath { message } => write!(f, "bad path expression: {message}"),
        }
    }
}

impl std::error::Error for XmlError {}
