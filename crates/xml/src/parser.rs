//! A from-scratch XML parser for the subset REVERE uses.
//!
//! Supported: elements, attributes (single- or double-quoted), text,
//! comments, an optional `<?xml ...?>` prolog, CDATA sections, the five
//! predefined entities (`&lt; &gt; &amp; &quot; &apos;`) and decimal /
//! hexadecimal character references. Not supported (and not needed by the
//! paper's workloads): external DTD subsets, processing instructions other
//! than the prolog, and namespaces (colons are treated as ordinary name
//! characters, which is how the paper's `mg:tag`-style names behave here).

use crate::error::XmlError;
use crate::tree::{Document, NodeId, NodeKind};

/// Parse a complete XML document.
///
/// Whitespace-only text between elements is preserved only when the element
/// has mixed content; purely structural whitespace (runs of whitespace whose
/// siblings are all elements) is dropped, matching what the paper's mapping
/// examples expect.
pub fn parse(input: &str) -> Result<Document, XmlError> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    p.skip_prolog_and_misc()?;
    if p.eof() {
        return Err(XmlError::EmptyDocument);
    }
    let doc = p.parse_root()?;
    p.skip_misc()?;
    if !p.eof() {
        return Err(XmlError::TrailingContent { pos: p.pos });
    }
    Ok(strip_structural_whitespace(doc))
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, expected: &'static str) -> Result<(), XmlError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(XmlError::UnexpectedChar {
                pos: self.pos,
                found: c as char,
                expected,
            }),
            None => Err(XmlError::UnexpectedEof { context: expected }),
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_prolog_and_misc(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            while !self.eof() && !self.starts_with("?>") {
                self.pos += 1;
            }
            if self.eof() {
                return Err(XmlError::UnexpectedEof { context: "XML prolog" });
            }
            self.pos += 2;
        }
        self.skip_misc()
    }

    /// Skip whitespace, comments and a DOCTYPE declaration.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>' (internal subsets use brackets).
                let mut depth = 0usize;
                while let Some(b) = self.bump() {
                    match b {
                        b'[' => depth += 1,
                        b']' => depth = depth.saturating_sub(1),
                        b'>' if depth == 0 => break,
                        _ => {}
                    }
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        debug_assert!(self.starts_with("<!--"));
        self.pos += 4;
        while !self.eof() && !self.starts_with("-->") {
            self.pos += 1;
        }
        if self.eof() {
            return Err(XmlError::UnexpectedEof { context: "comment" });
        }
        self.pos += 3;
        Ok(())
    }

    fn parse_root(&mut self) -> Result<Document, XmlError> {
        self.expect(b'<', "start of root element")?;
        let name = self.parse_name("root element name")?;
        let mut doc = Document::new(name);
        let root = doc.root();
        self.parse_attrs_and_content(&mut doc, root)?;
        Ok(doc)
    }

    fn parse_name(&mut self, context: &'static str) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return match self.peek() {
                Some(c) => Err(XmlError::UnexpectedChar {
                    pos: self.pos,
                    found: c as char,
                    expected: context,
                }),
                None => Err(XmlError::UnexpectedEof { context }),
            };
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// After `<name` has been consumed: parse attributes, then either `/>`
    /// or `>` children `</name>`.
    fn parse_attrs_and_content(
        &mut self,
        doc: &mut Document,
        node: NodeId,
    ) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>', "'>' of empty-element tag")?;
                    return Ok(());
                }
                Some(b'>') => {
                    self.pos += 1;
                    return self.parse_children(doc, node);
                }
                Some(_) => {
                    let apos = self.pos;
                    let name = self.parse_name("attribute name")?;
                    self.skip_ws();
                    self.expect(b'=', "'=' after attribute name")?;
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ (b'"' | b'\'')) => q,
                        Some(c) => {
                            return Err(XmlError::UnexpectedChar {
                                pos: self.pos - 1,
                                found: c as char,
                                expected: "quote starting attribute value",
                            })
                        }
                        None => {
                            return Err(XmlError::UnexpectedEof { context: "attribute value" })
                        }
                    };
                    let mut value = String::new();
                    loop {
                        match self.peek() {
                            Some(q) if q == quote => {
                                self.pos += 1;
                                break;
                            }
                            Some(b'&') => value.push(self.parse_entity()?),
                            Some(_) => {
                                let (ch, len) = self.decode_char()?;
                                value.push(ch);
                                self.pos += len;
                            }
                            None => {
                                return Err(XmlError::UnexpectedEof {
                                    context: "attribute value",
                                })
                            }
                        }
                    }
                    if doc.attr(node, &name).is_some() {
                        return Err(XmlError::DuplicateAttribute { pos: apos, name });
                    }
                    doc.set_attr(node, name, value);
                }
                None => return Err(XmlError::UnexpectedEof { context: "element tag" }),
            }
        }
    }

    fn parse_children(&mut self, doc: &mut Document, node: NodeId) -> Result<(), XmlError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(XmlError::UnexpectedEof { context: "element content" }),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                        continue;
                    }
                    if self.starts_with("<![CDATA[") {
                        self.pos += 9;
                        let start = self.pos;
                        while !self.eof() && !self.starts_with("]]>") {
                            self.pos += 1;
                        }
                        if self.eof() {
                            return Err(XmlError::UnexpectedEof { context: "CDATA section" });
                        }
                        text.push_str(&String::from_utf8_lossy(&self.input[start..self.pos]));
                        self.pos += 3;
                        continue;
                    }
                    if !text.is_empty() {
                        doc.add_text(node, std::mem::take(&mut text));
                    }
                    if self.starts_with("</") {
                        self.pos += 2;
                        let cpos = self.pos;
                        let close = self.parse_name("closing tag name")?;
                        self.skip_ws();
                        self.expect(b'>', "'>' of closing tag")?;
                        let open = doc.name(node).unwrap_or_default().to_string();
                        if close != open {
                            return Err(XmlError::MismatchedTag { pos: cpos, open, close });
                        }
                        return Ok(());
                    }
                    self.pos += 1; // consume '<'
                    let name = self.parse_name("element name")?;
                    let child = doc.add_element(node, name);
                    self.parse_attrs_and_content(doc, child)?;
                }
                Some(b'&') => text.push(self.parse_entity()?),
                Some(_) => {
                    let (ch, len) = self.decode_char()?;
                    text.push(ch);
                    self.pos += len;
                }
            }
        }
    }

    /// Decode the (possibly multi-byte UTF-8) character at the cursor,
    /// returning it with its byte length. Invalid UTF-8 becomes U+FFFD.
    fn decode_char(&self) -> Result<(char, usize), XmlError> {
        let rest = &self.input[self.pos..];
        match std::str::from_utf8(&rest[..rest.len().min(4)]) {
            Ok(s) => {
                let ch = s.chars().next().expect("non-empty by construction");
                Ok((ch, ch.len_utf8()))
            }
            Err(e) if e.valid_up_to() > 0 => {
                let s = std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated prefix");
                let ch = s.chars().next().expect("non-empty");
                Ok((ch, ch.len_utf8()))
            }
            Err(_) => Ok(('\u{FFFD}', 1)),
        }
    }

    /// Parse `&...;` at the cursor into the character it denotes.
    fn parse_entity(&mut self) -> Result<char, XmlError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let mut name = String::new();
        loop {
            match self.bump() {
                Some(b';') => break,
                Some(b) if name.len() < 12 => name.push(b as char),
                Some(_) => {
                    return Err(XmlError::UnknownEntity { pos: start, name });
                }
                None => return Err(XmlError::UnexpectedEof { context: "entity reference" }),
            }
        }
        match name.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            _ => {
                let code = if let Some(hex) = name.strip_prefix("#x").or(name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                code.and_then(char::from_u32)
                    .ok_or(XmlError::UnknownEntity { pos: start, name })
            }
        }
    }
}

/// Drop whitespace-only text nodes whose siblings are all elements.
fn strip_structural_whitespace(doc: Document) -> Document {
    fn copy(
        src: &Document,
        src_node: NodeId,
        dst: &mut Document,
        dst_node: NodeId,
    ) {
        let kids = src.children(src_node);
        let has_real_text = kids.iter().any(|&k| match &src.node(k).kind {
            NodeKind::Text(t) => !t.trim().is_empty(),
            NodeKind::Element { .. } => false,
        });
        for &k in kids {
            match &src.node(k).kind {
                NodeKind::Text(t) => {
                    if has_real_text {
                        dst.add_text(dst_node, t.clone());
                    }
                }
                NodeKind::Element { name, attrs } => {
                    let child = dst.add_element(dst_node, name.clone());
                    for (a, v) in attrs {
                        dst.set_attr(child, a.clone(), v.clone());
                    }
                    copy(src, k, dst, child);
                }
            }
        }
    }
    let mut out = Document::new(doc.name(doc.root()).unwrap_or("root").to_string());
    let root = out.root();
    if let NodeKind::Element { attrs, .. } = &doc.node(doc.root()).kind {
        for (a, v) in attrs {
            out.set_attr(root, a.clone(), v.clone());
        }
    }
    copy(&doc, doc.root(), &mut out, root);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let d = parse("<a><b><c>x</c></b></a>").unwrap();
        let b = d.child_named(d.root(), "b").unwrap();
        let c = d.child_named(b, "c").unwrap();
        assert_eq!(d.text_content(c), "x");
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let d = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(d.attr(d.root(), "x"), Some("1"));
        assert_eq!(d.attr(d.root(), "y"), Some("two"));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err, XmlError::DuplicateAttribute { .. }));
    }

    #[test]
    fn decodes_entities_and_char_refs() {
        let d = parse("<a>&lt;&amp;&gt; &#65;&#x42;</a>").unwrap();
        assert_eq!(d.text_content(d.root()), "<&> AB");
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(matches!(
            parse("<a>&nope;</a>").unwrap_err(),
            XmlError::UnknownEntity { .. }
        ));
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(matches!(
            parse("<a><b></a></b>").unwrap_err(),
            XmlError::MismatchedTag { .. }
        ));
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(matches!(
            parse("<a/>junk").unwrap_err(),
            XmlError::TrailingContent { .. }
        ));
    }

    #[test]
    fn allows_prolog_doctype_and_comments() {
        let d = parse(
            "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a (#PCDATA)>]>\n<!-- hi --><a>ok</a><!-- bye -->",
        )
        .unwrap();
        assert_eq!(d.text_content(d.root()), "ok");
    }

    #[test]
    fn cdata_is_literal_text() {
        let d = parse("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        assert_eq!(d.text_content(d.root()), "<raw> & stuff");
    }

    #[test]
    fn structural_whitespace_is_dropped_mixed_content_kept() {
        let d = parse("<a>\n  <b>x</b>\n  <b>y</b>\n</a>").unwrap();
        assert_eq!(d.children(d.root()).len(), 2);
        let m = parse("<a>hello <b>world</b>!</a>").unwrap();
        assert_eq!(m.children(m.root()).len(), 3);
    }

    #[test]
    fn empty_document_is_an_error() {
        assert_eq!(parse("   ").unwrap_err(), XmlError::EmptyDocument);
    }

    #[test]
    fn unicode_text_roundtrips() {
        let d = parse("<a>café — 北京</a>").unwrap();
        assert_eq!(d.text_content(d.root()), "café — 北京");
    }
}
