//! Conjunctive queries and unions of conjunctive queries.

use revere_storage::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable, conventionally capitalized (`X`, `Title`).
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// True if this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `relation(t1, ..., tn)`.
///
/// In the PDMS, relation names are qualified with their peer
/// (`Berkeley.course`); this crate treats names as opaque strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Shorthand constructor.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom { relation: relation.into(), terms }
    }

    /// The variables occurring in this atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators for filter predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to two values.
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A comparison `left op right` in a query body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Comparison {
    /// Left operand.
    pub left: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Term,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A conjunctive query `head :- body, comparisons`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// Head atom (the answer relation).
    pub head: Atom,
    /// Relational subgoals.
    pub body: Vec<Atom>,
    /// Filter comparisons.
    pub comparisons: Vec<Comparison>,
}

impl ConjunctiveQuery {
    /// Build a comparison-free query.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        ConjunctiveQuery { head, body, comparisons: Vec::new() }
    }

    /// Head (distinguished) variables, in head order with duplicates kept.
    pub fn head_vars(&self) -> Vec<&str> {
        self.head.terms.iter().filter_map(Term::as_var).collect()
    }

    /// All variables occurring in the body, in first-occurrence order.
    pub fn body_vars(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.body {
            for v in a.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Variables that occur in the body but not the head (existential).
    pub fn existential_vars(&self) -> Vec<&str> {
        let head: BTreeSet<&str> = self.head_vars().into_iter().collect();
        self.body_vars().into_iter().filter(|v| !head.contains(v)).collect()
    }

    /// Safety: every head variable and every comparison variable occurs in
    /// some relational subgoal.
    pub fn is_safe(&self) -> bool {
        let body: BTreeSet<&str> = self.body_vars().into_iter().collect();
        let head_ok = self.head_vars().iter().all(|v| body.contains(v));
        let cmp_ok = self.comparisons.iter().all(|c| {
            [&c.left, &c.right]
                .iter()
                .filter_map(|t| t.as_var())
                .all(|v| body.contains(v))
        });
        head_ok && cmp_ok
    }

    /// Consistently rename every variable with the given prefix; used to
    /// freshen view/mapping definitions before unification.
    pub fn rename_vars(&self, prefix: &str) -> ConjunctiveQuery {
        let ren = |t: &Term| match t {
            Term::Var(v) => Term::Var(format!("{prefix}{v}")),
            c @ Term::Const(_) => c.clone(),
        };
        ConjunctiveQuery {
            head: Atom::new(
                self.head.relation.clone(),
                self.head.terms.iter().map(ren).collect(),
            ),
            body: self
                .body
                .iter()
                .map(|a| Atom::new(a.relation.clone(), a.terms.iter().map(ren).collect()))
                .collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| Comparison { left: ren(&c.left), op: c.op, right: ren(&c.right) })
                .collect(),
        }
    }

    /// The canonical ordering of the body: indices into `body` sorted by
    /// (relation, printed shape). Two queries with equal
    /// [`ConjunctiveQuery::canonical_key`] have structurally identical
    /// bodies *position by position* under this ordering, which is what
    /// lets a cached [plan](crate::plan) built for one disjunct execute an
    /// isomorphic one.
    pub fn canonical_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.body.len()).collect();
        idx.sort_by(|&a, &b| {
            let (a, b) = (&self.body[a], &self.body[b]);
            a.relation
                .cmp(&b.relation)
                .then_with(|| format!("{a}").cmp(&format!("{b}")))
        });
        idx
    }

    /// A canonical textual form invariant under variable renaming and body
    /// reordering — used by the reformulator's visited-set pruning and as
    /// the cache key of the PDMS reformulation/plan caches.
    pub fn canonical_key(&self) -> String {
        // Sort body atoms canonically, then rename variables in order of
        // first appearance across head-then-sorted-body.
        let body: Vec<&Atom> = self.canonical_order().into_iter().map(|i| &self.body[i]).collect();
        let mut names: std::collections::HashMap<String, String> = Default::default();
        let mut next = 0usize;
        let mut key = String::new();
        let mut emit = |t: &Term,
                        names: &mut std::collections::HashMap<String, String>,
                        key: &mut String| match t {
            Term::Var(v) => {
                let n = names.entry(v.clone()).or_insert_with(|| {
                    next += 1;
                    format!("v{next}")
                });
                key.push_str(n);
            }
            Term::Const(c) => key.push_str(&format!("#{c}")),
        };
        key.push_str(&self.head.relation);
        key.push('(');
        for t in &self.head.terms {
            emit(t, &mut names, &mut key);
            key.push(',');
        }
        key.push_str("):-");
        for a in body {
            key.push_str(&a.relation);
            key.push('(');
            for t in &a.terms {
                emit(t, &mut names, &mut key);
                key.push(',');
            }
            key.push(')');
        }
        // Comparisons go through the same renaming (a raw `to_string`
        // here would leak the original variable names, breaking the
        // renaming invariance the reformulation/plan caches key on).
        let canon_term = |t: &Term, names: &std::collections::HashMap<String, String>| match t {
            // Safety guarantees comparison variables are body-bound, so
            // every variable already has a canonical name by now.
            Term::Var(v) => names.get(v).cloned().unwrap_or_else(|| v.clone()),
            Term::Const(c) => format!("#{c}"),
        };
        let mut cmps: Vec<String> = self
            .comparisons
            .iter()
            .map(|c| format!("{} {} {}", canon_term(&c.left, &names), c.op, canon_term(&c.right, &names)))
            .collect();
        cmps.sort();
        for c in cmps {
            key.push('|');
            key.push_str(&c);
        }
        key
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        let mut first = true;
        for a in &self.body {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        for c in &self.comparisons {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

/// A union of conjunctive queries with compatible heads — the shape a PDMS
/// reformulation takes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnionQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Wrap a single query.
    pub fn single(q: ConjunctiveQuery) -> Self {
        UnionQuery { disjuncts: vec![q] }
    }

    /// Add a disjunct unless an equivalent one (up to renaming/reordering)
    /// is already present.
    pub fn push_dedup(&mut self, q: ConjunctiveQuery) {
        let key = q.canonical_key();
        if !self.disjuncts.iter().any(|d| d.canonical_key() == key) {
            self.disjuncts.push(q);
        }
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// True when there are no disjuncts (the empty query).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    #[test]
    fn safety() {
        let q = parse_query("q(X) :- r(X, Y)").unwrap();
        assert!(q.is_safe());
        let bad = ConjunctiveQuery::new(
            Atom::new("q", vec![Term::var("Z")]),
            vec![Atom::new("r", vec![Term::var("X")])],
        );
        assert!(!bad.is_safe());
    }

    #[test]
    fn existential_vars() {
        let q = parse_query("q(X) :- r(X, Y), s(Y, Z)").unwrap();
        assert_eq!(q.existential_vars(), vec!["Y", "Z"]);
    }

    #[test]
    fn canonical_key_invariant_under_renaming_and_reordering() {
        let a = parse_query("q(X) :- r(X, Y), s(Y)").unwrap();
        let b = parse_query("q(A) :- s(B), r(A, B)").unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        let c = parse_query("q(A) :- s(A), r(A, B)").unwrap();
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn canonical_key_renames_comparison_variables_too() {
        let a = parse_query("q(X) :- r(X, Y), Y > 20").unwrap();
        let b = parse_query("q(A) :- r(A, B), B > 20").unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        let c = parse_query("q(A) :- r(A, B), A > 20").unwrap();
        assert_ne!(a.canonical_key(), c.canonical_key());
        // And the key carries no raw variable names at all.
        assert!(!a.canonical_key().contains('Y'), "{}", a.canonical_key());
    }

    #[test]
    fn union_dedups_renamed_duplicates() {
        let mut u = UnionQuery::default();
        u.push_dedup(parse_query("q(X) :- r(X, Y)").unwrap());
        u.push_dedup(parse_query("q(A) :- r(A, B)").unwrap());
        assert_eq!(u.len(), 1);
        u.push_dedup(parse_query("q(A) :- r(A, A)").unwrap());
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn rename_vars_leaves_constants() {
        let q = parse_query("q(X) :- r(X, 'fixed')").unwrap();
        let r = q.rename_vars("p_");
        assert_eq!(r.to_string(), "q(p_X) :- r(p_X, 'fixed')");
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let src = "q(X, Y) :- course(X, T), teaches(Y, X), T = 'db', X != Y";
        let q = parse_query(src).unwrap();
        let again = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, again);
    }
}
