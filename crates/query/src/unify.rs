//! Substitutions, atom unification and homomorphism search.
//!
//! Homomorphisms are the workhorse of the classical theory this crate
//! implements: containment mappings (containment module), unfolding
//! (unification of a goal with a view head) and MiniCon coverage all reduce
//! to finding structure-preserving variable mappings.

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Term};
use std::collections::HashMap;

/// A substitution from variable names to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: HashMap<String, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a variable.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    /// Bind `var` to `term`, following existing bindings of `term` if it is
    /// itself a bound variable. Returns `false` on conflict.
    pub fn bind(&mut self, var: &str, term: Term) -> bool {
        let resolved = self.resolve(&term);
        match self.map.get(var) {
            None => {
                self.map.insert(var.to_string(), resolved);
                true
            }
            Some(existing) => self.resolve(&existing.clone()) == resolved,
        }
    }

    /// Resolve a term through the substitution, chasing chains of variable
    /// bindings (a binding made *after* a term was stored can redirect it).
    pub fn resolve(&self, t: &Term) -> Term {
        let mut cur = t.clone();
        let mut steps = 0usize;
        while let Term::Var(v) = &cur {
            match self.map.get(v) {
                Some(next) if next != &cur => {
                    cur = next.clone();
                    steps += 1;
                    if steps > self.map.len() {
                        break; // defensive: should be unreachable
                    }
                }
                _ => break,
            }
        }
        cur
    }

    /// Apply to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom::new(a.relation.clone(), a.terms.iter().map(|t| self.resolve(t)).collect())
    }

    /// Apply to a comparison.
    pub fn apply_cmp(&self, c: &Comparison) -> Comparison {
        Comparison { left: self.resolve(&c.left), op: c.op, right: self.resolve(&c.right) }
    }

    /// Apply to a whole query.
    pub fn apply_query(&self, q: &ConjunctiveQuery) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self.apply_atom(&q.head),
            body: q.body.iter().map(|a| self.apply_atom(a)).collect(),
            comparisons: q.comparisons.iter().map(|c| self.apply_cmp(c)).collect(),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Unify two atoms symmetrically (classic MGU restricted to flat terms).
/// Both sides' variables may be bound. Returns the extended substitution,
/// or `None` if the atoms cannot be unified.
pub fn unify_atoms(a: &Atom, b: &Atom, base: &Subst) -> Option<Subst> {
    if a.relation != b.relation || a.terms.len() != b.terms.len() {
        return None;
    }
    let mut s = base.clone();
    for (ta, tb) in a.terms.iter().zip(&b.terms) {
        let ra = s.resolve(ta);
        let rb = s.resolve(tb);
        match (ra, rb) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return None;
                }
            }
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                if !s.bind(&v, t) {
                    return None;
                }
            }
        }
    }
    Some(s)
}

/// A *homomorphism* maps variables of the source atoms to terms such that
/// every source atom becomes (syntactically) one of the target atoms.
/// Unlike unification it is directional: target variables are treated as
/// constants.
///
/// Returns every homomorphism extending `base` (callers that only need
/// existence use [`find_homomorphism`]).
pub fn all_homomorphisms(source: &[Atom], target: &[Atom], base: &Subst) -> Vec<Subst> {
    let mut results = Vec::new();
    search(source, target, base.clone(), &mut results, None);
    results
}

/// Find one homomorphism from `source` into `target` extending `base`.
pub fn find_homomorphism(source: &[Atom], target: &[Atom], base: &Subst) -> Option<Subst> {
    let mut results = Vec::new();
    search(source, target, base.clone(), &mut results, Some(1));
    results.pop()
}

fn search(
    source: &[Atom],
    target: &[Atom],
    current: Subst,
    results: &mut Vec<Subst>,
    limit: Option<usize>,
) {
    if let Some(l) = limit {
        if results.len() >= l {
            return;
        }
    }
    let Some((first, rest)) = source.split_first() else {
        results.push(current);
        return;
    };
    for cand in target {
        if cand.relation != first.relation || cand.terms.len() != first.terms.len() {
            continue;
        }
        // Directional matching: source vars may bind; target terms are rigid.
        let mut s = current.clone();
        let mut ok = true;
        for (st, tt) in first.terms.iter().zip(&cand.terms) {
            match s.resolve(st) {
                Term::Const(c) => {
                    if Term::Const(c) != *tt {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => {
                    if !s.bind(&v, tt.clone()) {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok {
            search(rest, target, s, results, limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use revere_storage::Value;

    fn atoms(src: &str) -> Vec<Atom> {
        parse_query(&format!("q() :- {src}")).unwrap().body
    }

    #[test]
    fn unify_binds_both_sides() {
        let a = atoms("r(X, 'c')")[0].clone();
        let b = atoms("r('d', Y)")[0].clone();
        let s = unify_atoms(&a, &b, &Subst::new()).unwrap();
        assert_eq!(s.resolve(&Term::var("X")), Term::Const(Value::str("d")));
        assert_eq!(s.resolve(&Term::var("Y")), Term::Const(Value::str("c")));
    }

    #[test]
    fn unify_fails_on_constant_clash() {
        let a = atoms("r('x')")[0].clone();
        let b = atoms("r('y')")[0].clone();
        assert!(unify_atoms(&a, &b, &Subst::new()).is_none());
    }

    #[test]
    fn unify_fails_on_arity_or_name() {
        let a = atoms("r(X)")[0].clone();
        assert!(unify_atoms(&a, &atoms("s(X)")[0], &Subst::new()).is_none());
        assert!(unify_atoms(&a, &atoms("r(X, Y)")[0], &Subst::new()).is_none());
    }

    #[test]
    fn homomorphism_respects_repeated_vars() {
        // r(X, X) maps into r(a, a) but not r(a, b).
        let src = atoms("r(X, X)");
        assert!(find_homomorphism(&src, &atoms("r('a', 'a')"), &Subst::new()).is_some());
        assert!(find_homomorphism(&src, &atoms("r('a', 'b')"), &Subst::new()).is_none());
    }

    #[test]
    fn homomorphism_is_directional() {
        // Target variables behave as frozen constants: r('a') has no image
        // in r(X) under our directional definition... but r(X) maps to r('a').
        assert!(find_homomorphism(&atoms("r(X)"), &atoms("r('a')"), &Subst::new()).is_some());
        assert!(find_homomorphism(&atoms("r('a')"), &atoms("r(X)"), &Subst::new()).is_none());
    }

    #[test]
    fn all_homomorphisms_enumerates() {
        let hs = all_homomorphisms(&atoms("r(X)"), &atoms("r('a'), r('b')"), &Subst::new());
        assert_eq!(hs.len(), 2);
    }

    #[test]
    fn multi_atom_homomorphism_joins() {
        let src = atoms("r(X, Y), s(Y, Z)");
        let tgt = atoms("r('1', '2'), s('2', '3'), s('9', '9')");
        let h = find_homomorphism(&src, &tgt, &Subst::new()).unwrap();
        assert_eq!(h.resolve(&Term::var("Z")), Term::Const(Value::str("3")));
    }

    #[test]
    fn base_substitution_constrains_search() {
        let mut base = Subst::new();
        base.bind("X", Term::Const(Value::str("b")));
        let hs = all_homomorphisms(&atoms("r(X)"), &atoms("r('a'), r('b')"), &base);
        assert_eq!(hs.len(), 1);
    }
}
