//! Datalog-style concrete syntax for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := atom ':-' item (',' item)*
//! item   := atom | comparison
//! atom   := name '(' term (',' term)* ')' | name '(' ')'
//! term   := VARIABLE | constant
//! comparison := term op term        op ∈ { =, !=, <, <=, >, >= }
//! ```
//!
//! A variable starts with an uppercase letter or `_`; anything else is a
//! constant (`42`, `4.5`, `true`, `'quoted string'`, `bareword`). Relation
//! names may be dotted (`Berkeley.course`), which is how the PDMS qualifies
//! relations with their peer.

use crate::ast::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term};
use revere_storage::Value;

/// Error produced by [`parse_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { message: message.into() })
}

/// Parse a conjunctive query such as
/// `q(X, T) :- Berkeley.course(X, T, S), S > 100, T != 'staff'`.
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let Some((head_src, body_src)) = src.split_once(":-") else {
        return err(format!("missing ':-' in {src:?}"));
    };
    let head = parse_atom(head_src.trim())?;
    let mut body = Vec::new();
    let mut comparisons = Vec::new();
    for item in split_top_level(body_src) {
        let item = item.trim();
        if item.is_empty() {
            return err("empty body item");
        }
        // An atom contains '(' before any comparison operator.
        let paren = item.find('(');
        let op_pos = find_cmp_op(item);
        match (paren, op_pos) {
            (Some(p), Some((o, _, _))) if p < o => body.push(parse_atom(item)?),
            (Some(_), None) => body.push(parse_atom(item)?),
            (_, Some((pos, op, oplen))) => {
                let left = parse_term(item[..pos].trim())?;
                let right = parse_term(item[pos + oplen..].trim())?;
                comparisons.push(Comparison { left, op, right });
            }
            _ => return err(format!("cannot parse body item {item:?}")),
        }
    }
    if body.is_empty() {
        return err("query body has no relational atom");
    }
    let q = ConjunctiveQuery { head, body, comparisons };
    if !q.is_safe() {
        return err(format!("unsafe query (head/comparison variable not bound in body): {q}"));
    }
    Ok(q)
}

/// Split on commas that are not inside parentheses or quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            '(' if !in_quote => depth += 1,
            ')' if !in_quote => depth = depth.saturating_sub(1),
            ',' if !in_quote && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Locate the first comparison operator outside quotes. Returns
/// `(byte_pos, op, op_len)`.
fn find_cmp_op(s: &str) -> Option<(usize, CmpOp, usize)> {
    let bytes = s.as_bytes();
    let mut in_quote = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\'' {
            in_quote = !in_quote;
            i += 1;
            continue;
        }
        if in_quote {
            i += 1;
            continue;
        }
        let two = if i + 1 < bytes.len() { &s[i..i + 2] } else { "" };
        match two {
            "!=" => return Some((i, CmpOp::Ne, 2)),
            "<=" => return Some((i, CmpOp::Le, 2)),
            ">=" => return Some((i, CmpOp::Ge, 2)),
            _ => {}
        }
        match c {
            b'=' => return Some((i, CmpOp::Eq, 1)),
            b'<' => return Some((i, CmpOp::Lt, 1)),
            b'>' => return Some((i, CmpOp::Gt, 1)),
            _ => {}
        }
        i += 1;
    }
    None
}

fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let Some(open) = src.find('(') else {
        return err(format!("atom {src:?} missing '('"));
    };
    if !src.ends_with(')') {
        return err(format!("atom {src:?} missing ')'"));
    }
    let name = src[..open].trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | '-'))
    {
        return err(format!("bad relation name {name:?}"));
    }
    let inner = &src[open + 1..src.len() - 1];
    let mut terms = Vec::new();
    if !inner.trim().is_empty() {
        for t in split_top_level(inner) {
            terms.push(parse_term(t.trim())?);
        }
    }
    Ok(Atom::new(name, terms))
}

fn parse_term(src: &str) -> Result<Term, ParseError> {
    if src.is_empty() {
        return err("empty term");
    }
    let first = src.chars().next().expect("non-empty");
    if (first.is_uppercase() || first == '_')
        && src.chars().all(|c| c.is_alphanumeric() || c == '_')
    {
        return Ok(Term::Var(src.to_string()));
    }
    Ok(Term::Const(Value::parse(src)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_query() {
        let q = parse_query("q(X, Y) :- r(X, Z), s(Z, Y)").unwrap();
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.head_vars(), vec!["X", "Y"]);
    }

    #[test]
    fn parses_constants_and_comparisons() {
        let q = parse_query("q(X) :- course(X, T, S), T = 'ancient history', S >= 10").unwrap();
        assert_eq!(q.comparisons.len(), 2);
        assert_eq!(
            q.comparisons[0].right,
            Term::Const(Value::str("ancient history"))
        );
        assert_eq!(q.comparisons[1].op, CmpOp::Ge);
    }

    #[test]
    fn quoted_commas_do_not_split() {
        let q = parse_query("q(X) :- r(X, 'a, b')").unwrap();
        assert_eq!(q.body[0].terms.len(), 2);
    }

    #[test]
    fn dotted_relation_names() {
        let q = parse_query("q(X) :- Berkeley.course(X, T)").unwrap();
        assert_eq!(q.body[0].relation, "Berkeley.course");
    }

    #[test]
    fn constants_in_atom_positions() {
        let q = parse_query("q(X) :- r(X, 42, 'lit', bare)").unwrap();
        assert_eq!(q.body[0].terms[1], Term::Const(Value::Int(42)));
        assert_eq!(q.body[0].terms[3], Term::Const(Value::str("bare")));
    }

    #[test]
    fn underscore_and_uppercase_are_vars() {
        let q = parse_query("q(X) :- r(X, _ignore, Title2)").unwrap();
        assert_eq!(q.body[0].vars().len(), 3);
    }

    #[test]
    fn rejects_unsafe() {
        assert!(parse_query("q(Z) :- r(X)").is_err());
        assert!(parse_query("q(X) :- r(X), Y > 3").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("no arrow here").is_err());
        assert!(parse_query("q(X) :- ").is_err());
        assert!(parse_query("q(X) :- r(X,)").is_err());
        assert!(parse_query("q(X :- r(X)").is_err());
    }

    #[test]
    fn nullary_atoms() {
        let q = parse_query("q() :- fact()").unwrap();
        assert!(q.head.terms.is_empty());
    }
}
