//! The MiniCon algorithm: answering queries using views (LAV rewriting).
//!
//! In local-as-view integration "the data sources are defined as views over
//! the mediated schema" (§3.1.1); answering a query then requires rewriting
//! it to use only the views. MiniCon (Pottinger & Halevy, VLDB'00) does this
//! in two phases:
//!
//! 1. **MCD formation** — for every (goal, view) pair, try to build a
//!    *MiniCon description*: a mapping of a minimal set of query goals into
//!    one view instance, subject to (C1) distinguished query variables land
//!    on distinguished view variables or constants, and (C2) a query
//!    variable mapped onto an *existential* view variable drags every goal
//!    it occurs in into the same MCD.
//! 2. **Combination** — sets of MCDs with pairwise-disjoint goal sets that
//!    jointly cover all goals are combined into candidate rewritings.
//!
//! Comparisons in the query are retained in each rewriting; variables used
//! in comparisons are treated like distinguished variables (their values
//! must be exposed by the views), which keeps the output sound.

use crate::ast::{Atom, ConjunctiveQuery, Term};
use crate::unfold::ViewDef;
use crate::unify::Subst;
use std::collections::{BTreeSet, HashMap, HashSet};

/// One MiniCon description.
#[derive(Debug, Clone)]
struct Mcd {
    view_idx: usize,
    /// Indices of covered query goals.
    goals: BTreeSet<usize>,
    /// Query variable → view term (resolved through `sigma` when read).
    tau: HashMap<String, Term>,
    /// Bindings among/over view variables (head homomorphism + constants).
    sigma: Subst,
    /// The freshened view used by this MCD.
    view: ConjunctiveQuery,
    /// Distinguished (head) variables of the freshened view.
    distinguished: HashSet<String>,
}

/// Rewrite `q` using only the given views. Every returned query references
/// only view relations, is safe, and is contained in `q` (soundness); with
/// a complete set of MCD combinations the union of results is the maximal
/// contained rewriting for comparison-free queries.
pub fn rewrite_using_views(q: &ConjunctiveQuery, views: &[ViewDef]) -> Vec<ConjunctiveQuery> {
    // Variables whose values must be retrievable from the views.
    let mut needed: HashSet<String> = q.head_vars().into_iter().map(str::to_string).collect();
    for c in &q.comparisons {
        for t in [&c.left, &c.right] {
            if let Some(v) = t.as_var() {
                needed.insert(v.to_string());
            }
        }
    }

    // Phase 1: form MCDs from every (goal, view, view-atom) seed.
    let mut mcds: Vec<Mcd> = Vec::new();
    for (vi, vdef) in views.iter().enumerate() {
        let view = vdef.as_query().rename_vars(&format!("mc{vi}_"));
        let distinguished: HashSet<String> =
            view.head.terms.iter().filter_map(|t| t.as_var().map(str::to_string)).collect();
        for gi in 0..q.body.len() {
            let seed = Mcd {
                view_idx: vi,
                goals: BTreeSet::new(),
                tau: HashMap::new(),
                sigma: Subst::new(),
                view: view.clone(),
                distinguished: distinguished.clone(),
            };
            for with_goal in map_goal_into_view(q, gi, &seed) {
                close_mcd(q, &needed, with_goal, &mut mcds);
            }
        }
    }
    dedup_mcds(&mut mcds);

    // Phase 2: combine pairwise-disjoint MCDs covering all goals.
    let all: BTreeSet<usize> = (0..q.body.len()).collect();
    let mut rewritings = Vec::new();
    combine(&mcds, &all, &BTreeSet::new(), &mut Vec::new(), q, &mut rewritings);

    // Dedup up to renaming.
    let mut seen = HashSet::new();
    rewritings.retain(|r| seen.insert(r.canonical_key()));
    rewritings
}

/// All ways of consistently mapping query goal `gi` into some atom of the
/// MCD's view.
fn map_goal_into_view(q: &ConjunctiveQuery, gi: usize, base: &Mcd) -> Vec<Mcd> {
    let goal = &q.body[gi];
    let mut out = Vec::new();
    for w in &base.view.body {
        if w.relation != goal.relation || w.terms.len() != goal.terms.len() {
            continue;
        }
        let mut m = base.clone();
        if try_map_atom(goal, w, &mut m) {
            m.goals.insert(gi);
            out.push(m);
        }
    }
    out
}

/// Extend the MCD's (tau, sigma) so that `goal` maps onto view atom `w`.
fn try_map_atom(goal: &Atom, w: &Atom, m: &mut Mcd) -> bool {
    for (tq, tv) in goal.terms.iter().zip(&w.terms) {
        let tv_res = m.sigma.resolve(tv);
        match tq {
            Term::Const(c) => match tv_res {
                Term::Const(d) => {
                    if *c != d {
                        return false;
                    }
                }
                Term::Var(y) => {
                    // A query constant can only constrain a distinguished
                    // view variable (via selection on the view's output).
                    if !m.distinguished.contains(&y) {
                        return false;
                    }
                    if !m.sigma.bind(&y, Term::Const(c.clone())) {
                        return false;
                    }
                }
            },
            Term::Var(x) => {
                match m.tau.get(x).cloned() {
                    None => {
                        m.tau.insert(x.clone(), tv_res);
                    }
                    Some(prev) => {
                        let prev_res = m.sigma.resolve(&prev);
                        if !reconcile(prev_res, tv_res, m) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// Make two view-side terms equal, if permitted (only distinguished view
/// variables may be equated or bound to constants).
fn reconcile(a: Term, b: Term, m: &mut Mcd) -> bool {
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(y), Term::Const(c)) | (Term::Const(c), Term::Var(y)) => {
            m.distinguished.contains(&y) && m.sigma.bind(&y, Term::Const(c))
        }
        (Term::Var(y1), Term::Var(y2)) => {
            if y1 == y2 {
                return true;
            }
            m.distinguished.contains(&y1)
                && m.distinguished.contains(&y2)
                && m.sigma.bind(&y1, Term::Var(y2))
        }
    }
}

/// Enforce property C2 by closure: any query variable sitting on an
/// existential view variable forces all its goals into the MCD. Branches
/// over the choice of view atom for each forced goal; pushes completed
/// MCDs into `out`.
fn close_mcd(q: &ConjunctiveQuery, needed: &HashSet<String>, m: Mcd, out: &mut Vec<Mcd>) {
    // Find a violation: var on existential view var with an uncovered goal.
    for (x, t) in m.tau.clone() {
        let resolved = m.sigma.resolve(&t);
        if let Term::Var(y) = &resolved {
            if !m.distinguished.contains(y) {
                // C1: needed variables may not land on existential vars.
                if needed.contains(&x) {
                    return; // dead MCD
                }
                for (gi, g) in q.body.iter().enumerate() {
                    if m.goals.contains(&gi) {
                        continue;
                    }
                    if g.vars().contains(&x.as_str()) {
                        // Force goal gi in, branching over target atoms.
                        for next in map_goal_into_view_at(q, gi, &m) {
                            close_mcd(q, needed, next, out);
                        }
                        return;
                    }
                }
            }
        }
    }
    out.push(m);
}

fn map_goal_into_view_at(q: &ConjunctiveQuery, gi: usize, base: &Mcd) -> Vec<Mcd> {
    let goal = &q.body[gi];
    let mut out = Vec::new();
    for w in &base.view.body {
        if w.relation != goal.relation || w.terms.len() != goal.terms.len() {
            continue;
        }
        let mut m = base.clone();
        if try_map_atom(goal, w, &mut m) {
            m.goals.insert(gi);
            out.push(m);
        }
    }
    out
}

fn dedup_mcds(mcds: &mut Vec<Mcd>) {
    let mut seen = HashSet::new();
    mcds.retain(|m| {
        let mut tau: Vec<String> = m
            .tau
            .iter()
            .map(|(k, v)| format!("{k}->{}", m.sigma.resolve(v)))
            .collect();
        tau.sort();
        let key = format!("{}|{:?}|{}", m.view_idx, m.goals, tau.join(","));
        seen.insert(key)
    });
}

/// Recursive exact-cover over goal sets.
fn combine(
    mcds: &[Mcd],
    all: &BTreeSet<usize>,
    covered: &BTreeSet<usize>,
    chosen: &mut Vec<usize>,
    q: &ConjunctiveQuery,
    out: &mut Vec<ConjunctiveQuery>,
) {
    if covered == all {
        if let Some(r) = build_rewriting(q, mcds, chosen) {
            out.push(r);
        }
        return;
    }
    let next_goal = *all.iter().find(|g| !covered.contains(g)).expect("uncovered goal exists");
    for (i, m) in mcds.iter().enumerate() {
        if !m.goals.contains(&next_goal) {
            continue;
        }
        if !m.goals.is_disjoint(covered) {
            continue;
        }
        let mut new_cov = covered.clone();
        new_cov.extend(m.goals.iter().copied());
        chosen.push(i);
        combine(mcds, all, &new_cov, chosen, q, out);
        chosen.pop();
    }
}

/// Materialize a rewriting from a set of chosen MCDs.
fn build_rewriting(q: &ConjunctiveQuery, mcds: &[Mcd], chosen: &[usize]) -> Option<ConjunctiveQuery> {
    // Global mapping from query variables to rewriting terms.
    let head_vars: HashSet<&str> = q.head_vars().into_iter().collect();
    let mut global: HashMap<String, Term> = HashMap::new();
    let mut atoms = Vec::with_capacity(chosen.len());
    let mut fresh_counter = 0usize;

    for (k, &mi) in chosen.iter().enumerate() {
        let m = &mcds[mi];
        // Group query vars by the view variable they land on.
        let mut by_view_var: HashMap<String, Vec<&String>> = HashMap::new();
        for (x, t) in &m.tau {
            match m.sigma.resolve(t) {
                Term::Const(c) => {
                    // x is pinned to a constant.
                    match global.get(x) {
                        None => {
                            global.insert(x.clone(), Term::Const(c));
                        }
                        Some(Term::Const(d)) if *d == c => {}
                        Some(Term::Const(_)) => return None,
                        Some(Term::Var(_)) => {
                            // Another MCD chose a variable; tighten to const.
                            global.insert(x.clone(), Term::Const(c));
                        }
                    }
                }
                Term::Var(y) => by_view_var.entry(y).or_default().push(x),
            }
        }
        // Choose representatives: prefer a head var of Q.
        for (_, group) in by_view_var.iter() {
            let rep = group
                .iter()
                .find(|x| head_vars.contains(x.as_str()))
                .unwrap_or(&group[0])
                .to_string();
            for x in group {
                match global.get(x.as_str()) {
                    None => {
                        global.insert((*x).clone(), Term::Var(rep.clone()));
                    }
                    Some(_) => {
                        // Already assigned by another MCD (shared variable):
                        // the existing assignment wins; all members of the
                        // group must agree with it, which is enforced by
                        // substituting the same term for rep below.
                    }
                }
            }
        }
        // Build the view atom's arguments from the view head.
        let mut args = Vec::with_capacity(m.view.head.terms.len());
        for t in &m.view.head.terms {
            match m.sigma.resolve(t) {
                Term::Const(c) => args.push(Term::Const(c)),
                Term::Var(y) => {
                    // Which query var (if any) landed on y?
                    let owner = m.tau.iter().find(|(_, vt)| {
                        matches!(m.sigma.resolve(vt), Term::Var(ref yy) if *yy == y)
                    });
                    match owner {
                        Some((x, _)) => args.push(
                            global.get(x).cloned().unwrap_or_else(|| Term::Var(x.clone())),
                        ),
                        None => {
                            fresh_counter += 1;
                            args.push(Term::Var(format!("F{k}_{fresh_counter}")));
                        }
                    }
                }
            }
        }
        atoms.push(Atom::new(m.view.head.relation.clone(), args));
    }

    // Apply the global substitution to the head, atoms and comparisons.
    let subst_term = |t: &Term, global: &HashMap<String, Term>| -> Term {
        match t {
            Term::Var(v) => {
                let mut cur = global.get(v).cloned().unwrap_or_else(|| t.clone());
                // Chase one extra level (rep may itself be remapped).
                if let Term::Var(v2) = &cur {
                    if v2 != v {
                        if let Some(next) = global.get(v2) {
                            cur = next.clone();
                        }
                    }
                }
                cur
            }
            c @ Term::Const(_) => c.clone(),
        }
    };
    let head = Atom::new(
        q.head.relation.clone(),
        q.head.terms.iter().map(|t| subst_term(t, &global)).collect(),
    );
    let body: Vec<Atom> = atoms
        .iter()
        .map(|a| Atom::new(a.relation.clone(), a.terms.iter().map(|t| subst_term(t, &global)).collect()))
        .collect();
    let comparisons = q
        .comparisons
        .iter()
        .map(|c| crate::ast::Comparison {
            left: subst_term(&c.left, &global),
            op: c.op,
            right: subst_term(&c.right, &global),
        })
        .collect();
    let rw = ConjunctiveQuery { head, body, comparisons };
    if rw.is_safe() {
        Some(rw)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contained_in;
    use crate::eval::eval_cq;
    use crate::parse::parse_query;
    use crate::unfold::{unfold_with, ViewDef};
    use revere_storage::{Catalog, RelSchema, Relation};

    fn views(defs: &[&str]) -> Vec<ViewDef> {
        defs.iter()
            .map(|d| ViewDef::from_query(&parse_query(d).unwrap()))
            .collect()
    }

    /// Expand each rewriting back to base relations and check containment
    /// in the original query — the soundness criterion.
    fn assert_sound(q: &ConjunctiveQuery, vs: &[ViewDef], rewritings: &[ConjunctiveQuery]) {
        for r in rewritings {
            for expanded in unfold_with(r, vs, 8) {
                assert!(
                    contained_in(&expanded, q),
                    "unsound rewriting {r} (expanded: {expanded}) for query {q}"
                );
            }
        }
    }

    #[test]
    fn identity_view() {
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let vs = views(&["v(A, B) :- e(A, B)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].body[0].relation, "v");
        assert_sound(&q, &vs, &rs);
    }

    #[test]
    fn path_of_two_via_single_edge_view() {
        let q = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)").unwrap();
        let vs = views(&["v(A, B) :- e(A, B)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].body.len(), 2);
        assert_sound(&q, &vs, &rs);
    }

    #[test]
    fn existential_view_var_forces_goal_closure() {
        // v exposes only the start of a 2-path; the join variable is
        // existential, so one MCD must cover both goals.
        let q = parse_query("q(X) :- e(X, Y), f(Y, Z)").unwrap();
        let vs = views(&["v(A) :- e(A, B), f(B, C)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].body.len(), 1);
        assert_sound(&q, &vs, &rs);
    }

    #[test]
    fn head_var_on_existential_is_rejected() {
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let vs = views(&["v(A) :- e(A, B)"]);
        assert!(rewrite_using_views(&q, &vs).is_empty());
    }

    #[test]
    fn partial_coverage_yields_nothing() {
        let q = parse_query("q(X) :- e(X, X), f(X)").unwrap();
        let vs = views(&["v(A) :- e(A, A)"]); // no view covers f
        assert!(rewrite_using_views(&q, &vs).is_empty());
    }

    #[test]
    fn two_views_combine() {
        let q = parse_query("q(X, Z) :- e(X, Y), f(Y, Z)").unwrap();
        let vs = views(&["v1(A, B) :- e(A, B)", "v2(A, B) :- f(A, B)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].body.len(), 2);
        assert_sound(&q, &vs, &rs);
    }

    #[test]
    fn constant_in_query_selects_on_distinguished() {
        let q = parse_query("q(X) :- e(X, 'target')").unwrap();
        let vs = views(&["v(A, B) :- e(A, B)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);
        assert!(rs[0].body[0].terms.iter().any(Term::is_const));
        assert_sound(&q, &vs, &rs);
    }

    #[test]
    fn constant_on_existential_is_rejected() {
        let q = parse_query("q(X) :- e(X, 'target')").unwrap();
        let vs = views(&["v(A) :- e(A, B)"]); // B hidden
        assert!(rewrite_using_views(&q, &vs).is_empty());
    }

    #[test]
    fn constant_in_view_body_matches() {
        let q = parse_query("q(X) :- e(X, 'target')").unwrap();
        let vs = views(&["v(A) :- e(A, 'target')"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);
        assert_sound(&q, &vs, &rs);
    }

    #[test]
    fn multiple_rewritings_from_overlapping_views() {
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let vs = views(&["v1(A, B) :- e(A, B)", "v2(A, B) :- e(A, B)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 2);
        assert_sound(&q, &vs, &rs);
    }

    #[test]
    fn comparison_vars_must_be_exposed() {
        let q = parse_query("q(X) :- e(X, S), S > 10").unwrap();
        let hidden = views(&["v(A) :- e(A, B)"]);
        assert!(rewrite_using_views(&q, &hidden).is_empty());
        let exposed = views(&["v(A, B) :- e(A, B)"]);
        let rs = rewrite_using_views(&q, &exposed);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].comparisons.len(), 1);
    }

    #[test]
    fn repeated_query_var_equates_distinguished_view_vars() {
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        let vs = views(&["v(A, B) :- e(A, B)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);
        // Both positions of v must carry the same variable.
        let a = &rs[0].body[0];
        assert_eq!(a.terms[0], a.terms[1]);
        assert_sound(&q, &vs, &rs);
    }

    /// End-to-end: evaluating the rewriting over materialized views equals
    /// evaluating the query over the base data (for an equivalent rewriting).
    #[test]
    fn rewriting_evaluates_correctly() {
        let q = parse_query("q(X, Y) :- e(X, Z), e(Z, Y)").unwrap();
        let vs = views(&["v(A, B) :- e(A, B)"]);
        let rs = rewrite_using_views(&q, &vs);
        assert_eq!(rs.len(), 1);

        // Base data.
        let mut base = Catalog::new();
        let mut e = Relation::new(RelSchema::text("e", &["a", "b"]));
        for (x, y) in [("1", "2"), ("2", "3"), ("3", "1"), ("2", "4")] {
            e.insert(vec![x.into(), y.into()]);
        }
        base.register(e);
        let direct = eval_cq(&q, &base).unwrap();

        // Materialize the view, evaluate the rewriting over it.
        let vq = parse_query("v(A, B) :- e(A, B)").unwrap();
        let mut vcat = Catalog::new();
        let mut vrel = eval_cq(&vq, &base).unwrap();
        vrel.schema.name = "v".into();
        vcat.register(vrel);
        let via_views = eval_cq(&rs[0], &vcat).unwrap();

        let mut d: Vec<_> = direct.rows().to_vec();
        let mut v: Vec<_> = via_views.rows().to_vec();
        d.sort();
        v.sort();
        assert_eq!(d, v);
    }
}
