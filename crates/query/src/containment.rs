//! Query containment, equivalence and minimization.
//!
//! The reformulator uses containment two ways: to prune redundant rewriting
//! paths ("heuristics that prune redundant and irrelevant paths", §3.1.1)
//! and to minimize rewritings before shipping them to peers.
//!
//! Containment of comparison-free conjunctive queries is decided by the
//! classical containment-mapping test (Chandra & Merlin): `Q1 ⊆ Q2` iff
//! there is a homomorphism from `Q2` into the *frozen* `Q1` that maps head
//! to head. Comparisons are handled conservatively: we additionally require
//! every comparison of `Q2` to appear (under the mapping) among `Q1`'s
//! comparisons — sound, not complete, which is the right trade for a
//! pruning heuristic.

use crate::ast::{Atom, Comparison, ConjunctiveQuery, Term};
use crate::unify::{all_homomorphisms, Subst};
use revere_storage::Value;

/// Freeze a query: replace each variable by a distinct fresh constant.
/// Returns the frozen body and head.
fn freeze(q: &ConjunctiveQuery) -> (Vec<Atom>, Atom) {
    let frozen = |t: &Term| match t {
        Term::Var(v) => Term::Const(Value::Str(format!("\u{2744}{v}"))),
        c @ Term::Const(_) => c.clone(),
    };
    let body = q
        .body
        .iter()
        .map(|a| Atom::new(a.relation.clone(), a.terms.iter().map(frozen).collect()))
        .collect();
    let head = Atom::new(q.head.relation.clone(), q.head.terms.iter().map(frozen).collect());
    (body, head)
}

/// Test `q1 ⊆ q2` (every answer of `q1` on every database is an answer of
/// `q2`). Sound and complete for comparison-free queries; sound (may say
/// `false` unnecessarily) when comparisons are present.
pub fn contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    if q1.head.terms.len() != q2.head.terms.len() {
        return false;
    }
    let (frozen_body, frozen_head) = freeze(q1);
    // Seed the homomorphism with the head correspondence.
    let mut base = Subst::new();
    for (t2, t1f) in q2.head.terms.iter().zip(&frozen_head.terms) {
        match t2 {
            Term::Var(v) => {
                if !base.bind(v, t1f.clone()) {
                    return false;
                }
            }
            Term::Const(c) => {
                if Term::Const(c.clone()) != *t1f {
                    return false;
                }
            }
        }
    }
    let homs = all_homomorphisms(&q2.body, &frozen_body, &base);
    if q2.comparisons.is_empty() {
        return !homs.is_empty();
    }
    // Conservative comparison check: q2's comparisons, after mapping, must
    // be syntactically implied by q1's (frozen) comparisons or hold between
    // constants.
    let frozen_cmp: Vec<Comparison> = {
        let frozenize = |t: &Term| match t {
            Term::Var(v) => Term::Const(Value::Str(format!("\u{2744}{v}"))),
            c @ Term::Const(_) => c.clone(),
        };
        q1.comparisons
            .iter()
            .map(|c| Comparison { left: frozenize(&c.left), op: c.op, right: frozenize(&c.right) })
            .collect()
    };
    homs.into_iter().any(|h| {
        q2.comparisons.iter().all(|c| {
            let mapped = h.apply_cmp(c);
            match (&mapped.left, &mapped.right) {
                (Term::Const(a), Term::Const(b))
                    if !a.to_string().starts_with('\u{2744}')
                        && !b.to_string().starts_with('\u{2744}') =>
                {
                    mapped.op.apply(a, b)
                }
                _ => frozen_cmp.contains(&mapped),
            }
        })
    })
}

/// Test logical equivalence: containment both ways.
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contained_in(q1, q2) && contained_in(q2, q1)
}

/// Minimize a conjunctive query: repeatedly drop a body atom if the
/// shrunken query is still equivalent. The result is the (unique up to
/// isomorphism) core for comparison-free queries.
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let mut shrunk = None;
        for i in 0..current.body.len() {
            if current.body.len() == 1 {
                break;
            }
            let mut cand = current.clone();
            cand.body.remove(i);
            if !cand.is_safe() {
                continue;
            }
            if equivalent(&cand, &current) {
                shrunk = Some(cand);
                break;
            }
        }
        match shrunk {
            Some(c) => current = c,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn q(src: &str) -> ConjunctiveQuery {
        parse_query(src).unwrap()
    }

    #[test]
    fn reflexive() {
        let a = q("q(X) :- r(X, Y), s(Y)");
        assert!(contained_in(&a, &a));
        assert!(equivalent(&a, &a));
    }

    #[test]
    fn more_constrained_is_contained() {
        let tight = q("q(X) :- r(X, X)");
        let loose = q("q(X) :- r(X, Y)");
        assert!(contained_in(&tight, &loose));
        assert!(!contained_in(&loose, &tight));
    }

    #[test]
    fn constant_vs_variable() {
        let tight = q("q(X) :- r(X, 'a')");
        let loose = q("q(X) :- r(X, Y)");
        assert!(contained_in(&tight, &loose));
        assert!(!contained_in(&loose, &tight));
    }

    #[test]
    fn classic_path_containment() {
        // Chandra–Merlin style: a longer path query is contained in a
        // shorter one when a folding exists.
        let two = q("q(X) :- e(X, Y), e(Y, X)");
        let loop1 = q("q(X) :- e(X, X)");
        assert!(contained_in(&loop1, &two));
        assert!(!contained_in(&two, &loop1));
    }

    #[test]
    fn head_shape_matters() {
        let a = q("q(X, Y) :- r(X, Y)");
        let b = q("q(X, X) :- r(X, X)");
        assert!(contained_in(&b, &a));
        assert!(!contained_in(&a, &b));
    }

    #[test]
    fn different_relations_not_contained() {
        assert!(!contained_in(&q("q(X) :- r(X)"), &q("q(X) :- s(X)")));
    }

    #[test]
    fn comparisons_sound_direction() {
        let strict = q("q(X) :- r(X, S), S > 10");
        let loose = q("q(X) :- r(X, S)");
        assert!(contained_in(&strict, &loose));
        assert!(!contained_in(&loose, &strict));
        // Identical comparison is recognized.
        assert!(contained_in(&strict, &strict));
    }

    #[test]
    fn minimize_removes_redundant_atom() {
        let redundant = q("q(X) :- r(X, Y), r(X, Z)");
        let min = minimize(&redundant);
        assert_eq!(min.body.len(), 1);
        assert!(equivalent(&min, &redundant));
    }

    #[test]
    fn minimize_keeps_core() {
        let core = q("q(X) :- r(X, Y), s(Y)");
        assert_eq!(minimize(&core).body.len(), 2);
    }

    #[test]
    fn minimize_folding_chain() {
        // e(X,Y), e(Y,Z) with head q(X): the second atom is NOT redundant
        // (path of length 2 differs from length 1).
        let p2 = q("q(X) :- e(X, Y), e(Y, Z)");
        assert_eq!(minimize(&p2).body.len(), 2);
        // But duplicating an atom is.
        let dup = q("q(X) :- e(X, Y), e(X, Y), e(Y, Z)");
        assert_eq!(minimize(&dup).body.len(), 2);
    }
}
