//! GLAV mappings and their normalization.
//!
//! Piazza's mappings "are defined 'directionally' with query expressions
//! (using the GLAV formalism \[19\])" (§3.1.1): a mapping asserts an
//! inclusion between two conjunctive queries over different peers,
//!
//! ```text
//!   Q_source(X̄)  ⊆  Q_target(X̄)
//! ```
//!
//! meaning every tuple the source query produces is also an answer of the
//! target query. Reformulation exploits a GLAV mapping by *normalizing* it
//! through a virtual mapping relation `m(X̄)`:
//!
//! * a **GAV rule** `m(X̄) :- Q_source-body` — `m`'s extension is computed
//!   from the source peer's data (unfolding direction), and
//! * a **LAV view** `m(X̄) :- Q_target-body` — `m` behaves as a view over
//!   the target peer's schema (MiniCon direction).
//!
//! A query over the target peer is rewritten by MiniCon using the LAV
//! views of all inbound mappings, producing queries over the virtual `m`
//! relations; each `m` atom then unfolds through the GAV rule into source
//! vocabulary. That composition is exactly how the PDMS reformulator walks
//! one edge of the mapping graph.

use crate::ast::{Atom, ConjunctiveQuery, Term};
use crate::parse::{parse_query, ParseError};
use crate::unfold::ViewDef;

/// A GLAV mapping between two peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlavMapping {
    /// Unique mapping name; also names the virtual relation.
    pub name: String,
    /// Peer whose vocabulary `source` is written in.
    pub source_peer: String,
    /// Peer whose vocabulary `target` is written in.
    pub target_peer: String,
    /// Shared head variables (the exported tuple shape).
    pub head_vars: Vec<String>,
    /// Source-side body (over `source_peer` relations).
    pub source_body: Vec<Atom>,
    /// Target-side body (over `target_peer` relations).
    pub target_body: Vec<Atom>,
}

impl GlavMapping {
    /// Construct from two conjunctive queries with identical head shapes.
    ///
    /// Returns `None` if the heads differ in arity or are not pure variable
    /// tuples.
    pub fn new(
        name: impl Into<String>,
        source_peer: impl Into<String>,
        target_peer: impl Into<String>,
        source: &ConjunctiveQuery,
        target: &ConjunctiveQuery,
    ) -> Option<Self> {
        if source.head.terms.len() != target.head.terms.len() {
            return None;
        }
        let vars: Option<Vec<String>> = source
            .head
            .terms
            .iter()
            .map(|t| t.as_var().map(str::to_string))
            .collect();
        let head_vars = vars?;
        let tvars: Option<Vec<String>> = target
            .head
            .terms
            .iter()
            .map(|t| t.as_var().map(str::to_string))
            .collect();
        let tvars = tvars?;
        // Rename the target body so its head vars coincide with the source's.
        let target_renamed = align_head_vars(target, &tvars, &head_vars);
        Some(GlavMapping {
            name: name.into(),
            source_peer: source_peer.into(),
            target_peer: target_peer.into(),
            head_vars,
            source_body: source.body.clone(),
            target_body: target_renamed.body,
        })
    }

    /// Parse a mapping from the textual form used by examples and tests:
    /// two queries with the same head, separated by `==>`, e.g.
    ///
    /// ```text
    /// m(T, S) :- Berkeley.course(T, S)  ==>  m(T, S) :- MIT.subject(T, S)
    /// ```
    pub fn parse(
        name: impl Into<String>,
        source_peer: impl Into<String>,
        target_peer: impl Into<String>,
        src: &str,
    ) -> Result<Self, ParseError> {
        let Some((s, t)) = src.split_once("==>") else {
            return Err(ParseError { message: format!("mapping {src:?} lacks '==>'") });
        };
        let sq = parse_query(s.trim())?;
        let tq = parse_query(t.trim())?;
        GlavMapping::new(name, source_peer, target_peer, &sq, &tq).ok_or(ParseError {
            message: "mapping heads incompatible (arity or non-variable terms)".into(),
        })
    }

    /// The virtual-relation head atom `m(X̄)`.
    pub fn virtual_head(&self) -> Atom {
        Atom::new(
            self.name.clone(),
            self.head_vars.iter().map(|v| Term::var(v.clone())).collect(),
        )
    }

    /// The GAV rule `m(X̄) :- source_body` (unfold direction).
    pub fn gav_rule(&self) -> ViewDef {
        ViewDef { head: self.virtual_head(), body: self.source_body.clone() }
    }

    /// The LAV view `m(X̄) :- target_body` (MiniCon direction).
    pub fn lav_view(&self) -> ViewDef {
        ViewDef { head: self.virtual_head(), body: self.target_body.clone() }
    }

    /// The reversed mapping (asserting the other inclusion). Reformulation
    /// may traverse mappings in either direction — "a given user query may
    /// have to be evaluated against the mapping in either the 'forward' or
    /// 'backward' direction" — at the cost of possible incompleteness,
    /// which the PDMS accepts.
    pub fn reversed(&self) -> GlavMapping {
        GlavMapping {
            name: format!("{}_rev", self.name),
            source_peer: self.target_peer.clone(),
            target_peer: self.source_peer.clone(),
            head_vars: self.head_vars.clone(),
            source_body: self.target_body.clone(),
            target_body: self.source_body.clone(),
        }
    }
}

/// Rename `q`'s variables so that its head variables become `to` (matching
/// positionally from `from`), freshening any body variable that would
/// collide.
fn align_head_vars(q: &ConjunctiveQuery, from: &[String], to: &[String]) -> ConjunctiveQuery {
    // Fresh-prefix everything, then rename prefixed head vars to target.
    let fresh = q.rename_vars("t_");
    let mut mapping: Vec<(String, String)> = Vec::new();
    for (f, t) in from.iter().zip(to) {
        mapping.push((format!("t_{f}"), t.clone()));
    }
    let ren = |term: &Term| -> Term {
        match term {
            Term::Var(v) => {
                for (f, t) in &mapping {
                    if v == f {
                        return Term::var(t.clone());
                    }
                }
                term.clone()
            }
            c => c.clone(),
        }
    };
    ConjunctiveQuery {
        head: Atom::new(fresh.head.relation.clone(), fresh.head.terms.iter().map(ren).collect()),
        body: fresh
            .body
            .iter()
            .map(|a| Atom::new(a.relation.clone(), a.terms.iter().map(ren).collect()))
            .collect(),
        comparisons: fresh
            .comparisons
            .iter()
            .map(|c| crate::ast::Comparison { left: ren(&c.left), op: c.op, right: ren(&c.right) })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minicon::rewrite_using_views;
    use crate::unfold::unfold_with;

    #[test]
    fn parse_and_normalize() {
        let m = GlavMapping::parse(
            "m1",
            "Berkeley",
            "MIT",
            "m(T, S) :- Berkeley.course(C, T, S) ==> m(T, S) :- MIT.subject(X, T, S)",
        )
        .unwrap();
        assert_eq!(m.head_vars, vec!["T", "S"]);
        assert_eq!(m.gav_rule().body[0].relation, "Berkeley.course");
        assert_eq!(m.lav_view().body[0].relation, "MIT.subject");
    }

    #[test]
    fn head_vars_aligned_across_sides() {
        // Target side uses different variable names; after alignment the
        // LAV view's head must use the source-side names.
        let m = GlavMapping::parse(
            "m1",
            "A",
            "B",
            "m(X) :- A.r(X) ==> m(Y) :- B.s(Y, Z)",
        )
        .unwrap();
        let lav = m.lav_view();
        assert_eq!(lav.head.terms[0], Term::var("X"));
        // The body uses X at the right position.
        assert_eq!(lav.body[0].terms[0], Term::var("X"));
    }

    #[test]
    fn end_to_end_edge_traversal() {
        // Query over MIT vocabulary; mapping from Berkeley to MIT.
        let m = GlavMapping::parse(
            "m1",
            "Berkeley",
            "MIT",
            "m(T, E) :- Berkeley.course(T, E) ==> m(T, E) :- MIT.subject(T, E)",
        )
        .unwrap();
        let q = parse_query("q(T) :- MIT.subject(T, E), E > 100").unwrap();
        // Step 1: MiniCon with the LAV view.
        let rw = rewrite_using_views(&q, &[m.lav_view()]);
        assert_eq!(rw.len(), 1);
        assert_eq!(rw[0].body[0].relation, "m1");
        // Step 2: unfold the virtual relation through the GAV rule.
        let expanded = unfold_with(&rw[0], &[m.gav_rule()], 4);
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0].body[0].relation, "Berkeley.course");
        assert_eq!(expanded[0].comparisons.len(), 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(GlavMapping::parse("m", "A", "B", "m(X) :- A.r(X) ==> m(X, Y) :- B.s(X, Y)")
            .is_err());
    }

    #[test]
    fn reversed_swaps_sides() {
        let m = GlavMapping::parse("m", "A", "B", "m(X) :- A.r(X) ==> m(X) :- B.s(X)").unwrap();
        let r = m.reversed();
        assert_eq!(r.source_peer, "B");
        assert_eq!(r.gav_rule().body[0].relation, "B.s");
        assert_eq!(r.lav_view().body[0].relation, "A.r");
    }

    #[test]
    fn missing_arrow_rejected() {
        assert!(GlavMapping::parse("m", "A", "B", "m(X) :- A.r(X)").is_err());
    }
}
