//! Evaluation of conjunctive queries over a storage catalog.
//!
//! The evaluator is the execution layer behind every peer's "query
//! answering ... with respect to its peer schema" service (§3.1) and behind
//! MANGROVE's RDF-style queries. It performs a greedy-ordered series of
//! hash joins over variable bindings: at each step it picks the atom
//! sharing the most variables with those already bound (breaking ties by
//! smaller relation), builds a hash index on the shared columns, and
//! extends the binding set.

use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
use revere_storage::{Catalog, Relation, RelSchema, Tuple, Value};
use std::collections::HashMap;

/// Anything the evaluator can read relations from.
///
/// [`Catalog`] is the usual source; the PDMS implements this for overlay
/// structures (base catalog + delta relations) so incremental view
/// maintenance can swap one atom's relation without copying base data.
pub trait Source {
    /// Borrow the named relation, if present.
    fn relation(&self, name: &str) -> Option<&Relation>;
}

impl Source for Catalog {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.get(name)
    }
}

/// Error raised when a query references a relation the catalog lacks or
/// uses it at the wrong arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "eval error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluate a conjunctive query, returning a relation named after the
/// query head whose columns are the head terms in order (set semantics).
pub fn eval_cq<S: Source>(q: &ConjunctiveQuery, catalog: &S) -> Result<Relation, EvalError> {
    Ok(eval_cq_bag(q, catalog)?.distinct())
}

/// Evaluate under *bag* semantics: one output row per derivation (binding
/// of the body). The counting-based incremental view maintenance in the
/// PDMS needs derivation multiplicities, not just the answer set.
pub fn eval_cq_bag<S: Source>(q: &ConjunctiveQuery, catalog: &S) -> Result<Relation, EvalError> {
    // Binding table: column per variable, row per partial assignment.
    let mut var_cols: Vec<String> = Vec::new();
    let mut rows: Vec<Tuple> = vec![Vec::new()]; // one empty binding
    let mut remaining: Vec<&Atom> = q.body.iter().collect();

    while !remaining.is_empty() {
        // Greedy choice: most shared variables, then smallest relation.
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let shared = a
                    .vars()
                    .iter()
                    .filter(|v| var_cols.iter().any(|c| c == **v))
                    .count();
                let size = catalog.relation(&a.relation).map(Relation::len).unwrap_or(usize::MAX);
                (i, (std::cmp::Reverse(shared), size))
            })
            .min_by_key(|(_, k)| *k)
            .expect("remaining non-empty");
        let atom = remaining.remove(pos);
        let rel = catalog.relation(&atom.relation).ok_or_else(|| EvalError {
            message: format!("unknown relation {:?}", atom.relation),
        })?;
        if rel.schema.arity() != atom.terms.len() {
            return Err(EvalError {
                message: format!(
                    "relation {} has arity {}, atom uses {}",
                    atom.relation,
                    rel.schema.arity(),
                    atom.terms.len()
                ),
            });
        }

        // Split the atom's columns into: constants (filter), join vars
        // (already bound), new vars (extend).
        let mut const_checks: Vec<(usize, &Value)> = Vec::new();
        let mut join_cols: Vec<(usize, usize)> = Vec::new(); // (atom col, binding col)
        let mut new_vars: Vec<(usize, String)> = Vec::new();
        let mut self_joins: Vec<(usize, usize)> = Vec::new(); // repeated var inside atom
        let mut seen_in_atom: HashMap<&str, usize> = HashMap::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(c) => const_checks.push((i, c)),
                Term::Var(v) => {
                    if let Some(&first) = seen_in_atom.get(v.as_str()) {
                        self_joins.push((i, first));
                    } else {
                        seen_in_atom.insert(v, i);
                        if let Some(bcol) = var_cols.iter().position(|c| c == v) {
                            join_cols.push((i, bcol));
                        } else {
                            new_vars.push((i, v.clone()));
                        }
                    }
                }
            }
        }

        // Pre-filter the relation's rows by constants and self-joins, and
        // build a hash index keyed by the join columns.
        let mut index: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::new();
        for row in rel.iter() {
            if const_checks.iter().any(|(i, c)| &row[*i] != *c) {
                continue;
            }
            if self_joins.iter().any(|(i, j)| row[*i] != row[*j]) {
                continue;
            }
            let key: Vec<&Value> = join_cols.iter().map(|(i, _)| &row[*i]).collect();
            index.entry(key).or_default().push(row);
        }

        // Probe with every current binding.
        let mut next_rows: Vec<Tuple> = Vec::new();
        for binding in &rows {
            let key: Vec<&Value> = join_cols.iter().map(|(_, b)| &binding[*b]).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut extended = binding.clone();
                    for (i, _) in &new_vars {
                        extended.push(m[*i].clone());
                    }
                    next_rows.push(extended);
                }
            }
        }
        for (_, v) in new_vars {
            var_cols.push(v);
        }
        rows = next_rows;
        if rows.is_empty() {
            break;
        }
    }

    // Apply comparisons.
    let resolve = |t: &Term, binding: &Tuple| -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => var_cols
                .iter()
                .position(|c| c == v)
                .map(|i| binding[i].clone()),
        }
    };
    for c in &q.comparisons {
        rows.retain(|b| {
            match (resolve(&c.left, b), resolve(&c.right, b)) {
                (Some(l), Some(r)) => c.op.apply(&l, &r),
                _ => false, // unsafe comparisons never pass (parser rejects them anyway)
            }
        });
    }

    // Project the head.
    let schema = RelSchema::text(
        q.head.relation.clone(),
        &q.head
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Var(v) => v.clone(),
                Term::Const(_) => format!("c{i}"),
            })
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    let mut out = Relation::new(schema);
    'row: for b in &rows {
        let mut tuple = Vec::with_capacity(q.head.terms.len());
        for t in &q.head.terms {
            match resolve(t, b) {
                Some(v) => tuple.push(v),
                None => continue 'row,
            }
        }
        out.insert(tuple);
    }
    Ok(out)
}

/// Evaluate a union of conjunctive queries (set semantics across
/// disjuncts). Disjuncts referencing unknown relations contribute nothing
/// rather than failing the whole union — in a PDMS a rewriting may mention
/// a peer whose data is unavailable, and "the system should make use of
/// relevant data anywhere" that *is* reachable.
pub fn eval_union<S: Source>(u: &UnionQuery, catalog: &S) -> Result<Relation, EvalError> {
    let Some(first) = u.disjuncts.first() else {
        return Err(EvalError { message: "empty union".into() });
    };
    let mut acc: Option<Relation> = None;
    for d in &u.disjuncts {
        if d.head.terms.len() != first.head.terms.len() {
            return Err(EvalError { message: "union disjuncts have different head arity".into() });
        }
        match eval_cq(d, catalog) {
            Ok(r) => {
                acc = Some(match acc {
                    None => r,
                    Some(a) => {
                        let schema = a.schema.clone();
                        let mut rows = a.into_rows();
                        rows.extend(r.into_rows());
                        Relation::with_rows(schema, rows)
                    }
                });
            }
            Err(_) => continue,
        }
    }
    match acc {
        Some(r) => Ok(r.distinct()),
        None => {
            // Every disjunct failed; return an empty relation of the right shape.
            Ok(Relation::new(a_schema(first)))
        }
    }
}

fn a_schema(q: &ConjunctiveQuery) -> RelSchema {
    RelSchema::text(
        q.head.relation.clone(),
        &q.head
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Var(v) => v.clone(),
                Term::Const(_) => format!("c{i}"),
            })
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut course = Relation::new(RelSchema::text("course", &["id", "title", "dept"]));
        course.insert(vec!["c1".into(), "Databases".into(), "cs".into()]);
        course.insert(vec!["c2".into(), "Ancient Greece".into(), "hist".into()]);
        course.insert(vec!["c3".into(), "Compilers".into(), "cs".into()]);
        c.register(course);
        let mut teaches = Relation::new(RelSchema::text("teaches", &["prof", "cid"]));
        teaches.insert(vec!["ada".into(), "c1".into()]);
        teaches.insert(vec!["bob".into(), "c2".into()]);
        teaches.insert(vec!["ada".into(), "c3".into()]);
        c.register(teaches);
        let mut size = Relation::new(RelSchema::new(
            "enrollment",
            vec![
                revere_storage::Attribute::text("cid"),
                revere_storage::Attribute::int("n"),
            ],
        ));
        size.insert(vec!["c1".into(), Value::Int(120)]);
        size.insert(vec!["c2".into(), Value::Int(35)]);
        size.insert(vec!["c3".into(), Value::Int(60)]);
        c.register(size);
        c
    }

    #[test]
    fn single_atom_scan() {
        let q = parse_query("q(T) :- course(I, T, D)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn join_two_atoms() {
        let q = parse_query("q(P, T) :- teaches(P, I), course(I, T, D)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.contains(&vec!["ada".into(), "Databases".into()]));
    }

    #[test]
    fn constants_filter() {
        let q = parse_query("q(T) :- course(I, T, 'cs')").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn comparisons_filter() {
        let q = parse_query("q(T) :- course(I, T, D), enrollment(I, N), N > 50").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&vec!["Ancient Greece".into()]));
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut c = Catalog::new();
        let mut e = Relation::new(RelSchema::text("e", &["a", "b"]));
        e.insert(vec!["x".into(), "x".into()]);
        e.insert(vec!["x".into(), "y".into()]);
        c.register(e);
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        assert_eq!(eval_cq(&q, &c).unwrap().len(), 1);
    }

    #[test]
    fn three_way_join_chain() {
        let q = parse_query(
            "q(P, N) :- teaches(P, I), course(I, T, 'cs'), enrollment(I, N)",
        )
        .unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn constant_in_head() {
        let q = parse_query("q(P, 'fixed') :- teaches(P, I)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert!(r.iter().all(|t| t[1] == Value::str("fixed")));
        assert_eq!(r.len(), 2); // distinct over (ada, bob)
    }

    #[test]
    fn set_semantics() {
        let q = parse_query("q(P) :- teaches(P, I)").unwrap();
        assert_eq!(eval_cq(&q, &catalog()).unwrap().len(), 2);
    }

    #[test]
    fn unknown_relation_errors() {
        let q = parse_query("q(X) :- nothere(X)").unwrap();
        assert!(eval_cq(&q, &catalog()).is_err());
    }

    #[test]
    fn arity_mismatch_errors() {
        let q = parse_query("q(X) :- course(X)").unwrap();
        assert!(eval_cq(&q, &catalog()).is_err());
    }

    #[test]
    fn cartesian_when_disconnected() {
        let q = parse_query("q(P, N) :- teaches(P, 'c1'), enrollment('c2', N)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&vec!["ada".into(), Value::Int(35)]));
    }

    #[test]
    fn union_merges_and_dedups() {
        let u = UnionQuery {
            disjuncts: vec![
                parse_query("q(T) :- course(I, T, 'cs')").unwrap(),
                parse_query("q(T) :- course(I, T, D)").unwrap(),
            ],
        };
        assert_eq!(eval_union(&u, &catalog()).unwrap().len(), 3);
    }

    #[test]
    fn union_skips_unavailable_disjunct() {
        let u = UnionQuery {
            disjuncts: vec![
                parse_query("q(T) :- gone.course(I, T)").unwrap(),
                parse_query("q(T) :- course(I, T, 'hist')").unwrap(),
            ],
        };
        assert_eq!(eval_union(&u, &catalog()).unwrap().len(), 1);
    }

    #[test]
    fn empty_result_has_head_shape() {
        let q = parse_query("q(T, D) :- course(I, T, D), D = 'none'").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.schema.arity(), 2);
    }
}
