//! Evaluation of conjunctive queries over a storage catalog.
//!
//! The evaluator is the execution layer behind every peer's "query
//! answering ... with respect to its peer schema" service (§3.1) and behind
//! MANGROVE's RDF-style queries. It executes an explicit [`Plan`] (see
//! [`crate::plan`]): a statistics-costed join order over the query's
//! canonical body, performing one hash join per step with constant and
//! repeated-variable filters pushed into the hash build. Callers that
//! already hold a cached plan use [`eval_cq_bag_planned`]; the plain
//! entry points plan on the fly.
//!
//! [`eval_naive`] is the differential oracle: a nested-loop evaluator in
//! textual body order with no indexes and no reordering, slow and
//! obviously correct. `tests/differential_query.rs` holds every planned
//! path to `planned ≡ naive` on generated inputs.
//!
//! Two engines execute the same plans behind this facade: the historical
//! row-at-a-time engine ([`eval_cq_bag_profiled_obs_row`]) and the
//! columnar batch engine in [`crate::vec`], selected by [`ExecMode`]
//! (vectorized by default). They are byte-identical in answers, counters,
//! and step profiles — `tests/differential_vec.rs` gates it.

use crate::ast::{Atom, ConjunctiveQuery, Term, UnionQuery};
use crate::plan::{plan_cq, Plan};
use crate::vec::{eval_cq_bag_profiled_obs_vec, eval_cq_bindings_vec, ExecMode, VecOpts};
use revere_storage::{Catalog, ColumnarBatch, RelStats, Relation, RelSchema, Tuple, Value};
use revere_util::obs::{names, Obs, SpanHandle};
use std::collections::HashMap;
use std::sync::Arc;

/// Anything the evaluator can read relations from.
///
/// [`Catalog`] is the usual source; the PDMS implements this for overlay
/// structures (base catalog + delta relations) so incremental view
/// maintenance can swap one atom's relation without copying base data.
pub trait Source {
    /// Borrow the named relation, if present.
    fn relation(&self, name: &str) -> Option<&Relation>;

    /// Statistics for the named relation, when the source keeps them.
    /// Estimates only — the planner must survive `None` (and does, by
    /// falling back to raw row counts).
    fn stats(&self, _name: &str) -> Option<&RelStats> {
        None
    }

    /// Learned equijoin selectivity for a column pair, when the source
    /// carries feedback from previously executed plans (see
    /// [`revere_storage::stats::JoinStats`]). The planner prefers this
    /// over any model-based estimate and must survive `None`.
    fn join_overlap(&self, _rel_a: &str, _col_a: usize, _rel_b: &str, _col_b: usize) -> Option<f64> {
        None
    }

    /// The columnar image of the named relation, consumed by the
    /// vectorized engine (see [`crate::vec`]). The default pivots afresh
    /// on every call; catalog-backed sources override it with an
    /// epoch-keyed cache so repeated evaluations against unchanged data
    /// pay the row→column pivot once.
    fn batch(&self, name: &str) -> Option<Arc<ColumnarBatch>> {
        self.relation(name).map(|r| Arc::new(ColumnarBatch::from_relation(r)))
    }
}

impl Source for Catalog {
    fn relation(&self, name: &str) -> Option<&Relation> {
        self.get(name)
    }

    fn batch(&self, name: &str) -> Option<Arc<ColumnarBatch>> {
        Catalog::batch(self, name)
    }

    fn stats(&self, name: &str) -> Option<&RelStats> {
        self.rel_stats(name)
    }

    fn join_overlap(&self, rel_a: &str, col_a: usize, rel_b: &str, col_b: usize) -> Option<f64> {
        self.join_stats().overlap(rel_a, col_a, rel_b, col_b)
    }
}

/// Error raised when a query references a relation the catalog lacks or
/// uses it at the wrong arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "eval error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Check every body atom up front: the relation must exist at the right
/// arity. Centralized so the planned, traced, and naive evaluators agree
/// *exactly* on which queries error — error behavior must not depend on
/// join order (it used to: a query could return an empty `Ok` or an `Err`
/// for the same missing relation depending on where the greedy order put
/// it).
pub(crate) fn validate<S: Source>(q: &ConjunctiveQuery, catalog: &S) -> Result<(), EvalError> {
    for atom in &q.body {
        let rel = catalog.relation(&atom.relation).ok_or_else(|| EvalError {
            message: format!("unknown relation {:?}", atom.relation),
        })?;
        if rel.schema.arity() != atom.terms.len() {
            return Err(EvalError {
                message: format!(
                    "relation {} has arity {}, atom uses {}",
                    atom.relation,
                    rel.schema.arity(),
                    atom.terms.len()
                ),
            });
        }
    }
    Ok(())
}

/// How one atom's columns relate to the current binding table: constants
/// to check, repeated variables *within* the atom, join columns (variables
/// already bound) and new variables. One analysis drives both the hash
/// build and the probe, so a repeated variable is keyed and filtered
/// identically wherever the plan places the atom. Shared with
/// [`crate::dataflow`], whose circuits compile the same analysis into
/// per-stage arrangements.
#[derive(Debug, Clone)]
pub(crate) struct AtomSplit {
    /// The atom's arity (number of term positions).
    pub(crate) arity: usize,
    /// (atom column, required constant).
    pub(crate) const_checks: Vec<(usize, Value)>,
    /// (atom column, earlier atom column holding the same variable).
    pub(crate) self_joins: Vec<(usize, usize)>,
    /// (atom column, binding-table column) for already-bound variables.
    pub(crate) join_cols: Vec<(usize, usize)>,
    /// (atom column, variable) for variables this atom binds first.
    pub(crate) new_vars: Vec<(usize, String)>,
}

impl AtomSplit {
    pub(crate) fn analyze(atom: &Atom, var_cols: &[String]) -> Self {
        let mut split = AtomSplit {
            arity: atom.terms.len(),
            const_checks: Vec::new(),
            self_joins: Vec::new(),
            join_cols: Vec::new(),
            new_vars: Vec::new(),
        };
        let mut seen_in_atom: HashMap<&str, usize> = HashMap::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(c) => split.const_checks.push((i, c.clone())),
                Term::Var(v) => {
                    if let Some(&first) = seen_in_atom.get(v.as_str()) {
                        split.self_joins.push((i, first));
                    } else {
                        seen_in_atom.insert(v, i);
                        if let Some(bcol) = var_cols.iter().position(|c| c == v) {
                            split.join_cols.push((i, bcol));
                        } else {
                            split.new_vars.push((i, v.clone()));
                        }
                    }
                }
            }
        }
        split
    }

    /// Does a stored row survive the filters pushed into the hash build?
    pub(crate) fn row_passes(&self, row: &Tuple) -> bool {
        self.const_checks.iter().all(|(i, c)| &row[*i] == c)
            && self.self_joins.iter().all(|(i, j)| row[*i] == row[*j])
    }
}

/// Evaluate a conjunctive query, returning a relation named after the
/// query head whose columns are the head terms in order (set semantics).
pub fn eval_cq<S: Source>(q: &ConjunctiveQuery, catalog: &S) -> Result<Relation, EvalError> {
    Ok(eval_cq_bag(q, catalog)?.distinct())
}

/// Evaluate under *bag* semantics: one output row per derivation (binding
/// of the body). The counting-based incremental view maintenance in the
/// PDMS needs derivation multiplicities, not just the answer set.
pub fn eval_cq_bag<S: Source>(q: &ConjunctiveQuery, catalog: &S) -> Result<Relation, EvalError> {
    let plan = plan_cq(q, catalog);
    eval_cq_bag_planned(q, &plan, catalog)
}

/// Bag evaluation under a caller-supplied (possibly cached) plan. The
/// plan must apply to `q` (same canonical key); the output is always
/// projected from `q`'s own head, so a plan cached from an isomorphic
/// disjunct yields byte-identical answers to planning fresh.
pub fn eval_cq_bag_planned<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
) -> Result<Relation, EvalError> {
    Ok(eval_cq_bag_traced(q, plan, catalog)?.0)
}

/// Like [`eval_cq_bag_planned`], also returning the binding-table size
/// after each join step (parallel to `plan.order`) — the measured
/// counterpart of the plan's estimates, used by EXPLAIN-style reporting
/// and the E13 experiment.
pub fn eval_cq_bag_traced<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
) -> Result<(Relation, Vec<usize>), EvalError> {
    eval_cq_bag_traced_obs(q, plan, catalog, &Obs::disabled(), &SpanHandle::none())
}

/// What one executed join step measured — the actuals the feedback loop
/// compares against the plan's estimates. `bindings / (probes ·
/// build_rows)` is the observed equijoin selectivity for the step's join
/// columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepProfile {
    /// Binding-table rows after this step.
    pub bindings: usize,
    /// Stored rows surviving the filters pushed into the hash build.
    pub build_rows: usize,
    /// Binding-table rows probed into the step's hash index.
    pub probes: usize,
}

/// [`eval_cq_bag_traced`] with full observability: one child span of
/// `parent` per executed join step (relation, rows scanned, build rows,
/// probes, output bindings) and `query.eval.*` counters in `obs`.
/// Execution is identical whether or not `obs`/`parent` record anything —
/// instrumentation must never change answers (the `trace_obs`
/// integration test holds this to byte-identity).
pub fn eval_cq_bag_traced_obs<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
) -> Result<(Relation, Vec<usize>), EvalError> {
    let (rel, profiles) = eval_cq_bag_profiled_obs(q, plan, catalog, obs, parent)?;
    Ok((rel, profiles.iter().map(|p| p.bindings).collect()))
}

/// The full-fidelity evaluator: like [`eval_cq_bag_traced_obs`] but
/// returning a complete [`StepProfile`] per plan step (parallel to
/// `plan.order`), which the PDMS feedback loop turns into observed join
/// selectivities. The other bag evaluators are thin wrappers over this.
/// Dispatches on [`ExecMode::default`]; use
/// [`eval_cq_bag_profiled_obs_mode`] to pick an engine explicitly.
pub fn eval_cq_bag_profiled_obs<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
) -> Result<(Relation, Vec<StepProfile>), EvalError> {
    eval_cq_bag_profiled_obs_mode(q, plan, catalog, obs, parent, ExecMode::default())
}

/// [`eval_cq_bag_profiled_obs`] with an explicit engine choice. The two
/// engines are byte-identical in output (including row order), counters,
/// span fields, step profiles, and errors — `tests/differential_vec.rs`
/// gates that equivalence — so the mode only changes *how fast* the same
/// answer arrives. [`ExecMode::Row`] is the historical per-tuple engine,
/// kept as the ablation baseline E18 measures against.
pub fn eval_cq_bag_profiled_obs_mode<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
    mode: ExecMode,
) -> Result<(Relation, Vec<StepProfile>), EvalError> {
    match mode {
        ExecMode::Row => eval_cq_bag_profiled_obs_row(q, plan, catalog, obs, parent),
        ExecMode::Vectorized => {
            eval_cq_bag_profiled_obs_vec(q, plan, catalog, obs, parent, &VecOpts::default())
        }
    }
}

/// [`eval_cq_bag_planned`] with an explicit engine and a metrics sink but
/// no tracing — the shape the parallel network path wants. Counters
/// (`query.eval.steps`, `query.eval.step_bindings`, …) are emitted exactly
/// as on the traced path; only spans are absent.
pub fn eval_cq_bag_planned_mode<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    mode: ExecMode,
    obs: &Obs,
) -> Result<Relation, EvalError> {
    Ok(eval_cq_bag_profiled_obs_mode(q, plan, catalog, obs, &SpanHandle::none(), mode)?.0)
}

/// Realize the bindings of a planned conjunctive query **without
/// materializing answers**: the join pipeline and comparison filters run
/// in full — identical counters, spans, and [`StepProfile`]s to the
/// corresponding bag evaluator — but the head is never projected into
/// owned tuples. Returns the surviving binding count and the per-step
/// profiles.
///
/// This is the EXPLAIN-ANALYZE / adaptive-feedback shape: everything the
/// q-error machinery consumes (realized bindings per step, observed join
/// selectivities) comes from the profiles, and skipping the answer
/// copy-out keeps a plan probe from paying for strings nobody reads. E18
/// benchmarks the engines head-to-head on exactly this kernel.
pub fn eval_cq_bindings_mode<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
    mode: ExecMode,
) -> Result<(usize, Vec<StepProfile>), EvalError> {
    match mode {
        ExecMode::Row => {
            eval_bindings_row(q, plan, catalog, obs, parent).map(|(rows, _, t)| (rows.len(), t))
        }
        ExecMode::Vectorized => {
            eval_cq_bindings_vec(q, plan, catalog, obs, parent, &VecOpts::default())
        }
    }
}

/// The row-at-a-time engine: one hash join per plan step over a binding
/// table of owned tuples. Superseded by the vectorized engine
/// ([`crate::vec`]) as the default, retained as an ablation
/// ([`ExecMode::Row`]) and as the semantic reference the differential
/// gate holds the columnar engine to.
pub fn eval_cq_bag_profiled_obs_row<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
) -> Result<(Relation, Vec<StepProfile>), EvalError> {
    let (rows, var_cols, trace) = eval_bindings_row(q, plan, catalog, obs, parent)?;

    // Project the head.
    let resolve = |t: &Term, binding: &Tuple| -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => var_cols
                .iter()
                .position(|c| c == v)
                .map(|i| binding[i].clone()),
        }
    };
    let mut out = Relation::new(a_schema(q));
    'row: for b in &rows {
        let mut tuple = Vec::with_capacity(q.head.terms.len());
        for t in &q.head.terms {
            match resolve(t, b) {
                Some(v) => tuple.push(v),
                None => continue 'row,
            }
        }
        out.insert(tuple);
    }
    Ok((out, trace))
}

/// The row engine's binding-realization core: the join pipeline and
/// comparison filters, stopping short of head projection. Returns the
/// surviving binding tuples, the variable columns naming them, and the
/// per-step profiles. [`eval_cq_bag_profiled_obs_row`] projects the head
/// on top; [`eval_cq_bindings_mode`] exposes the counts directly.
fn eval_bindings_row<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
) -> Result<(Vec<Tuple>, Vec<String>, Vec<StepProfile>), EvalError> {
    if !plan.applies_to(q) {
        return Err(EvalError {
            message: format!("plan for {:?} does not apply to {:?}", plan.key(), q.canonical_key()),
        });
    }
    validate(q, catalog)?;
    let canonical = q.canonical_order();

    // Binding table: column per variable, row per partial assignment.
    let mut var_cols: Vec<String> = Vec::new();
    let mut rows: Vec<Tuple> = vec![Vec::new()]; // one empty binding
    let mut trace = Vec::with_capacity(plan.order.len());

    for (step_no, &ci) in plan.order.iter().enumerate() {
        let atom = &q.body[canonical[ci]];
        let rel = catalog.relation(&atom.relation).expect("validated above");
        let split = AtomSplit::analyze(atom, &var_cols);
        let span = parent.child("eval.step");
        span.set("step", step_no + 1);
        span.set("relation", &atom.relation);

        // Build the step's hash index: rows surviving the pushed-down
        // filters (constants, within-atom repeats), keyed by the columns
        // of already-bound variables. The same split drives both the
        // build and the probe keys, so a repeated variable is filtered
        // identically wherever the plan places the atom.
        let mut index: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::new();
        let mut build_rows = 0usize;
        for row in rel.iter() {
            if !split.row_passes(row) {
                continue;
            }
            build_rows += 1;
            let key: Vec<&Value> = split.join_cols.iter().map(|(i, _)| &row[*i]).collect();
            index.entry(key).or_default().push(row);
        }

        // Probe with every current binding.
        let mut next_rows: Vec<Tuple> = Vec::new();
        for binding in &rows {
            let key: Vec<&Value> = split.join_cols.iter().map(|(_, b)| &binding[*b]).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut extended = binding.clone();
                    for (i, _) in &split.new_vars {
                        extended.push(m[*i].clone());
                    }
                    next_rows.push(extended);
                }
            }
        }
        obs.inc(names::QUERY_EVAL_STEPS_EXECUTED, 1);
        obs.inc(names::QUERY_EVAL_ROWS_SCANNED, rel.len() as u64);
        obs.inc(names::QUERY_EVAL_ROWS_BUILT, build_rows as u64);
        obs.inc(names::QUERY_EVAL_ROWS_PROBED, rows.len() as u64);
        obs.observe(names::QUERY_EVAL_STEP_BINDINGS, next_rows.len() as u64);
        span.set("rows_scanned", rel.len());
        span.set("build_rows", build_rows);
        span.set("probes", rows.len());
        span.set("est_bindings", format!("{:.1}", plan.steps[step_no].est_bindings));
        span.set("bindings", next_rows.len());
        span.finish();
        for (_, v) in split.new_vars {
            var_cols.push(v);
        }
        let probes = rows.len();
        rows = next_rows;
        trace.push(StepProfile { bindings: rows.len(), build_rows, probes });
        if rows.is_empty() {
            break;
        }
    }
    // An empty binding table short-circuits; later steps see 0 bindings
    // (and no build/probe work, so feedback skips them).
    trace.resize(plan.order.len(), StepProfile::default());

    // Apply comparisons.
    let resolve = |t: &Term, binding: &Tuple| -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => var_cols
                .iter()
                .position(|c| c == v)
                .map(|i| binding[i].clone()),
        }
    };
    for c in &q.comparisons {
        rows.retain(|b| {
            match (resolve(&c.left, b), resolve(&c.right, b)) {
                (Some(l), Some(r)) => c.op.apply(&l, &r),
                _ => false, // unsafe comparisons never pass (parser rejects them anyway)
            }
        });
    }
    Ok((rows, var_cols, trace))
}

/// Evaluate a union of conjunctive queries (set semantics across
/// disjuncts). Disjuncts referencing unknown relations contribute nothing
/// rather than failing the whole union — in a PDMS a rewriting may mention
/// a peer whose data is unavailable, and "the system should make use of
/// relevant data anywhere" that *is* reachable.
pub fn eval_union<S: Source>(u: &UnionQuery, catalog: &S) -> Result<Relation, EvalError> {
    eval_union_with(u, catalog, eval_cq)
}

/// Union evaluation through the naive oracle: same skip-unavailable and
/// dedup semantics as [`eval_union`], different per-disjunct evaluator.
pub fn eval_naive_union<S: Source>(u: &UnionQuery, catalog: &S) -> Result<Relation, EvalError> {
    eval_union_with(u, catalog, eval_naive)
}

/// Union evaluation with a caller-supplied per-disjunct evaluator —
/// the hook the PDMS uses to execute each disjunct under a cached plan
/// while keeping [`eval_union`]'s skip-unavailable and dedup semantics.
pub fn eval_union_with<S, F>(u: &UnionQuery, catalog: &S, eval_one: F) -> Result<Relation, EvalError>
where
    S: Source,
    F: Fn(&ConjunctiveQuery, &S) -> Result<Relation, EvalError>,
{
    let Some(first) = u.disjuncts.first() else {
        return Err(EvalError { message: "empty union".into() });
    };
    let mut acc: Option<Relation> = None;
    for d in &u.disjuncts {
        if d.head.terms.len() != first.head.terms.len() {
            return Err(EvalError { message: "union disjuncts have different head arity".into() });
        }
        match eval_one(d, catalog) {
            Ok(r) => {
                acc = Some(match acc {
                    None => r,
                    Some(a) => {
                        let schema = a.schema.clone();
                        let mut rows = a.into_rows();
                        rows.extend(r.into_rows());
                        Relation::with_rows(schema, rows)
                    }
                });
            }
            Err(_) => continue,
        }
    }
    match acc {
        Some(r) => Ok(r.distinct()),
        None => {
            // Every disjunct failed; return an empty relation of the right shape.
            Ok(Relation::new(a_schema(first)))
        }
    }
}

/// Set-semantics naive evaluation: [`eval_naive_bag`] then distinct.
pub fn eval_naive<S: Source>(q: &ConjunctiveQuery, catalog: &S) -> Result<Relation, EvalError> {
    Ok(eval_naive_bag(q, catalog)?.distinct())
}

/// The differential oracle: nested-loop evaluation in *textual* body
/// order — no planner, no indexes, no pushed filters, one environment
/// per derivation. Quadratically slow and obviously correct; any
/// divergence from [`eval_cq_bag`] (up to row order) is a planner or
/// executor bug.
pub fn eval_naive_bag<S: Source>(q: &ConjunctiveQuery, catalog: &S) -> Result<Relation, EvalError> {
    validate(q, catalog)?;
    let mut envs: Vec<HashMap<String, Value>> = vec![HashMap::new()];
    for atom in &q.body {
        let rel = catalog.relation(&atom.relation).expect("validated above");
        let mut next: Vec<HashMap<String, Value>> = Vec::new();
        for env in &envs {
            'row: for row in rel.iter() {
                let mut ext = env.clone();
                for (i, t) in atom.terms.iter().enumerate() {
                    match t {
                        Term::Const(c) => {
                            if &row[i] != c {
                                continue 'row;
                            }
                        }
                        Term::Var(v) => match ext.get(v) {
                            Some(bound) => {
                                if bound != &row[i] {
                                    continue 'row;
                                }
                            }
                            None => {
                                ext.insert(v.clone(), row[i].clone());
                            }
                        },
                    }
                }
                next.push(ext);
            }
        }
        envs = next;
    }

    let resolve = |t: &Term, env: &HashMap<String, Value>| -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => env.get(v).cloned(),
        }
    };
    for c in &q.comparisons {
        envs.retain(|e| match (resolve(&c.left, e), resolve(&c.right, e)) {
            (Some(l), Some(r)) => c.op.apply(&l, &r),
            _ => false,
        });
    }

    let mut out = Relation::new(a_schema(q));
    'env: for e in &envs {
        let mut tuple = Vec::with_capacity(q.head.terms.len());
        for t in &q.head.terms {
            match resolve(t, e) {
                Some(v) => tuple.push(v),
                None => continue 'env,
            }
        }
        out.insert(tuple);
    }
    Ok(out)
}

pub(crate) fn a_schema(q: &ConjunctiveQuery) -> RelSchema {
    RelSchema::text(
        q.head.relation.clone(),
        &q.head
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Var(v) => v.clone(),
                Term::Const(_) => format!("c{i}"),
            })
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut course = Relation::new(RelSchema::text("course", &["id", "title", "dept"]));
        course.insert(vec!["c1".into(), "Databases".into(), "cs".into()]);
        course.insert(vec!["c2".into(), "Ancient Greece".into(), "hist".into()]);
        course.insert(vec!["c3".into(), "Compilers".into(), "cs".into()]);
        c.register(course);
        let mut teaches = Relation::new(RelSchema::text("teaches", &["prof", "cid"]));
        teaches.insert(vec!["ada".into(), "c1".into()]);
        teaches.insert(vec!["bob".into(), "c2".into()]);
        teaches.insert(vec!["ada".into(), "c3".into()]);
        c.register(teaches);
        let mut size = Relation::new(RelSchema::new(
            "enrollment",
            vec![
                revere_storage::Attribute::text("cid"),
                revere_storage::Attribute::int("n"),
            ],
        ));
        size.insert(vec!["c1".into(), Value::Int(120)]);
        size.insert(vec!["c2".into(), Value::Int(35)]);
        size.insert(vec!["c3".into(), Value::Int(60)]);
        c.register(size);
        c
    }

    #[test]
    fn single_atom_scan() {
        let q = parse_query("q(T) :- course(I, T, D)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn join_two_atoms() {
        let q = parse_query("q(P, T) :- teaches(P, I), course(I, T, D)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.contains(&vec!["ada".into(), "Databases".into()]));
    }

    #[test]
    fn constants_filter() {
        let q = parse_query("q(T) :- course(I, T, 'cs')").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn comparisons_filter() {
        let q = parse_query("q(T) :- course(I, T, D), enrollment(I, N), N > 50").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&vec!["Ancient Greece".into()]));
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut c = Catalog::new();
        let mut e = Relation::new(RelSchema::text("e", &["a", "b"]));
        e.insert(vec!["x".into(), "x".into()]);
        e.insert(vec!["x".into(), "y".into()]);
        c.register(e);
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        assert_eq!(eval_cq(&q, &c).unwrap().len(), 1);
    }

    #[test]
    fn three_way_join_chain() {
        let q = parse_query(
            "q(P, N) :- teaches(P, I), course(I, T, 'cs'), enrollment(I, N)",
        )
        .unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn constant_in_head() {
        let q = parse_query("q(P, 'fixed') :- teaches(P, I)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert!(r.iter().all(|t| t[1] == Value::str("fixed")));
        assert_eq!(r.len(), 2); // distinct over (ada, bob)
    }

    #[test]
    fn set_semantics() {
        let q = parse_query("q(P) :- teaches(P, I)").unwrap();
        assert_eq!(eval_cq(&q, &catalog()).unwrap().len(), 2);
    }

    #[test]
    fn unknown_relation_errors() {
        let q = parse_query("q(X) :- nothere(X)").unwrap();
        assert!(eval_cq(&q, &catalog()).is_err());
    }

    #[test]
    fn arity_mismatch_errors() {
        let q = parse_query("q(X) :- course(X)").unwrap();
        assert!(eval_cq(&q, &catalog()).is_err());
    }

    #[test]
    fn cartesian_when_disconnected() {
        let q = parse_query("q(P, N) :- teaches(P, 'c1'), enrollment('c2', N)").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&vec!["ada".into(), Value::Int(35)]));
    }

    #[test]
    fn union_merges_and_dedups() {
        let u = UnionQuery {
            disjuncts: vec![
                parse_query("q(T) :- course(I, T, 'cs')").unwrap(),
                parse_query("q(T) :- course(I, T, D)").unwrap(),
            ],
        };
        assert_eq!(eval_union(&u, &catalog()).unwrap().len(), 3);
    }

    #[test]
    fn union_skips_unavailable_disjunct() {
        let u = UnionQuery {
            disjuncts: vec![
                parse_query("q(T) :- gone.course(I, T)").unwrap(),
                parse_query("q(T) :- course(I, T, 'hist')").unwrap(),
            ],
        };
        assert_eq!(eval_union(&u, &catalog()).unwrap().len(), 1);
    }

    #[test]
    fn empty_result_has_head_shape() {
        let q = parse_query("q(T, D) :- course(I, T, D), D = 'none'").unwrap();
        let r = eval_cq(&q, &catalog()).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.schema.arity(), 2);
    }

    #[test]
    fn naive_oracle_agrees_on_the_basics() {
        let c = catalog();
        for text in [
            "q(T) :- course(I, T, D)",
            "q(P, T) :- teaches(P, I), course(I, T, D)",
            "q(T) :- course(I, T, 'cs')",
            "q(T) :- course(I, T, D), enrollment(I, N), N > 50",
            "q(P, N) :- teaches(P, 'c1'), enrollment('c2', N)",
        ] {
            let q = parse_query(text).unwrap();
            let planned = eval_cq_bag(&q, &c).unwrap().sorted();
            let naive = eval_naive_bag(&q, &c).unwrap().sorted();
            assert_eq!(planned.rows(), naive.rows(), "{text}");
        }
    }

    #[test]
    fn naive_errors_match_planned_errors() {
        let c = catalog();
        // Even when the *first* atom would already empty the binding
        // table, a later bad atom must error in both evaluators.
        let q = parse_query("q(T) :- course(I, T, 'nope'), ghost(T)").unwrap();
        assert!(eval_cq_bag(&q, &c).is_err());
        assert!(eval_naive_bag(&q, &c).is_err());
    }

    #[test]
    fn cached_plan_executes_isomorphic_query_with_its_own_head() {
        let c = catalog();
        let a = parse_query("q(P, T) :- teaches(P, I), course(I, T, D)").unwrap();
        let b = parse_query("q(X, U) :- teaches(X, C), course(C, U, E)").unwrap();
        let plan = crate::plan::plan_cq(&a, &c);
        let via_cache = eval_cq_bag_planned(&b, &plan, &c).unwrap();
        let fresh = eval_cq_bag(&b, &c).unwrap();
        assert_eq!(via_cache.sorted().rows(), fresh.sorted().rows());
        assert_eq!(
            via_cache.schema.attr_names().collect::<Vec<_>>(),
            fresh.schema.attr_names().collect::<Vec<_>>(),
        );
    }

    #[test]
    fn planned_rejects_non_isomorphic_query() {
        let c = catalog();
        let a = parse_query("q(T) :- course(I, T, D)").unwrap();
        let b = parse_query("q(P) :- teaches(P, I)").unwrap();
        let plan = crate::plan::plan_cq(&a, &c);
        assert!(eval_cq_bag_planned(&b, &plan, &c).is_err());
    }

    #[test]
    fn trace_reports_per_step_binding_counts() {
        let c = catalog();
        let q = parse_query("q(T) :- course(I, T, 'cs'), teaches(P, I)").unwrap();
        let plan = crate::plan::plan_cq(&q, &c);
        let (r, trace) = eval_cq_bag_traced(&q, &plan, &c).unwrap();
        assert_eq!(trace.len(), plan.order.len());
        assert_eq!(*trace.last().unwrap(), r.len());
    }

    #[test]
    fn naive_union_matches_planned_union() {
        let c = catalog();
        let u = UnionQuery {
            disjuncts: vec![
                parse_query("q(T) :- gone.course(I, T)").unwrap(),
                parse_query("q(T) :- course(I, T, 'cs')").unwrap(),
                parse_query("q(T) :- course(I, T, D)").unwrap(),
            ],
        };
        assert_eq!(
            eval_union(&u, &c).unwrap().sorted().rows(),
            eval_naive_union(&u, &c).unwrap().sorted().rows(),
        );
    }
}
