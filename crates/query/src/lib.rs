//! Query substrate for the REVERE reproduction.
//!
//! Piazza's query answering "performs query unfolding and query
//! reformulation using views" over GLAV mappings \[19\] (§3.1.1 of the
//! paper). This crate implements the machinery that sentence depends on,
//! from scratch:
//!
//! * [`ast`] — conjunctive queries ([`ConjunctiveQuery`]) and unions of
//!   them ([`UnionQuery`]), with safety checking.
//! * [`parse`] — a datalog-style concrete syntax,
//!   `q(X, T) :- course(X, T, S), S > 100`.
//! * [`unify`] — substitutions and homomorphism search between atom sets.
//! * [`containment`] — query containment and equivalence via containment
//!   mappings (the canonical-database test), plus query [`minimize`].
//! * [`plan`] — statistics-driven join planning: explainable, cacheable
//!   [`Plan`]s costed from catalog statistics, with the historical greedy
//!   heuristic kept as an ablation baseline.
//! * [`eval`] — plan-driven evaluation of (unions of) conjunctive queries
//!   over a [`revere_storage::Catalog`], plus the nested-loop
//!   [`eval_naive`] differential oracle.
//! * [`vec`] — the vectorized columnar engine behind the same facade:
//!   selection bitmaps, typed batched hash joins, morsel-parallel probes
//!   with join-in-spawn-order determinism ([`ExecMode`] picks the engine;
//!   the row evaluator stays as the ablation).
//! * [`dataflow`] — DBSP-style delta dataflow: Z-set [`Delta`]s, bilinear
//!   incremental joins with arranged state, and [`Circuit`]s that keep a
//!   planned conjunctive body fresh in O(|Δ|) per update.
//! * [`unfold`] — global-as-view unfolding of defined relations.
//! * [`minicon`] — the MiniCon algorithm for answering queries using views
//!   (local-as-view rewriting).
//! * [`glav`] — GLAV mappings normalized into a GAV rule plus a LAV view
//!   over a shared virtual relation, the form the PDMS reformulator
//!   consumes.
//!
//! [`minimize`]: containment::minimize

pub mod ast;
pub mod containment;
pub mod dataflow;
pub mod eval;
pub mod glav;
pub mod minicon;
pub mod parse;
pub mod plan;
pub mod unfold;
pub mod unify;
pub mod vec;

pub use ast::{Atom, CmpOp, Comparison, ConjunctiveQuery, Term, UnionQuery};
pub use containment::{contained_in, equivalent, minimize};
pub use dataflow::{
    AggFn, AggregateState, Arrangement, Circuit, Delta, DeltaBatch, DistinctState, JoinState,
};
pub use eval::{
    eval_cq, eval_cq_bag, eval_cq_bag_planned, eval_cq_bag_planned_mode,
    eval_cq_bag_profiled_obs, eval_cq_bindings_mode, eval_cq_bag_profiled_obs_mode, eval_cq_bag_profiled_obs_row,
    eval_cq_bag_traced, eval_cq_bag_traced_obs, eval_naive, eval_naive_bag, eval_naive_union,
    eval_union, eval_union_with, Source, StepProfile,
};
pub use vec::{eval_cq_bag_planned_vec, eval_cq_bag_profiled_obs_vec, eval_cq_bindings_vec, ExecMode, VecOpts};
pub use plan::{
    explain_analyze, explain_analyze_with, plan_cq, plan_cq_opts, plan_cq_with, q_error,
    ExplainAnalyze, JoinPair, Plan, PlanStep, Selectivity, Strategy,
};
pub use glav::GlavMapping;
pub use minicon::rewrite_using_views;
pub use parse::parse_query;
pub use unfold::{unfold_once, unfold_with, ViewDef};
