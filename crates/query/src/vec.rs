//! Vectorized columnar execution of planned conjunctive queries.
//!
//! The row engine in [`crate::eval`] executes one hash join per plan step
//! over a binding table of `Vec<Value>` tuples — every probe allocates a
//! key vector, every output binding clones a whole tuple. This module
//! executes the *same plan over the same semantics* in batches: the
//! binding table is one [`ColumnVec`] per variable, build-side filters
//! (constants, within-atom repeated variables) are selection bitmaps
//! combined with [`SelBitmap`] algebra, hash joins build and probe with
//! per-column typed keys (`i64`, dictionary codes) where both sides share
//! a concrete type, and match output is a pair of index vectors gathered
//! into new columns — integer and code copies instead of per-row clones.
//!
//! **Determinism contract.** The vectorized engine reproduces the row
//! engine's output *row order exactly* (probe bindings in order, matches
//! in relation insert order), emits the same `query.eval.*` counters,
//! span fields, and [`StepProfile`]s, and returns the same errors.
//! Morsel-parallel execution preserves this byte-identity: worker threads
//! claim fixed-size morsels from an atomic counter, each morsel's output
//! lands in its own slot, and slots are concatenated in morsel order — a
//! pure function of the input, independent of thread scheduling (the
//! same discipline as `PdmsNetwork::query_parallel`). Workers never touch
//! the tracer or metrics; the coordinator emits per-step totals once.
//!
//! The row engine remains available as an ablation via [`ExecMode::Row`];
//! `tests/differential_vec.rs` holds the two engines and the nested-loop
//! oracle together on generated corpora.

use crate::ast::{ConjunctiveQuery, Term};
use crate::eval::{a_schema, validate, AtomSplit, EvalError, Source, StepProfile};
use crate::plan::Plan;
use revere_storage::{ColumnVec, ColumnarBatch, Relation, SelBitmap, Value};
use revere_util::obs::{names, Obs, SpanHandle};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which execution engine evaluates a planned conjunctive query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The historical row-at-a-time engine, kept as an ablation baseline.
    Row,
    /// The columnar batch engine (the default).
    #[default]
    Vectorized,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::Row => write!(f, "row"),
            ExecMode::Vectorized => write!(f, "vectorized"),
        }
    }
}

/// Tuning knobs for the vectorized engine. Every setting changes only
/// *how* work is scheduled, never what is computed — output is
/// byte-identical across all values (a test invariant).
#[derive(Debug, Clone, Copy)]
pub struct VecOpts {
    /// Rows per morsel when a phase runs in parallel.
    pub morsel_rows: usize,
    /// Phases over fewer rows than this stay sequential (parallelism has
    /// a fixed spawn cost; tiny inputs never win it back).
    pub parallel_min_rows: usize,
    /// Upper bound on worker threads (actual count is also capped by
    /// available parallelism and the number of morsels).
    pub max_threads: usize,
}

impl Default for VecOpts {
    fn default() -> Self {
        VecOpts { morsel_rows: 2048, parallel_min_rows: 8192, max_threads: usize::MAX }
    }
}

impl VecOpts {
    /// Never spawn: single-threaded execution regardless of input size.
    pub fn sequential() -> Self {
        VecOpts { max_threads: 1, ..VecOpts::default() }
    }

    /// Parallelize at any size with the given morsel granularity — the
    /// configuration the morsel byte-identity tests sweep.
    pub fn forced_parallel(morsel_rows: usize) -> Self {
        VecOpts { morsel_rows, parallel_min_rows: 0, max_threads: usize::MAX }
    }
}

/// Worker threads to use for one phase under `opts`.
fn worker_count(opts: &VecOpts) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(opts.max_threads)
        .max(1)
}

/// Split `0..n` into contiguous morsels of `opts.morsel_rows` and map `f`
/// over each, returning per-morsel results *in morsel order*.
///
/// Below `opts.parallel_min_rows` (or with one worker/morsel) this is a
/// plain sequential loop. Otherwise scoped worker threads claim morsel
/// indices from a shared atomic counter; each result lands in the slot of
/// its morsel index, workers are joined in spawn order, and the slots are
/// read out in index order — so the concatenation is a pure function of
/// `n`, `morsel_rows`, and `f`, whatever the thread scheduling did.
fn morsel_map<T, F>(n: usize, opts: &VecOpts, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let step = opts.morsel_rows.max(1);
    let ranges: Vec<Range<usize>> =
        (0..n).step_by(step).map(|s| s..(s + step).min(n)).collect();
    let workers = worker_count(opts).min(ranges.len());
    if n < opts.parallel_min_rows || workers <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (ranges, next, f) = (&ranges, &next, &f);
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= ranges.len() {
                            break;
                        }
                        out.push((i, f(ranges[i].clone())));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, t) in h.join().expect("morsel worker panicked") {
                slots[i] = Some(t);
            }
        }
    });
    slots.into_iter().map(|t| t.expect("every morsel claimed")).collect()
}

/// The columnar binding table: one column per bound variable, `rows`
/// logical rows. Starts as the row engine does — zero columns, one empty
/// binding.
struct Bindings {
    names: Vec<String>,
    cols: Vec<ColumnVec>,
    rows: usize,
}

/// One step's hash index over the filtered build rows, in the tightest
/// key representation the join columns admit. Typed paths require both
/// sides to hold the same concrete [`ColumnVec`] variant — `Value`
/// equality is numeric across `Int`/`Float`, which only the generic
/// `Value`-keyed path honors (see `revere_storage::column` docs).
/// A multiply-fold hasher for the typed join indexes. The default SipHash
/// is collision-hardened but costs more than the whole probe loop body on
/// `i64`/dictionary-code keys; these maps are built and probed, never
/// iterated, so a weak fast hash cannot leak nondeterminism into output
/// order. The `Generic` index keeps the default hasher: its `Vec<Value>`
/// keys must match the row engine's hash/equality semantics exactly.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    fn fold(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.fold(b as u64);
        }
    }
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }
    fn write_i64(&mut self, n: i64) {
        self.fold(n as u64);
    }
}

type FxMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

enum BuildIndex {
    /// No join columns: every probe row matches every build row
    /// (leading scan or cartesian extension). Holds the filtered row
    /// indices in relation order.
    All(Vec<u32>),
    /// Single join column, both sides `Int`.
    Int(FxMap<i64, Vec<u32>>),
    /// Single join column, both sides `Str`: keyed by *build* dictionary
    /// code, probed through a probe-code → build-code translation.
    Str {
        index: FxMap<u32, Vec<u32>>,
        /// `trans[probe_code]` = the build dictionary's code for the same
        /// string, or `None` when the build side never saw it.
        trans: Vec<Option<u32>>,
    },
    /// Anything else: materialized `Value` keys, matching the row
    /// engine's hash/equality semantics by construction.
    Generic(HashMap<Vec<Value>, Vec<u32>>),
}

/// Build the step's hash index from the filtered build rows.
fn build_index(
    split: &AtomSplit,
    batch: &ColumnarBatch,
    bind: &Bindings,
    sel_rows: &[u32],
) -> BuildIndex {
    if split.join_cols.is_empty() {
        return BuildIndex::All(sel_rows.to_vec());
    }
    if let [(bcol, pcol)] = split.join_cols.as_slice() {
        match (batch.column(*bcol), &bind.cols[*pcol]) {
            (ColumnVec::Int(build), ColumnVec::Int(_)) => {
                let mut index: FxMap<i64, Vec<u32>> = FxMap::default();
                for &r in sel_rows {
                    index.entry(build[r as usize]).or_default().push(r);
                }
                return BuildIndex::Int(index);
            }
            (ColumnVec::Str { dict: bd, codes: bc }, ColumnVec::Str { dict: pd, .. }) => {
                let mut index: FxMap<u32, Vec<u32>> = FxMap::default();
                for &r in sel_rows {
                    index.entry(bc[r as usize]).or_default().push(r);
                }
                let trans: Vec<Option<u32>> = if Arc::ptr_eq(bd, pd) {
                    (0..pd.len() as u32).map(Some).collect()
                } else {
                    let codes: HashMap<&str, u32> = bd
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (s.as_str(), i as u32))
                        .collect();
                    pd.iter().map(|s| codes.get(s.as_str()).copied()).collect()
                };
                return BuildIndex::Str { index, trans };
            }
            _ => {}
        }
    }
    let mut index: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
    for &r in sel_rows {
        let key: Vec<Value> =
            split.join_cols.iter().map(|(i, _)| batch.column(*i).get(r as usize)).collect();
        index.entry(key).or_default().push(r);
    }
    BuildIndex::Generic(index)
}

/// Probe every binding row against the index, producing the match pairs
/// `(probe row, build row)` in exactly the row engine's order: bindings
/// ascending, matches within a binding in relation insert order.
fn probe(
    index: &BuildIndex,
    split: &AtomSplit,
    bind: &Bindings,
    opts: &VecOpts,
) -> (Vec<u32>, Vec<u32>) {
    // The leading-scan / cartesian shape: morselize over the *build*
    // rows when there is a single probe binding (the common scan case),
    // over the bindings otherwise.
    if let BuildIndex::All(rows) = index {
        if bind.rows == 1 {
            let parts = morsel_map(rows.len(), opts, |range| rows[range].to_vec());
            let build: Vec<u32> = parts.concat();
            return (vec![0; build.len()], build);
        }
        let parts = morsel_map(bind.rows, opts, |range| {
            let mut p = Vec::with_capacity(range.len() * rows.len());
            let mut b = Vec::with_capacity(range.len() * rows.len());
            for probe_row in range {
                for &m in rows {
                    p.push(probe_row as u32);
                    b.push(m);
                }
            }
            (p, b)
        });
        return concat_pairs(parts);
    }
    let parts = morsel_map(bind.rows, opts, |range| {
        let mut p: Vec<u32> = Vec::new();
        let mut b: Vec<u32> = Vec::new();
        let mut emit = |probe_row: usize, matches: &[u32]| {
            for &m in matches {
                p.push(probe_row as u32);
                b.push(m);
            }
        };
        match index {
            BuildIndex::All(_) => unreachable!("handled above"),
            BuildIndex::Int(map) => {
                let keys = bind.cols[split.join_cols[0].1]
                    .as_ints()
                    .expect("Int index implies Int probe column");
                for probe_row in range {
                    if let Some(matches) = map.get(&keys[probe_row]) {
                        emit(probe_row, matches);
                    }
                }
            }
            BuildIndex::Str { index: map, trans } => {
                let (_, codes) = bind.cols[split.join_cols[0].1]
                    .as_dict()
                    .expect("Str index implies Str probe column");
                for probe_row in range {
                    if let Some(code) = trans[codes[probe_row] as usize] {
                        if let Some(matches) = map.get(&code) {
                            emit(probe_row, matches);
                        }
                    }
                }
            }
            BuildIndex::Generic(map) => {
                for probe_row in range {
                    let key: Vec<Value> = split
                        .join_cols
                        .iter()
                        .map(|(_, b)| bind.cols[*b].get(probe_row))
                        .collect();
                    if let Some(matches) = map.get(&key) {
                        emit(probe_row, matches);
                    }
                }
            }
        }
        (p, b)
    });
    concat_pairs(parts)
}

/// Concatenate per-morsel `(probe, build)` pairs in morsel order.
fn concat_pairs(parts: Vec<(Vec<u32>, Vec<u32>)>) -> (Vec<u32>, Vec<u32>) {
    let total: usize = parts.iter().map(|(p, _)| p.len()).sum();
    let mut probe = Vec::with_capacity(total);
    let mut build = Vec::with_capacity(total);
    for (p, b) in parts {
        probe.extend(p);
        build.extend(b);
    }
    (probe, build)
}

/// A head or comparison term resolved against the binding columns.
enum Resolved {
    Const(Value),
    Col(usize),
    /// The variable is not bound by the body — the row engine drops
    /// every row that reaches such a term.
    Missing,
}

fn resolve_term(t: &Term, names: &[String]) -> Resolved {
    match t {
        Term::Const(c) => Resolved::Const(c.clone()),
        Term::Var(v) => match names.iter().position(|n| n == v) {
            Some(i) => Resolved::Col(i),
            None => Resolved::Missing,
        },
    }
}

/// The full-fidelity vectorized evaluator: the columnar counterpart of
/// [`crate::eval::eval_cq_bag_profiled_obs_row`], same plan, same
/// counters and spans, same errors, byte-identical output row order.
pub fn eval_cq_bag_profiled_obs_vec<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
    opts: &VecOpts,
) -> Result<(Relation, Vec<StepProfile>), EvalError> {
    let (bind, trace) = eval_bindings_vec(q, plan, catalog, obs, parent, opts)?;

    // Project the head. Materializing output tuples is where string
    // payloads finally leave their dictionaries — the dominant cost on
    // answer-heavy queries — and rows are independent, so the pass is
    // morselized; concatenating morsels in index order keeps the output
    // in binding order.
    let mut out = Relation::new(a_schema(q));
    let head: Vec<Resolved> =
        q.head.terms.iter().map(|t| resolve_term(t, &bind.names)).collect();
    if !head.iter().any(|r| matches!(r, Resolved::Missing)) {
        let chunks = morsel_map(bind.rows, opts, |range| {
            range
                .map(|row| {
                    head.iter()
                        .map(|r| match r {
                            Resolved::Const(v) => v.clone(),
                            Resolved::Col(i) => bind.cols[*i].get(row),
                            Resolved::Missing => unreachable!("guarded above"),
                        })
                        .collect::<Vec<Value>>()
                })
                .collect::<Vec<_>>()
        });
        for chunk in chunks {
            for row in chunk {
                out.insert(row);
            }
        }
    }
    Ok((out, trace))
}

/// The vectorized engine's binding-realization core: everything up to
/// (not including) head projection. [`eval_cq_bindings_vec`] exposes the
/// counts; the bag evaluator materializes answers on top.
fn eval_bindings_vec<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
    opts: &VecOpts,
) -> Result<(Bindings, Vec<StepProfile>), EvalError> {
    if !plan.applies_to(q) {
        return Err(EvalError {
            message: format!("plan for {:?} does not apply to {:?}", plan.key(), q.canonical_key()),
        });
    }
    validate(q, catalog)?;
    let canonical = q.canonical_order();

    let mut bind = Bindings { names: Vec::new(), cols: Vec::new(), rows: 1 };
    let mut trace = Vec::with_capacity(plan.order.len());
    // Columnar images come from the source ([`Source::batch`]): catalogs
    // serve an epoch-keyed cached image, so repeated evaluations — the
    // realized-bindings hot loop, every disjunct of a reformulated query —
    // skip the row→column pivot entirely. The per-eval map just keeps a
    // relation joined at several steps from hitting the source twice.
    let mut batches: HashMap<String, Arc<ColumnarBatch>> = HashMap::new();

    for (step_no, &ci) in plan.order.iter().enumerate() {
        let atom = &q.body[canonical[ci]];
        let batch: &ColumnarBatch = batches
            .entry(atom.relation.clone())
            .or_insert_with(|| catalog.batch(&atom.relation).expect("validated above"));
        let split = AtomSplit::analyze(atom, &bind.names);
        let span = parent.child("eval.step");
        span.set("step", step_no + 1);
        span.set("relation", &atom.relation);

        // Build-side filters as bitmap algebra: one bitmap per pushed
        // constant and per within-atom repeated variable, intersected.
        let mut sel = SelBitmap::all(batch.rows());
        for (i, c) in &split.const_checks {
            sel = sel.and(&batch.column(*i).eq_const(c));
        }
        for (i, j) in &split.self_joins {
            sel = sel.and(&batch.column(*i).eq_elementwise(batch.column(*j)));
        }
        let sel_rows = sel.ones();
        let build_rows = sel_rows.len();

        let index = build_index(&split, batch, &bind, &sel_rows);
        let (probe_idx, build_idx) = probe(&index, &split, &bind, opts);

        obs.inc(names::QUERY_EVAL_STEPS_EXECUTED, 1);
        obs.inc(names::QUERY_EVAL_ROWS_SCANNED, batch.rows() as u64);
        obs.inc(names::QUERY_EVAL_ROWS_BUILT, build_rows as u64);
        obs.inc(names::QUERY_EVAL_ROWS_PROBED, bind.rows as u64);
        obs.observe(names::QUERY_EVAL_STEP_BINDINGS, probe_idx.len() as u64);
        span.set("rows_scanned", batch.rows());
        span.set("build_rows", build_rows);
        span.set("probes", bind.rows);
        span.set("est_bindings", format!("{:.1}", plan.steps[step_no].est_bindings));
        span.set("bindings", probe_idx.len());
        span.finish();

        // Gather: surviving bindings keep their columns re-indexed by
        // probe row; each newly bound variable is a gather of its atom
        // column by build row — integer and dictionary-code copies, no
        // per-row tuple clones.
        let mut next_cols: Vec<ColumnVec> =
            bind.cols.iter().map(|c| c.gather(&probe_idx)).collect();
        for (i, v) in &split.new_vars {
            next_cols.push(batch.column(*i).gather(&build_idx));
            bind.names.push(v.clone());
        }
        let probes = bind.rows;
        bind.cols = next_cols;
        bind.rows = probe_idx.len();
        trace.push(StepProfile { bindings: bind.rows, build_rows, probes });
        if bind.rows == 0 {
            break;
        }
    }
    // An empty binding table short-circuits; later steps see 0 bindings
    // (and no build/probe work, so feedback skips them).
    trace.resize(plan.order.len(), StepProfile::default());

    // Apply comparisons: a row survives iff every comparison passes —
    // the conjunction of per-comparison keep bitmaps, which is exactly
    // the row engine's sequential `retain`. Rows are independent, so the
    // pass is morselized like any other operator.
    if !q.comparisons.is_empty() && bind.rows > 0 {
        let terms: Vec<(Resolved, Resolved)> = q
            .comparisons
            .iter()
            .map(|c| (resolve_term(&c.left, &bind.names), resolve_term(&c.right, &bind.names)))
            .collect();
        let unsafe_cmp = terms
            .iter()
            .any(|(l, r)| matches!(l, Resolved::Missing) || matches!(r, Resolved::Missing));
        let keep = if unsafe_cmp {
            // Unsafe comparisons never pass (parser rejects them anyway)
            // — an all-zero bitmap, like the row engine's per-row `false`.
            SelBitmap::none(bind.rows)
        } else {
            let value_at = |r: &Resolved, row: usize| match r {
                Resolved::Const(v) => v.clone(),
                Resolved::Col(i) => bind.cols[*i].get(row),
                Resolved::Missing => unreachable!("handled above"),
            };
            let parts = morsel_map(bind.rows, opts, |range| {
                range
                    .filter(|&row| {
                        q.comparisons
                            .iter()
                            .zip(&terms)
                            .all(|(c, (l, r))| c.op.apply(&value_at(l, row), &value_at(r, row)))
                    })
                    .map(|row| row as u32)
                    .collect::<Vec<u32>>()
            });
            SelBitmap::from_indices(bind.rows, &parts.concat())
        };
        bind.cols = bind.cols.iter().map(|c| c.filter(&keep)).collect();
        bind.rows = keep.count_ones();
    }
    Ok((bind, trace))
}

/// Realize bindings without materializing answers — the vectorized side
/// of [`crate::eval::eval_cq_bindings_mode`]. Same pipeline, counters,
/// and spans as [`eval_cq_bag_profiled_obs_vec`]; only the head
/// projection (answer copy-out) is skipped.
pub fn eval_cq_bindings_vec<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    obs: &Obs,
    parent: &SpanHandle,
    opts: &VecOpts,
) -> Result<(usize, Vec<StepProfile>), EvalError> {
    eval_bindings_vec(q, plan, catalog, obs, parent, opts).map(|(b, t)| (b.rows, t))
}

/// Bag evaluation under a caller-supplied plan with explicit engine
/// options — the entry point the morsel byte-identity tests sweep.
pub fn eval_cq_bag_planned_vec<S: Source>(
    q: &ConjunctiveQuery,
    plan: &Plan,
    catalog: &S,
    opts: &VecOpts,
) -> Result<Relation, EvalError> {
    Ok(eval_cq_bag_profiled_obs_vec(q, plan, catalog, &Obs::disabled(), &SpanHandle::none(), opts)?
        .0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq_bag_profiled_obs_row;
    use crate::parse::parse_query;
    use crate::plan::plan_cq;
    use revere_storage::{Catalog, RelSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut course = Relation::new(RelSchema::text("course", &["id", "title", "dept"]));
        course.insert(vec!["c1".into(), "Databases".into(), "cs".into()]);
        course.insert(vec!["c2".into(), "Ancient Greece".into(), "hist".into()]);
        course.insert(vec!["c3".into(), "Compilers".into(), "cs".into()]);
        c.register(course);
        let mut size = Relation::new(RelSchema::new(
            "enrollment",
            vec![
                revere_storage::Attribute::text("cid"),
                revere_storage::Attribute::int("n"),
            ],
        ));
        size.insert(vec!["c1".into(), Value::Int(120)]);
        size.insert(vec!["c2".into(), Value::Int(35)]);
        size.insert(vec!["c3".into(), Value::Int(60)]);
        c.register(size);
        let mut edge = Relation::new(RelSchema::new(
            "edge",
            vec![revere_storage::Attribute::int("a"), revere_storage::Attribute::int("b")],
        ));
        for (a, b) in [(1, 2), (2, 3), (2, 2), (3, 1), (1, 3)] {
            edge.insert(vec![Value::Int(a), Value::Int(b)]);
        }
        c.register(edge);
        c
    }

    /// Vectorized output must match the row engine byte for byte —
    /// including row order — on representative query shapes, and both
    /// engines must report identical step profiles.
    #[test]
    fn vectorized_matches_row_engine_exactly() {
        let c = catalog();
        for text in [
            "q(T) :- course(I, T, D)",
            "q(T) :- course(I, T, 'cs')",
            "q(T, N) :- course(I, T, D), enrollment(I, N)",
            "q(T, N) :- course(I, T, D), enrollment(I, N), N > 50",
            "q(A, B) :- edge(A, B), edge(B, A)",
            "q(A) :- edge(A, A)",
            "q(T, B) :- course(I, T, 'cs'), edge(2, B)",
            "q(X, Y) :- edge(X, Y), edge(Y, Z), edge(Z, X)",
        ] {
            let q = parse_query(text).unwrap();
            let plan = plan_cq(&q, &c);
            let (row, row_trace) = eval_cq_bag_profiled_obs_row(
                &q,
                &plan,
                &c,
                &Obs::disabled(),
                &SpanHandle::none(),
            )
            .unwrap();
            for opts in [VecOpts::default(), VecOpts::sequential(), VecOpts::forced_parallel(2)]
            {
                let (vec, vec_trace) = eval_cq_bag_profiled_obs_vec(
                    &q,
                    &plan,
                    &c,
                    &Obs::disabled(),
                    &SpanHandle::none(),
                    &opts,
                )
                .unwrap();
                assert_eq!(vec.rows(), row.rows(), "row order diverged: {text}");
                assert_eq!(vec_trace, row_trace, "step profiles diverged: {text}");
            }
        }
    }

    /// The engines agree on errors, too — same messages, not just both
    /// erring.
    #[test]
    fn errors_match_row_engine() {
        let c = catalog();
        let q = parse_query("q(X) :- ghost(X)").unwrap();
        let plan = plan_cq(&q, &c);
        let row =
            eval_cq_bag_profiled_obs_row(&q, &plan, &c, &Obs::disabled(), &SpanHandle::none());
        let vec = eval_cq_bag_profiled_obs_vec(
            &q,
            &plan,
            &c,
            &Obs::disabled(),
            &SpanHandle::none(),
            &VecOpts::default(),
        );
        assert_eq!(row.unwrap_err(), vec.unwrap_err());
        // A plan that does not apply errors identically as well.
        let other = parse_query("q(N) :- enrollment(C, N)").unwrap();
        let wrong = plan_cq(&other, &c);
        let q2 = parse_query("q(T) :- course(I, T, D)").unwrap();
        let row = eval_cq_bag_profiled_obs_row(
            &q2,
            &wrong,
            &c,
            &Obs::disabled(),
            &SpanHandle::none(),
        );
        let vec = eval_cq_bag_profiled_obs_vec(
            &q2,
            &wrong,
            &c,
            &Obs::disabled(),
            &SpanHandle::none(),
            &VecOpts::default(),
        );
        assert_eq!(row.unwrap_err(), vec.unwrap_err());
    }

    /// Counters are emitted identically whether or not a recording span
    /// is attached, and identically across the two engines — the
    /// traced/untraced parity the parallel query path depends on.
    #[test]
    fn counters_agree_traced_untraced_and_across_engines() {
        let c = catalog();
        let q = parse_query("q(T, N) :- course(I, T, 'cs'), enrollment(I, N), N > 50").unwrap();
        let plan = plan_cq(&q, &c);
        let run = |mode: ExecMode, traced: bool| {
            let obs = Obs::enabled();
            let root = if traced { obs.span("root") } else { SpanHandle::none() };
            match mode {
                ExecMode::Row => {
                    eval_cq_bag_profiled_obs_row(&q, &plan, &c, &obs, &root).unwrap()
                }
                ExecMode::Vectorized => eval_cq_bag_profiled_obs_vec(
                    &q,
                    &plan,
                    &c,
                    &obs,
                    &root,
                    &VecOpts::default(),
                )
                .unwrap(),
            };
            root.finish();
            obs.metrics().unwrap().snapshot().to_string()
        };
        let baseline = run(ExecMode::Vectorized, true);
        assert_eq!(baseline, run(ExecMode::Vectorized, false), "tracing changed counters");
        assert_eq!(baseline, run(ExecMode::Row, true), "engines disagree on counters");
        assert_eq!(baseline, run(ExecMode::Row, false));
        assert!(baseline.contains(names::QUERY_EVAL_STEP_BINDINGS), "{baseline}");
    }

    #[test]
    fn morsel_map_is_order_preserving() {
        let opts = VecOpts::forced_parallel(3);
        let out = morsel_map(20, &opts, |r| r.collect::<Vec<usize>>());
        assert_eq!(out.concat(), (0..20).collect::<Vec<usize>>());
        assert_eq!(morsel_map(0, &opts, |r| r.len()), Vec::<usize>::new());
    }
}
