//! Statistics-driven join planning for conjunctive queries.
//!
//! The evaluator used to pick its join order greedily — most shared
//! variables first, ties by raw relation size — which ignores what the
//! data actually looks like: a huge relation with a highly selective
//! constant should be joined *first*, not last. This module turns
//! ordering into an explicit, explainable [`Plan`]:
//!
//! * costs come from the catalog's incremental statistics
//!   ([`revere_storage::RelStats`], reached through [`Source::stats`]):
//!   exact value frequencies for pushed-down constant selections, distinct
//!   counts for join selectivities;
//! * the chosen order is a permutation of the *canonical* body
//!   ([`ConjunctiveQuery::canonical_order`]), so a plan cached under a
//!   query's canonical key executes any isomorphic query;
//! * [`Strategy::Greedy`] reproduces the historical heuristic, kept as the
//!   ablation baseline the E13 experiment measures against.
//!
//! A plan never changes *what* a query answers — only the join order and
//! which filters are pushed into the hash build. The differential oracle
//! (`eval::eval_naive`) checks exactly that.

use crate::ast::{ConjunctiveQuery, Term};
use crate::eval::Source;
use std::collections::HashMap;
use std::fmt;

/// Default equality selectivity when no statistics are available.
const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;

/// How the join order is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The historical heuristic: most shared variables, ties by smaller
    /// relation. Blind to constants and value distributions.
    Greedy,
    /// Order by estimated output cardinality from catalog statistics,
    /// avoiding cartesian products while any connected atom remains.
    CostBased,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Greedy => write!(f, "greedy"),
            Strategy::CostBased => write!(f, "cost-based"),
        }
    }
}

/// How equijoin selectivities are estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selectivity {
    /// The historical model, kept as the E15 ablation baseline: every
    /// equijoin is `1/max(d1,d2)` (uniform values, full containment), and
    /// joined-variable distincts are clamped by the running output
    /// estimate — the clamp that made underestimates compound with depth.
    Uniform,
    /// Prefer a learned overlap fed back from executed plans
    /// ([`Source::join_overlap`]), then the exact MCV-vs-MCV overlap
    /// `Σ_v fA(v)·fB(v)` when both sides have histograms, and only then
    /// the uniform assumption.
    #[default]
    Adaptive,
}

impl fmt::Display for Selectivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selectivity::Uniform => write!(f, "uniform"),
            Selectivity::Adaptive => write!(f, "adaptive"),
        }
    }
}

/// One equijoin column pair a step resolves: the step's own column joined
/// against the binding column first bound by `(other_relation,
/// other_col)`. This is the attribution the feedback loop needs to turn a
/// measured step selectivity into a reusable statistic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPair {
    /// Column index in this step's relation.
    pub col: usize,
    /// Relation that first bound the joined variable.
    pub other_relation: String,
    /// Column index in `other_relation`.
    pub other_col: usize,
}

/// One join step of a plan (the atom at `Plan::order[i]` of the canonical
/// body), annotated with the planner's estimates for EXPLAIN output.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Relation the step scans or probes.
    pub relation: String,
    /// Raw rows in the relation at planning time.
    pub rows: usize,
    /// Estimated rows surviving the filters pushed into the hash build
    /// (constant equalities and within-atom repeated variables).
    pub est_rows: f64,
    /// Estimated binding-table size after this step.
    pub est_bindings: f64,
    /// Number of already-bound variables used as the hash-join key
    /// (0 = leading scan or cartesian extension).
    pub join_width: usize,
    /// Filters pushed down into the build: constants + repeated-variable
    /// equalities inside the atom.
    pub pushed_filters: usize,
    /// The equijoin column pairs this step resolves (one per bound
    /// variable with a known first binder), for feedback attribution.
    pub join_pairs: Vec<JoinPair>,
    /// True when the relation was absent from the source at planning
    /// time — distinct from a genuinely empty relation (`rows == 0`).
    pub missing: bool,
}

/// An ordered, costed, explainable join plan for one conjunctive query.
#[derive(Debug, Clone)]
pub struct Plan {
    key: String,
    /// Execution order, as indices into the canonical body.
    pub order: Vec<usize>,
    /// Per-step annotations, parallel to `order`.
    pub steps: Vec<PlanStep>,
    /// Total estimated cost (sum of per-step build + output sizes).
    pub est_cost: f64,
    /// The strategy that produced the order.
    pub strategy: Strategy,
}

impl Plan {
    /// The canonical key of the query this plan was built for.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// True when this plan can execute `q`: the canonical keys match, so
    /// the canonical bodies are position-wise isomorphic.
    pub fn applies_to(&self, q: &ConjunctiveQuery) -> bool {
        self.key == q.canonical_key()
    }
}

impl Plan {
    /// Render the plan as an `EXPLAIN`-style table, one aligned line per
    /// join step. With `actuals` (per-step binding counts from
    /// [`crate::eval::eval_cq_bag_traced`], parallel to `order`) each
    /// line gains `act bind` and `q-err` columns — `EXPLAIN ANALYZE`.
    /// Column widths are computed from the estimate side only, so the
    /// shared prefix of every line is byte-identical with and without
    /// actuals and the two renderings diff cleanly.
    pub fn render(&self, actuals: Option<&[usize]>) -> String {
        let mut out = format!("plan [{}] est cost {:.1}\n", self.strategy, self.est_cost);
        let access: Vec<String> = self
            .steps
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let how = if s.join_width > 0 {
                    format!("probe on {} bound var(s)", s.join_width)
                } else if i == 0 {
                    "scan".to_string()
                } else {
                    "cartesian".to_string()
                };
                format!("{how} {}", s.relation)
            })
            .collect();
        // A relation absent at planning time renders as `missing`, not as
        // `rows 0` — EXPLAIN must distinguish "not there" from "empty".
        let rows_cell =
            |s: &PlanStep| if s.missing { "missing".to_string() } else { s.rows.to_string() };
        let width = |it: &mut dyn Iterator<Item = usize>| it.max().unwrap_or(1);
        let w_access = width(&mut access.iter().map(String::len));
        let w_rows = width(&mut self.steps.iter().map(|s| rows_cell(s).len()));
        let w_pushed = width(&mut self.steps.iter().map(|s| s.pushed_filters.to_string().len()));
        let w_est_rows = width(&mut self.steps.iter().map(|s| format!("{:.1}", s.est_rows).len()));
        let w_est_bind =
            width(&mut self.steps.iter().map(|s| format!("{:.1}", s.est_bindings).len()));
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!(
                "  {}. {:<w_access$}  rows {:>w_rows$}  pushed {:>w_pushed$}  est rows ~{:>w_est_rows$.1}  est bind ~{:>w_est_bind$.1}",
                i + 1,
                access[i],
                rows_cell(s),
                s.pushed_filters,
                s.est_rows,
                s.est_bindings,
            ));
            if let Some(acts) = actuals {
                let act = acts.get(i).copied().unwrap_or(0);
                out.push_str(&format!(
                    "  act bind {act:>8}  q-err {:>8.2}",
                    q_error(s.est_bindings, act)
                ));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Plan {
    /// An `EXPLAIN`-style dump: [`Plan::render`] without actuals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(None))
    }
}

/// The q-error of an estimate against a measured cardinality:
/// `max(est/actual, actual/est)` with both sides clamped to ≥ 1, so a
/// perfect estimate scores 1.0 and the score is symmetric in over- and
/// under-estimation. The clamp keeps "estimated 0.3, got 0" from
/// reading as a miss.
pub fn q_error(est: f64, actual: usize) -> f64 {
    let e = est.max(1.0);
    let a = (actual as f64).max(1.0);
    (e / a).max(a / e)
}

/// The result of `EXPLAIN ANALYZE`: a plan plus the measured per-step
/// binding counts from actually executing it. `Display` renders the
/// aligned est-vs-actual table (see [`Plan::render`]).
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// The executed plan.
    pub plan: Plan,
    /// Binding-table size after each step, parallel to `plan.order`.
    pub actual_bindings: Vec<usize>,
    /// Derivations produced (bag semantics).
    pub derivations: usize,
    /// Distinct answers (set semantics).
    pub answers: usize,
}

impl ExplainAnalyze {
    /// Per-step q-error of the planner's binding estimates.
    pub fn q_errors(&self) -> Vec<f64> {
        self.plan
            .steps
            .iter()
            .zip(&self.actual_bindings)
            .map(|(s, &a)| q_error(s.est_bindings, a))
            .collect()
    }

    /// The worst per-step q-error (1.0 for an empty plan).
    pub fn max_q_error(&self) -> f64 {
        self.q_errors().into_iter().fold(1.0, f64::max)
    }
}

impl fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.plan.render(Some(&self.actual_bindings)))?;
        writeln!(
            f,
            "  => {} answer(s), {} derivation(s), max q-error {:.2}",
            self.answers,
            self.derivations,
            self.max_q_error()
        )
    }
}

/// Plan `q`, execute it, and pair the estimates with measured per-step
/// cardinalities — `EXPLAIN ANALYZE` as a library call.
pub fn explain_analyze<S: Source>(
    q: &ConjunctiveQuery,
    source: &S,
) -> Result<ExplainAnalyze, crate::eval::EvalError> {
    explain_analyze_with(q, source, Strategy::CostBased, Selectivity::default())
}

/// [`explain_analyze`] with an explicit strategy and selectivity model —
/// how the E15 experiment replays the historical estimator side by side
/// with the adaptive one.
pub fn explain_analyze_with<S: Source>(
    q: &ConjunctiveQuery,
    source: &S,
    strategy: Strategy,
    selectivity: Selectivity,
) -> Result<ExplainAnalyze, crate::eval::EvalError> {
    let plan = plan_cq_opts(q, source, strategy, selectivity);
    let (rel, actual_bindings) = crate::eval::eval_cq_bag_traced(q, &plan, source)?;
    let derivations = rel.len();
    let answers = rel.distinct().len();
    Ok(ExplainAnalyze { plan, actual_bindings, derivations, answers })
}

/// What the planner tracks per bound variable: the running distinct-count
/// estimate plus which `(relation, column)` bound it first — the
/// provenance that lets a later join look up measured or MCV overlap for
/// the actual column pair being joined.
#[derive(Debug, Clone)]
struct VarBound {
    distinct: f64,
    origin: Option<(String, usize)>,
}

/// What the planner knows about one candidate atom against the current
/// set of bound variables.
struct CandidateEstimate {
    /// Rows after pushed-down filters.
    eff_rows: f64,
    /// Estimated bindings if joined next.
    est_out: f64,
    /// Shared (already-bound) variables.
    join_width: usize,
    /// Pushed constant / self-join filters.
    pushed: usize,
    /// Raw relation size (`usize::MAX` when missing, like the old greedy).
    raw_size: usize,
    /// Per new variable: (name, estimated distinct count, atom column).
    new_vars: Vec<(String, f64, usize)>,
    /// Per joined variable: (name, distinct estimate on the atom side).
    joined_vars: Vec<(String, f64)>,
    /// Equijoin column pairs with known provenance (see [`JoinPair`]).
    join_pairs: Vec<JoinPair>,
}

/// Selectivity of joining `atom`'s column `i` against an already-bound
/// variable, best evidence first: a learned observation for the exact
/// column pair, the MCV-vs-MCV overlap of the two histograms, and only
/// then the uniform `1/max(d1,d2)` containment assumption.
fn join_pair_selectivity<S: Source>(
    source: &S,
    selectivity: Selectivity,
    atom_rel: &str,
    i: usize,
    d_atom: f64,
    vb: &VarBound,
) -> f64 {
    let uniform = 1.0 / d_atom.max(vb.distinct).max(1.0);
    if selectivity == Selectivity::Uniform {
        return uniform;
    }
    let Some((o_rel, o_col)) = &vb.origin else { return uniform };
    if let Some(learned) = source.join_overlap(atom_rel, i, o_rel, *o_col) {
        return learned;
    }
    match (source.stats(atom_rel), source.stats(o_rel)) {
        (Some(sa), Some(sb)) => {
            revere_storage::mcv_join_overlap(sa, i, sb, *o_col).unwrap_or(uniform)
        }
        _ => uniform,
    }
}

fn estimate<S: Source>(
    atom: &crate::ast::Atom,
    source: &S,
    selectivity: Selectivity,
    bound: &HashMap<String, VarBound>,
    cur_bindings: f64,
) -> CandidateEstimate {
    let rel = source.relation(&atom.relation);
    let stats = source.stats(&atom.relation);
    let rows = rel.map(|r| r.len()).unwrap_or(0) as f64;
    let raw_size = rel.map(|r| r.len()).unwrap_or(usize::MAX);
    let mut eff = rows;
    let mut pushed = 0usize;
    let mut join_sel = 1.0f64;
    let mut join_width = 0usize;
    let mut seen_in_atom: HashMap<&str, usize> = HashMap::new();
    let mut new_vars: Vec<(String, f64, usize)> = Vec::new();
    let mut joined_vars: Vec<(String, f64)> = Vec::new();
    let mut join_pairs: Vec<JoinPair> = Vec::new();
    for (i, t) in atom.terms.iter().enumerate() {
        match t {
            Term::Const(c) => {
                eff *= stats
                    .map(|s| s.selectivity_eq(i, c))
                    .unwrap_or(DEFAULT_EQ_SELECTIVITY);
                pushed += 1;
            }
            Term::Var(v) => {
                if let Some(&first) = seen_in_atom.get(v.as_str()) {
                    eff *= stats
                        .map(|s| s.selectivity_self_join(first, i))
                        .unwrap_or(DEFAULT_EQ_SELECTIVITY);
                    pushed += 1;
                    continue;
                }
                seen_in_atom.insert(v, i);
                let d_atom = stats
                    .map(|s| s.distinct(i) as f64)
                    .unwrap_or_else(|| rows.sqrt())
                    .max(1.0);
                if let Some(vb) = bound.get(v) {
                    join_sel *=
                        join_pair_selectivity(source, selectivity, &atom.relation, i, d_atom, vb);
                    join_width += 1;
                    joined_vars.push((v.clone(), d_atom));
                    if let Some((o_rel, o_col)) = &vb.origin {
                        join_pairs.push(JoinPair {
                            col: i,
                            other_relation: o_rel.clone(),
                            other_col: *o_col,
                        });
                    }
                } else {
                    new_vars.push((v.clone(), d_atom, i));
                }
            }
        }
    }
    let est_out = (cur_bindings * eff * join_sel).max(0.0);
    CandidateEstimate {
        eff_rows: eff,
        est_out,
        join_width,
        pushed,
        raw_size,
        new_vars,
        joined_vars,
        join_pairs,
    }
}

/// Plan `q` against `source` with the default cost-based strategy and
/// adaptive selectivity.
pub fn plan_cq<S: Source>(q: &ConjunctiveQuery, source: &S) -> Plan {
    plan_cq_with(q, source, Strategy::CostBased)
}

/// Plan `q` against `source` with an explicit strategy (adaptive
/// selectivity).
pub fn plan_cq_with<S: Source>(q: &ConjunctiveQuery, source: &S, strategy: Strategy) -> Plan {
    plan_cq_opts(q, source, strategy, Selectivity::default())
}

/// Plan `q` against `source` with an explicit strategy and selectivity
/// model.
pub fn plan_cq_opts<S: Source>(
    q: &ConjunctiveQuery,
    source: &S,
    strategy: Strategy,
    selectivity: Selectivity,
) -> Plan {
    let canonical = q.canonical_order();
    let mut remaining: Vec<usize> = (0..canonical.len()).collect();
    let mut bound: HashMap<String, VarBound> = HashMap::new();
    let mut cur = 1.0f64;
    let mut order = Vec::with_capacity(canonical.len());
    let mut steps = Vec::with_capacity(canonical.len());
    let mut cost = 0.0f64;

    while !remaining.is_empty() {
        // Estimate every remaining atom against the current bindings.
        let ests: Vec<(usize, CandidateEstimate)> = remaining
            .iter()
            .map(|&ci| (ci, estimate(&q.body[canonical[ci]], source, selectivity, &bound, cur)))
            .collect();
        let connected = ests.iter().any(|(_, e)| e.join_width > 0);
        let pick = match strategy {
            Strategy::CostBased => ests
                .iter()
                .enumerate()
                // While any atom shares a variable, cartesian candidates
                // are out of the running.
                .filter(|(_, (_, e))| !connected || e.join_width > 0)
                .min_by(|(_, (ci_a, a)), (_, (ci_b, b))| {
                    a.est_out
                        .partial_cmp(&b.est_out)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            a.eff_rows
                                .partial_cmp(&b.eff_rows)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .then_with(|| ci_a.cmp(ci_b))
                })
                .map(|(pos, _)| pos)
                .expect("remaining non-empty"),
            Strategy::Greedy => ests
                .iter()
                .enumerate()
                .min_by_key(|(_, (ci, e))| (std::cmp::Reverse(e.join_width), e.raw_size, *ci))
                .map(|(pos, _)| pos)
                .expect("remaining non-empty"),
        };
        let (ci, est) = &ests[pick];
        let atom = &q.body[canonical[*ci]];
        // Account the step and update the planner state.
        cost += est.eff_rows + est.est_out;
        for (v, d_atom) in &est.joined_vars {
            // Containment: a join never grows a variable's distinct count.
            let prev = bound.get(v);
            let mut d = prev.map(|b| b.distinct).unwrap_or(f64::MAX).min(*d_atom);
            if selectivity == Selectivity::Uniform {
                // Historical model only: also clamp by the running output
                // estimate. With compounding underestimates this drives
                // `d` toward 1 and every later `1/max(d1,d2)` toward the
                // wrong side — the depth-2 q-error cliff E14a measured.
                d = d.min(est.est_out.max(1.0));
            }
            let origin = prev.and_then(|b| b.origin.clone());
            bound.insert(v.clone(), VarBound { distinct: d, origin });
        }
        for (v, d, col) in &est.new_vars {
            bound.insert(
                v.clone(),
                VarBound {
                    distinct: d.min(est.est_out.max(1.0)),
                    origin: Some((atom.relation.clone(), *col)),
                },
            );
        }
        steps.push(PlanStep {
            relation: atom.relation.clone(),
            rows: if est.raw_size == usize::MAX { 0 } else { est.raw_size },
            est_rows: est.eff_rows,
            est_bindings: est.est_out,
            join_width: est.join_width,
            pushed_filters: est.pushed,
            join_pairs: est.join_pairs.clone(),
            missing: est.raw_size == usize::MAX,
        });
        cur = est.est_out;
        order.push(*ci);
        remaining.retain(|r| r != ci);
    }

    Plan { key: q.canonical_key(), order, steps, est_cost: cost, strategy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use revere_storage::{Attribute, Catalog, RelSchema, Relation, Value};

    /// A catalog where the greedy heuristic picks badly: `big` has 1000
    /// rows but a constant filter matching 2 of them; `small` has 50 rows
    /// and no filter. Greedy (blind to constants) scans `small` first.
    fn skewed_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut big = Relation::new(RelSchema::new(
            "big",
            vec![Attribute::int("k"), Attribute::text("tag")],
        ));
        for i in 0..1000i64 {
            let tag = if i < 2 { "rare" } else { "common" };
            big.insert(vec![Value::Int(i % 60), Value::str(tag)]);
        }
        c.register(big);
        let mut small = Relation::new(RelSchema::new(
            "small",
            vec![Attribute::int("k"), Attribute::int("v")],
        ));
        for i in 0..50i64 {
            small.insert(vec![Value::Int(i % 60), Value::Int(i)]);
        }
        c.register(small);
        c
    }

    #[test]
    fn cost_based_starts_with_the_selective_constant() {
        let q = parse_query("q(V) :- small(K, V), big(K, 'rare')").unwrap();
        let c = skewed_catalog();
        let plan = plan_cq(&q, &c);
        assert_eq!(plan.steps[0].relation, "big", "{plan}");
        assert!(plan.steps[0].est_rows < 5.0, "{plan}");
        let greedy = plan_cq_with(&q, &c, Strategy::Greedy);
        assert_eq!(greedy.steps[0].relation, "small", "{greedy}");
        assert!(plan.est_cost < greedy.est_cost, "{plan}\nvs\n{greedy}");
    }

    #[test]
    fn plan_transfers_between_isomorphic_queries() {
        let c = skewed_catalog();
        let a = parse_query("q(V) :- small(K, V), big(K, 'rare')").unwrap();
        let b = parse_query("q(W) :- big(J, 'rare'), small(J, W)").unwrap();
        let plan = plan_cq(&a, &c);
        assert!(plan.applies_to(&b));
        assert!(!plan.applies_to(&parse_query("q(V) :- small(K, V)").unwrap()));
    }

    #[test]
    fn connected_atoms_beat_cartesian_products() {
        let c = skewed_catalog();
        // `small` joins `big` on K; the second `small` atom is connected
        // only through V. A cartesian step must not be scheduled while a
        // connected atom remains.
        let q = parse_query("q(V) :- big(K, T), small(K, V), small(V, W)").unwrap();
        let plan = plan_cq(&q, &c);
        for (i, s) in plan.steps.iter().enumerate().skip(1) {
            assert!(s.join_width > 0, "step {} is cartesian: {plan}", i + 1);
        }
    }

    #[test]
    fn explain_dump_names_order_and_estimates() {
        let q = parse_query("q(V) :- small(K, V), big(K, 'rare')").unwrap();
        let plan = plan_cq(&q, &skewed_catalog());
        let text = plan.to_string();
        assert!(text.contains("cost-based"), "{text}");
        assert!(text.contains("scan big"), "{text}");
        assert!(text.contains("probe on 1 bound var(s)"), "{text}");
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(10.0, 10), 1.0);
        assert_eq!(q_error(100.0, 10), 10.0);
        assert_eq!(q_error(10.0, 100), 10.0);
        // Sub-1 estimates and zero actuals clamp to 1 on both sides.
        assert_eq!(q_error(0.3, 0), 1.0);
    }

    #[test]
    fn explain_and_analyze_share_an_aligned_prefix() {
        let c = skewed_catalog();
        let q = parse_query("q(V) :- small(K, V), big(K, 'rare')").unwrap();
        let ea = explain_analyze(&q, &c).unwrap();
        let explain = ea.plan.render(None);
        let analyze = ea.plan.render(Some(&ea.actual_bindings));
        // Every ANALYZE line extends the matching EXPLAIN line verbatim.
        for (e, a) in explain.lines().zip(analyze.lines()) {
            assert!(a.starts_with(e), "not a prefix:\n{e}\n{a}");
        }
        // The appended columns are aligned: every line's suffix starts at
        // the same offset.
        let offsets: Vec<usize> = analyze
            .lines()
            .skip(1)
            .map(|l| l.find("  act bind ").expect("analyze column"))
            .collect();
        assert!(offsets.windows(2).all(|w| w[0] == w[1]), "{analyze}");
        assert!(analyze.contains("q-err"), "{analyze}");
    }

    #[test]
    fn explain_analyze_reports_actuals_and_q_error() {
        let c = skewed_catalog();
        let q = parse_query("q(V) :- small(K, V), big(K, 'rare')").unwrap();
        let ea = explain_analyze(&q, &c).unwrap();
        assert_eq!(ea.actual_bindings.len(), ea.plan.order.len());
        assert_eq!(ea.q_errors().len(), ea.plan.order.len());
        assert!(ea.max_q_error() >= 1.0);
        let text = ea.to_string();
        assert!(text.contains("act bind"), "{text}");
        assert!(text.contains("max q-error"), "{text}");
    }

    #[test]
    fn missing_relation_plans_without_panicking() {
        let q = parse_query("q(X) :- ghost(X), small(X, Y)").unwrap();
        let plan = plan_cq(&q, &skewed_catalog());
        assert_eq!(plan.order.len(), 2);
        let ghost = plan.steps.iter().find(|s| s.relation == "ghost").unwrap();
        assert!(ghost.missing);
        assert_eq!(ghost.rows, 0);
    }

    #[test]
    fn missing_relation_renders_as_missing_not_rows_zero() {
        let mut c = Catalog::new();
        // A genuinely empty relation, for contrast with a missing one.
        c.create(RelSchema::text("empty", &["k"]));
        let q = parse_query("q(X) :- ghost(X), empty(X)").unwrap();
        let plan = plan_cq(&q, &c);
        let text = plan.render(None);
        let ghost_line = text.lines().find(|l| l.contains(" ghost")).unwrap();
        let empty_line = text.lines().find(|l| l.contains(" empty")).unwrap();
        assert!(ghost_line.contains("rows missing"), "{text}");
        assert!(!empty_line.contains("missing"), "empty is not missing: {text}");
        // The aligned-prefix invariant holds with the marker in play.
        let analyze = plan.render(Some(&[0, 0]));
        for (e, a) in text.lines().zip(analyze.lines()) {
            assert!(a.starts_with(e), "not a prefix:\n{e}\n{a}");
        }
    }

    #[test]
    fn adaptive_estimates_use_mcv_overlap() {
        // Two relations joining on a skewed key: `hot` is 9 of 10 rows on
        // one side, so uniform 1/max(d1,d2) badly underestimates.
        let mut c = Catalog::new();
        let mut a = Relation::new(RelSchema::text("a", &["k"]));
        let mut b = Relation::new(RelSchema::text("b", &["k", "v"]));
        for i in 0..10i64 {
            let k = if i < 9 { "hot".to_string() } else { format!("cold{i}") };
            a.insert(vec![Value::str(k.clone())]);
            b.insert(vec![Value::str(k), Value::Int(i)]);
        }
        c.register(a);
        c.register(b);
        let q = parse_query("q(K, V) :- a(K), b(K, V)").unwrap();
        let adaptive = plan_cq_opts(&q, &c, Strategy::CostBased, Selectivity::Adaptive);
        let uniform = plan_cq_opts(&q, &c, Strategy::CostBased, Selectivity::Uniform);
        // True join output: 9·9 + 1·1 = 82 bindings.
        let est_a = adaptive.steps.last().unwrap().est_bindings;
        let est_u = uniform.steps.last().unwrap().est_bindings;
        assert!((est_a - 82.0).abs() < 1e-6, "MCV overlap is exact here, got {est_a}");
        assert!(est_u < 60.0, "uniform should underestimate the skewed join, got {est_u}");
    }

    #[test]
    fn learned_overlap_beats_the_model() {
        let mut c = skewed_catalog();
        let q = parse_query("q(V) :- small(K, V), big(K, T)").unwrap();
        let before = plan_cq(&q, &c);
        // Feed back a measured selectivity for the joined pair; the next
        // plan's estimate must reflect it exactly.
        let (first, second) = (&before.steps[0], &before.steps[1]);
        let pair = &second.join_pairs[0];
        assert_eq!(pair.other_relation, first.relation);
        assert!(c.note_join_overlap(&second.relation, pair.col, &pair.other_relation, pair.other_col, 0.5));
        let after = plan_cq(&q, &c);
        let probe = after.steps.iter().find(|s| s.join_width > 0).unwrap();
        let expected = after.steps[0].est_rows * probe.est_rows * 0.5;
        assert!(
            (probe.est_bindings - expected).abs() < 1e-6,
            "learned selectivity should drive the estimate: {after}"
        );
    }

    #[test]
    fn uniform_mode_reproduces_the_historical_estimator() {
        let c = skewed_catalog();
        let q = parse_query("q(V) :- small(K, V), big(K, 'rare')").unwrap();
        let plan = plan_cq_opts(&q, &c, Strategy::CostBased, Selectivity::Uniform);
        // Historical model: `big['rare']` leads with est 2 rows, which
        // clamps K's distinct estimate to 2; the probe into small (50
        // rows, d(K)=50) then gets join_sel 1/max(50, 2) = 1/50.
        let probe = plan.steps.iter().find(|s| s.join_width > 0).unwrap();
        let lead = plan.steps.iter().find(|s| s.join_width == 0).unwrap();
        let expected = lead.est_rows * probe.est_rows / 50.0;
        assert!(
            (probe.est_bindings - expected).abs() < 1e-6,
            "uniform containment estimate changed: {plan}"
        );
    }

    #[test]
    fn planning_is_deterministic() {
        let c = skewed_catalog();
        let q = parse_query("q(V) :- small(K, V), big(K, T), small(V, W)").unwrap();
        let a = plan_cq(&q, &c);
        let b = plan_cq(&q, &c);
        assert_eq!(a.order, b.order);
        assert_eq!(a.to_string(), b.to_string());
    }
}

