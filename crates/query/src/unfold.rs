//! Global-as-view unfolding.
//!
//! In GAV-style data integration "the mediated schema is defined as a set
//! of queries over the data sources" (§3.1.1). A [`ViewDef`] is one such
//! definition: a head relation plus the conjunctive query defining it.
//! Unfolding replaces an atom over a defined relation by the definition's
//! body, unifying head arguments and freshening existential variables.

use crate::ast::{Atom, ConjunctiveQuery};
use crate::unify::{unify_atoms, Subst};
use std::sync::atomic::{AtomicU64, Ordering};

/// A view definition `head :- body` (a GAV rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// The defined relation, as an atom over the definition's variables.
    pub head: Atom,
    /// The defining query body.
    pub body: Vec<Atom>,
}

impl ViewDef {
    /// Build from a conjunctive query (`q.head` becomes the defined
    /// relation).
    pub fn from_query(q: &ConjunctiveQuery) -> Self {
        ViewDef { head: q.head.clone(), body: q.body.clone() }
    }

    /// View definition as a conjunctive query.
    pub fn as_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(self.head.clone(), self.body.clone())
    }
}

static FRESH: AtomicU64 = AtomicU64::new(0);

fn fresh_prefix() -> String {
    format!("u{}_", FRESH.fetch_add(1, Ordering::Relaxed))
}

/// Unfold the atom at `q.body[idx]` using `def`. Returns `None` if the atom
/// does not unify with the definition head (different relation, arity, or
/// clashing constants).
pub fn unfold_once(q: &ConjunctiveQuery, idx: usize, def: &ViewDef) -> Option<ConjunctiveQuery> {
    let goal = &q.body[idx];
    // Freshen the definition so its variables cannot capture the query's.
    let fresh = ConjunctiveQuery::new(def.head.clone(), def.body.clone()).rename_vars(&fresh_prefix());
    let s = unify_atoms(goal, &fresh.head, &Subst::new())?;
    let mut body: Vec<Atom> = Vec::with_capacity(q.body.len() - 1 + fresh.body.len());
    for (i, a) in q.body.iter().enumerate() {
        if i != idx {
            body.push(s.apply_atom(a));
        }
    }
    for a in &fresh.body {
        body.push(s.apply_atom(a));
    }
    Some(ConjunctiveQuery {
        head: s.apply_atom(&q.head),
        body,
        comparisons: q.comparisons.iter().map(|c| s.apply_cmp(c)).collect(),
    })
}

/// Exhaustively unfold every atom of `q` that matches some definition,
/// leaving unmatched atoms in place. Definitions whose heads mention other
/// defined relations are unfolded recursively up to `max_depth`.
///
/// Returns all complete unfoldings (one per combination of applicable
/// definitions — a relation may have several defining rules, i.e. a union).
pub fn unfold_with(
    q: &ConjunctiveQuery,
    defs: &[ViewDef],
    max_depth: usize,
) -> Vec<ConjunctiveQuery> {
    let mut results = Vec::new();
    expand(q.clone(), defs, max_depth, &mut results);
    results
}

fn expand(q: ConjunctiveQuery, defs: &[ViewDef], depth: usize, out: &mut Vec<ConjunctiveQuery>) {
    // Find the first body atom with at least one applicable definition.
    let target = q.body.iter().enumerate().find_map(|(i, a)| {
        let applicable: Vec<&ViewDef> = defs
            .iter()
            .filter(|d| d.head.relation == a.relation && d.head.terms.len() == a.terms.len())
            .collect();
        if applicable.is_empty() {
            None
        } else {
            Some((i, applicable))
        }
    });
    match target {
        None => out.push(q),
        Some(_) if depth == 0 => out.push(q), // depth exhausted: leave as-is
        Some((i, applicable)) => {
            let mut any = false;
            for d in applicable {
                if let Some(next) = unfold_once(&q, i, d) {
                    any = true;
                    expand(next, defs, depth - 1, out);
                }
            }
            if !any {
                // Head matched by name but unification failed (constant
                // clash): this disjunct is empty; drop it.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn def(src: &str) -> ViewDef {
        ViewDef::from_query(&parse_query(src).unwrap())
    }

    #[test]
    fn basic_unfold() {
        let q = parse_query("q(X) :- v(X, 'cs')").unwrap();
        let d = def("v(A, B) :- course(A, T, B)");
        let u = unfold_once(&q, 0, &d).unwrap();
        assert_eq!(u.body.len(), 1);
        assert_eq!(u.body[0].relation, "course");
        // The constant propagated into the definition body.
        assert!(u.body[0].terms.iter().any(|t| t.is_const()));
    }

    #[test]
    fn unfold_preserves_other_atoms_and_comparisons() {
        let q = parse_query("q(X, N) :- v(X), size(X, N), N > 5").unwrap();
        let d = def("v(A) :- course(A, T)");
        let u = unfold_once(&q, 0, &d).unwrap();
        assert_eq!(u.body.len(), 2);
        assert_eq!(u.comparisons.len(), 1);
    }

    #[test]
    fn existential_vars_are_freshened() {
        let q = parse_query("q(X, T) :- v(X), r(X, T)").unwrap();
        // The def uses T existentially; it must not capture the query's T.
        let d = def("v(A) :- course(A, T)");
        let u = unfold_once(&q, 0, &d).unwrap();
        let course_atom = u.body.iter().find(|a| a.relation == "course").unwrap();
        let t_in_course = course_atom.terms[1].as_var().unwrap();
        assert_ne!(t_in_course, "T", "definition's T captured the query's T");
    }

    #[test]
    fn non_matching_relation_returns_none() {
        let q = parse_query("q(X) :- w(X)").unwrap();
        assert!(unfold_once(&q, 0, &def("v(A) :- r(A)")).is_none());
    }

    #[test]
    fn constant_clash_returns_none() {
        let q = parse_query("q(X) :- v(X, 'cs')").unwrap();
        let d = def("v(A, 'hist') :- r(A)");
        assert!(unfold_once(&q, 0, &d).is_none());
    }

    #[test]
    fn unfold_with_handles_unions() {
        // v defined by two rules => two unfoldings.
        let q = parse_query("q(X) :- v(X)").unwrap();
        let defs = vec![def("v(A) :- r(A)"), def("v(A) :- s(A)")];
        let us = unfold_with(&q, &defs, 4);
        assert_eq!(us.len(), 2);
    }

    #[test]
    fn unfold_with_is_recursive_to_depth() {
        let q = parse_query("q(X) :- a(X)").unwrap();
        let defs = vec![def("a(X) :- b(X)"), def("b(X) :- c(X)")];
        let us = unfold_with(&q, &defs, 4);
        assert_eq!(us.len(), 1);
        assert_eq!(us[0].body[0].relation, "c");
        // Depth 1 stops after one level.
        let shallow = unfold_with(&q, &defs, 1);
        assert_eq!(shallow[0].body[0].relation, "b");
    }

    #[test]
    fn repeated_head_vars_in_definition() {
        let q = parse_query("q(X, Y) :- v(X, Y)").unwrap();
        let d = def("v(A, A) :- r(A)");
        let u = unfold_once(&q, 0, &d).unwrap();
        // X and Y must be identified.
        let hv = u.head_vars();
        assert_eq!(hv[0], hv[1]);
    }
}
