//! DBSP-style delta dataflow: continuous queries kept fresh in O(|Δ|).
//!
//! §3.1.2 wants materialized views maintained "versus simply invalidating
//! views and re-reading data". The counting IVM in the PDMS re-evaluates
//! delta *queries* against base relations on every updategram — correct,
//! but each round still scans the unchanged base data to rebuild its hash
//! indexes. This module removes that rescan: a [`Circuit`] compiles a
//! planned conjunctive body (reusing the [`crate::plan`] step order) into
//! a chain of bilinear incremental hash joins whose per-side state stays
//! **arranged** (indexed by join key) between updates, so one updategram
//! costs work proportional to the delta and the bindings it touches, not
//! to the base tables.
//!
//! The algebra is Z-sets: a [`Delta`] maps tuples to signed
//! multiplicities, insertions are `+w`, retractions `-w`, and operators
//! are linear (filter/map/project) or bilinear (join) in their inputs, so
//! `Δ(A ⋈ B) = ΔA ⋈ B + A ⋈ ΔB + ΔA ⋈ ΔB` — the decomposition each
//! [`JoinState`] implements by joining `ΔL` against the *updated* right
//! arrangement and `ΔR` against the *old* left arrangement.
//! [`DistinctState`] and [`AggregateState`] carry the retraction-aware
//! stateful tails (set semantics, grouped aggregates).
//!
//! `tests/differential_ivm.rs` holds every circuit byte-identical to
//! [`crate::eval::eval_cq_bag_planned`] recomputed from scratch after
//! every delta; `tests/property_tests.rs` pins the algebraic laws.

use crate::ast::{CmpOp, ConjunctiveQuery, Term};
use crate::eval::{a_schema, validate, AtomSplit, EvalError, Source};
use crate::plan::Plan;
use revere_storage::{RelSchema, Relation, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ---------------------------------------------------------------------
// Z-sets
// ---------------------------------------------------------------------

/// A Z-set: a mapping from elements to signed multiplicities, the value
/// flowing along every dataflow edge. The representation is always
/// *consolidated* — no stored entry has weight zero — so `len() == 0` iff
/// the delta changes nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta<T: Ord = Tuple> {
    entries: BTreeMap<T, i64>,
}

impl<T: Ord> Delta<T> {
    /// The empty delta.
    pub fn new() -> Self {
        Delta { entries: BTreeMap::new() }
    }

    /// Consolidate an iterator of signed entries (repeated elements sum;
    /// zero-weight results are dropped).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (T, i64)>) -> Self {
        let mut d = Delta::new();
        for (t, w) in pairs {
            d.add(t, w);
        }
        d
    }

    /// Add `w` copies of `t` (negative `w` retracts). Entries reaching
    /// weight zero are removed, keeping the Z-set consolidated.
    pub fn add(&mut self, t: T, w: i64) {
        if w == 0 {
            return;
        }
        match self.entries.get_mut(&t) {
            Some(slot) => {
                *slot += w;
                if *slot == 0 {
                    self.entries.remove(&t);
                }
            }
            None => {
                self.entries.insert(t, w);
            }
        }
    }

    /// Signed multiplicity of `t` (0 when absent).
    pub fn weight(&self, t: &T) -> i64 {
        self.entries.get(t).copied().unwrap_or(0)
    }

    /// Pointwise sum: `self += other`. Z-set addition — commutative and
    /// associative, with cancellation (an insert then its retraction
    /// leaves the empty delta).
    pub fn merge(&mut self, other: &Delta<T>)
    where
        T: Clone,
    {
        for (t, w) in &other.entries {
            self.add(t.clone(), *w);
        }
    }

    /// The additive inverse: every weight negated.
    pub fn negate(&self) -> Delta<T>
    where
        T: Clone,
    {
        Delta {
            entries: self.entries.iter().map(|(t, w)| (t.clone(), -w)).collect(),
        }
    }

    /// Number of distinct elements with nonzero weight.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no element has nonzero weight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(element, weight)` in element order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, i64)> {
        self.entries.iter().map(|(t, w)| (t, *w))
    }

    /// Elements with strictly positive weight, in order.
    pub fn positive(&self) -> impl Iterator<Item = (&T, i64)> {
        self.entries.iter().filter(|(_, w)| **w > 0).map(|(t, w)| (t, *w))
    }

    /// Linear filter: keep entries whose element satisfies `pred`.
    /// Linearity: `filter(a + b) = filter(a) + filter(b)`.
    pub fn filter(&self, mut pred: impl FnMut(&T) -> bool) -> Delta<T>
    where
        T: Clone,
    {
        Delta {
            entries: self
                .entries
                .iter()
                .filter(|(t, _)| pred(t))
                .map(|(t, w)| (t.clone(), *w))
                .collect(),
        }
    }

    /// Linear map: transform each element, consolidating collisions
    /// (a non-injective `f` sums weights, as projection must).
    pub fn map<U: Ord>(&self, mut f: impl FnMut(&T) -> U) -> Delta<U> {
        Delta::from_pairs(self.entries.iter().map(|(t, w)| (f(t), *w)))
    }

    /// Sum of all weights (the delta's net cardinality change under bag
    /// semantics).
    pub fn total_weight(&self) -> i64 {
        self.entries.values().sum()
    }
}

impl Delta<Tuple> {
    /// Linear projection onto `cols` (a [`Delta::map`] specialization).
    pub fn project(&self, cols: &[usize]) -> Delta<Tuple> {
        self.map(|t| cols.iter().map(|&c| t[c].clone()).collect())
    }

    /// The positive part as a sorted bag [`Relation`]: each tuple repeated
    /// by its multiplicity. This is what the differential harness compares
    /// byte-for-byte against a from-scratch bag recompute.
    pub fn to_bag(&self, schema: RelSchema) -> Relation {
        let mut rows = Vec::new();
        for (t, w) in self.positive() {
            for _ in 0..w {
                rows.push(t.clone());
            }
        }
        Relation::with_rows(schema, rows)
    }
}

// ---------------------------------------------------------------------
// Arrangements and the bilinear join
// ---------------------------------------------------------------------

/// A Z-set arranged (indexed) by a key: the per-side state an incremental
/// join probes instead of rescanning its input. Keys are column
/// projections of the stored tuples.
#[derive(Debug, Clone, Default)]
pub struct Arrangement {
    key_cols: Vec<usize>,
    index: HashMap<Vec<Value>, BTreeMap<Tuple, i64>>,
    distinct: usize,
}

impl Arrangement {
    /// An empty arrangement keyed by the given columns of its tuples.
    pub fn new(key_cols: Vec<usize>) -> Self {
        Arrangement { key_cols, index: HashMap::new(), distinct: 0 }
    }

    /// The key of a stored tuple.
    fn key_of(&self, t: &Tuple) -> Vec<Value> {
        self.key_cols.iter().map(|&c| t[c].clone()).collect()
    }

    /// Fold a delta into the arrangement (consolidating; groups and
    /// entries reaching weight zero are dropped). Cost is O(|delta|)
    /// index operations — touched entries only, never a full-index scan,
    /// or the "incremental" join would secretly pay O(base) per update.
    pub fn apply(&mut self, delta: &Delta) {
        for (t, w) in delta.iter() {
            let key = self.key_of(t);
            let group = self.index.entry(key).or_default();
            let slot = group.entry(t.clone()).or_insert(0);
            let was = *slot != 0;
            *slot += w;
            let is = *slot != 0;
            match (was, is) {
                (false, true) => self.distinct += 1,
                (true, false) => {
                    group.remove(t);
                    self.distinct -= 1;
                    if group.is_empty() {
                        let key = self.key_of(t);
                        self.index.remove(&key);
                    }
                }
                _ => {}
            }
        }
    }

    /// Iterate the `(tuple, weight)` entries stored under `key`.
    pub fn probe<'a>(&'a self, key: &[Value]) -> impl Iterator<Item = (&'a Tuple, i64)> + 'a {
        self.index
            .get(key)
            .into_iter()
            .flat_map(|g| g.iter().map(|(t, w)| (t, *w)))
    }

    /// Distinct tuples currently stored (arranged-state footprint).
    pub fn len(&self) -> usize {
        self.distinct
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.distinct == 0
    }
}

/// A bilinear incremental equi-join: both inputs kept arranged by their
/// join keys. One [`JoinState::push_with`] call implements
/// `Δ(L ⋈ R) = ΔL ⋈ R + L ⋈ ΔR + ΔL ⋈ ΔR` by folding `ΔR` into the right
/// arrangement *before* probing it with `ΔL`, and probing the *old* left
/// arrangement with `ΔR`.
#[derive(Debug, Clone)]
pub struct JoinState {
    left: Arrangement,
    right: Arrangement,
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    /// Tuples touched across all pushes (probe hits + folded entries) —
    /// the deterministic cost counter E17 reports.
    pub work: u64,
}

impl JoinState {
    /// A join matching `left_key` columns of left tuples against
    /// `right_key` columns of right tuples.
    pub fn new(left_key: Vec<usize>, right_key: Vec<usize>) -> Self {
        JoinState {
            left: Arrangement::new(left_key.clone()),
            right: Arrangement::new(right_key.clone()),
            left_key,
            right_key,
            work: 0,
        }
    }

    /// Push one round of input deltas; `emit(l, r, w)` receives every
    /// matched pair with its signed multiplicity (`w_l · w_r`).
    pub fn push_with(
        &mut self,
        dl: &Delta,
        dr: &Delta,
        mut emit: impl FnMut(&Tuple, &Tuple, i64),
    ) {
        self.right.apply(dr);
        self.work += (dl.len() + dr.len()) as u64;
        for (l, wl) in dl.iter() {
            let key: Vec<Value> = self.left_key.iter().map(|&c| l[c].clone()).collect();
            for (r, wr) in self.right.probe(&key) {
                self.work += 1;
                emit(l, r, wl * wr);
            }
        }
        for (r, wr) in dr.iter() {
            let key: Vec<Value> = self.right_key.iter().map(|&c| r[c].clone()).collect();
            for (l, wl) in self.left.probe(&key) {
                self.work += 1;
                emit(l, r, wl * wr);
            }
        }
        self.left.apply(dl);
    }

    /// [`JoinState::push_with`] emitting concatenated `l ++ r` tuples —
    /// the form the bilinearity property test checks against a
    /// from-scratch recompute.
    pub fn push_concat(&mut self, dl: &Delta, dr: &Delta) -> Delta {
        let mut out = Delta::new();
        self.push_with(dl, dr, |l, r, w| {
            let mut t = l.clone();
            t.extend(r.iter().cloned());
            out.add(t, w);
        });
        out
    }
}

// ---------------------------------------------------------------------
// Stateful tails: distinct and aggregates, with retraction
// ---------------------------------------------------------------------

/// Incremental `DISTINCT`: tracks input multiplicities and emits a
/// set-level delta — `+1` when an element's support crosses from
/// non-positive to positive, `-1` on the way back down. Retractions that
/// only lower a multiplicity without emptying it emit nothing.
#[derive(Debug, Clone, Default)]
pub struct DistinctState {
    counts: Delta,
}

impl DistinctState {
    /// An empty distinct operator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a bag delta in; returns the set-level output delta.
    pub fn push(&mut self, d: &Delta) -> Delta {
        let mut out = Delta::new();
        for (t, w) in d.iter() {
            let before = self.counts.weight(t);
            self.counts.add(t.clone(), w);
            let after = before + w;
            if before <= 0 && after > 0 {
                out.add(t.clone(), 1);
            } else if before > 0 && after <= 0 {
                out.add(t.clone(), -1);
            }
        }
        out
    }

    /// Elements with positive support.
    pub fn support(&self) -> usize {
        self.counts.positive().count()
    }

    /// The tracked multiplicities.
    pub fn counts(&self) -> &Delta {
        &self.counts
    }
}

/// Aggregate function of an [`AggregateState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Count of contributing rows (with multiplicity).
    Count,
    /// Sum of an integer column (non-integers contribute 0).
    Sum(usize),
}

/// Incremental grouped aggregation with retraction: each input delta
/// retracts the touched groups' old output rows and asserts their new
/// ones. Output rows are `group key ++ [aggregate value]`; a group whose
/// support drops to zero retracts its row without a replacement.
#[derive(Debug, Clone)]
pub struct AggregateState {
    group_cols: Vec<usize>,
    agg: AggFn,
    /// group key → (support, running sum).
    groups: BTreeMap<Vec<Value>, (i64, i64)>,
}

impl AggregateState {
    /// Aggregate `agg` grouped by the given columns.
    pub fn new(group_cols: Vec<usize>, agg: AggFn) -> Self {
        AggregateState { group_cols, agg, groups: BTreeMap::new() }
    }

    fn output_row(&self, key: &[Value], support: i64, sum: i64) -> Tuple {
        let value = match self.agg {
            AggFn::Count => support,
            AggFn::Sum(_) => sum,
        };
        let mut row: Tuple = key.to_vec();
        row.push(Value::Int(value));
        row
    }

    /// Fold a delta in; returns the output delta (old rows retracted, new
    /// rows asserted, only for groups whose aggregate actually changed).
    pub fn push(&mut self, d: &Delta) -> Delta {
        // Batch per group: net the whole delta before emitting, so a
        // transient within one batch does not churn the output.
        let mut touched: BTreeMap<Vec<Value>, (i64, i64)> = BTreeMap::new();
        for (t, w) in d.iter() {
            let key: Vec<Value> = self.group_cols.iter().map(|&c| t[c].clone()).collect();
            let contrib = match self.agg {
                AggFn::Count => 0,
                AggFn::Sum(col) => match &t[col] {
                    Value::Int(v) => *v,
                    _ => 0,
                },
            };
            let slot = touched.entry(key).or_insert((0, 0));
            slot.0 += w;
            slot.1 += w * contrib;
        }
        let mut out = Delta::new();
        for (key, (dw, dsum)) in touched {
            if dw == 0 && dsum == 0 {
                continue;
            }
            let (support, sum) = self.groups.get(&key).copied().unwrap_or((0, 0));
            let (nsupport, nsum) = (support + dw, sum + dsum);
            if support > 0 {
                out.add(self.output_row(&key, support, sum), -1);
            }
            if nsupport > 0 {
                out.add(self.output_row(&key, nsupport, nsum), 1);
            }
            if nsupport == 0 && nsum == 0 {
                self.groups.remove(&key);
            } else {
                self.groups.insert(key, (nsupport, nsum));
            }
        }
        out
    }

    /// Current number of groups with positive support.
    pub fn len(&self) -> usize {
        self.groups.values().filter(|(s, _)| *s > 0).count()
    }
}

// ---------------------------------------------------------------------
// Input batches
// ---------------------------------------------------------------------

/// One synchronous round of input: a signed row delta per base relation.
/// All relations' deltas are applied *simultaneously* — the bilinear join
/// decomposition makes self-joins (Δ⋈Δ) come out right within one batch.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    rels: BTreeMap<String, Delta>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `w` copies of `row` to `relation`'s delta.
    pub fn add(&mut self, relation: impl Into<String>, row: Tuple, w: i64) {
        if w != 0 {
            self.rels.entry(relation.into()).or_default().add(row, w);
        }
    }

    /// The delta on one relation, if any.
    pub fn get(&self, relation: &str) -> Option<&Delta> {
        self.rels.get(relation)
    }

    /// Relations this batch touches.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.rels.keys().map(String::as_str)
    }

    /// Total distinct changed rows across relations.
    pub fn len(&self) -> usize {
        self.rels.values().map(Delta::len).sum()
    }

    /// True when every per-relation delta is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.values().all(Delta::is_empty)
    }
}

// ---------------------------------------------------------------------
// Circuits: a planned conjunctive body as an operator chain
// ---------------------------------------------------------------------

/// A resolved term: a binding-table column, a constant, or a variable the
/// body never binds (such a comparison/head position can never be
/// satisfied — mirroring the evaluator, which drops those rows).
#[derive(Debug, Clone)]
enum Operand {
    Col(usize),
    Const(Value),
    Unbound,
}

impl Operand {
    fn resolve(term: &Term, var_cols: &[String]) -> Operand {
        match term {
            Term::Const(c) => Operand::Const(c.clone()),
            Term::Var(v) => var_cols
                .iter()
                .position(|c| c == v)
                .map(Operand::Col)
                .unwrap_or(Operand::Unbound),
        }
    }

    fn value<'a>(&'a self, binding: &'a Tuple) -> Option<&'a Value> {
        match self {
            Operand::Col(i) => Some(&binding[*i]),
            Operand::Const(c) => Some(c),
            Operand::Unbound => None,
        }
    }
}

/// One join step of a circuit: the atom's pushed-filter/key analysis plus
/// the two arrangements — the binding table entering this step, keyed by
/// the probe columns, and the atom's filtered rows, keyed by join columns.
#[derive(Debug, Clone)]
struct Stage {
    relation: String,
    split: AtomSplit,
    /// `B_{i-1}`, arranged by the binding-side join columns.
    bindings: Arrangement,
    /// The atom's rows surviving pushed filters, arranged by the
    /// atom-side join columns.
    rows: Arrangement,
}

impl Stage {
    /// Extend a binding with the atom row's newly bound variables —
    /// identical to the evaluator's probe extension.
    fn extend(&self, binding: &Tuple, row: &Tuple) -> Tuple {
        let mut out = binding.clone();
        for (i, _) in &self.split.new_vars {
            out.push(row[*i].clone());
        }
        out
    }
}

/// A compiled continuous query: the plan's join order as a chain of
/// bilinear incremental joins, then the query's comparisons (linear
/// filter) and head projection (linear map), accumulating derivation
/// counts of head tuples. Pushing a [`DeltaBatch`] costs work
/// proportional to the delta and the bindings it touches — never a base
/// relation rescan.
#[derive(Debug, Clone)]
pub struct Circuit {
    query: ConjunctiveQuery,
    stages: Vec<Stage>,
    comparisons: Vec<(Operand, CmpOp, Operand)>,
    head: Vec<Operand>,
    schema: RelSchema,
    out: Delta,
    /// Delta batches pushed so far (including the initializing one).
    pub pushes: usize,
    /// Tuples touched across all pushes: folded delta entries plus probe
    /// hits. The deterministic refresh-cost counter E17 sweeps.
    pub work: u64,
}

impl Circuit {
    /// Compile `q` under `plan` (which must
    /// [apply](crate::plan::Plan::applies_to) to it). The circuit starts
    /// empty; seed it with [`Circuit::init_full`] or push base data as
    /// insert deltas.
    pub fn new(q: &ConjunctiveQuery, plan: &Plan) -> Result<Circuit, EvalError> {
        if !plan.applies_to(q) {
            return Err(EvalError {
                message: format!(
                    "plan for {:?} does not apply to {:?}",
                    plan.key(),
                    q.canonical_key()
                ),
            });
        }
        let canonical = q.canonical_order();
        let mut var_cols: Vec<String> = Vec::new();
        let mut stages = Vec::with_capacity(plan.order.len());
        for &ci in &plan.order {
            let atom = &q.body[canonical[ci]];
            let split = AtomSplit::analyze(atom, &var_cols);
            let bind_key: Vec<usize> = split.join_cols.iter().map(|(_, b)| *b).collect();
            let row_key: Vec<usize> = split.join_cols.iter().map(|(i, _)| *i).collect();
            let mut bindings = Arrangement::new(bind_key);
            if stages.is_empty() {
                // The unit binding: one empty tuple with weight 1. It
                // never changes; stage 0's only live input is its delta.
                bindings.apply(&Delta::from_pairs([(Vec::new(), 1)]));
            }
            let new_vars: Vec<String> = split.new_vars.iter().map(|(_, v)| v.clone()).collect();
            stages.push(Stage {
                relation: atom.relation.clone(),
                split,
                bindings,
                rows: Arrangement::new(row_key),
            });
            var_cols.extend(new_vars);
        }
        let comparisons = q
            .comparisons
            .iter()
            .map(|c| {
                (
                    Operand::resolve(&c.left, &var_cols),
                    c.op,
                    Operand::resolve(&c.right, &var_cols),
                )
            })
            .collect();
        let head = q.head.terms.iter().map(|t| Operand::resolve(t, &var_cols)).collect();
        Ok(Circuit {
            query: q.clone(),
            stages,
            comparisons,
            head,
            schema: a_schema(q),
            out: Delta::new(),
            pushes: 0,
            work: 0,
        })
    }

    /// The query this circuit maintains.
    pub fn definition(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The base relations the circuit listens to. Batches touching none
    /// of these are guaranteed no-ops (the subscription layer's
    /// affected-set check).
    pub fn relations(&self) -> BTreeSet<String> {
        self.stages.iter().map(|s| s.relation.clone()).collect()
    }

    /// Seed an empty circuit with a source's current contents, as one
    /// batch of insert deltas — by bilinearity this lands exactly on the
    /// from-scratch evaluation. Errors if a body relation is missing or
    /// has the wrong arity (same contract as the evaluator).
    pub fn init_full<S: Source>(&mut self, source: &S) -> Result<(), EvalError> {
        validate(&self.query, source)?;
        let mut batch = DeltaBatch::new();
        for name in self.relations() {
            let rel = source.relation(&name).expect("validated above");
            for row in rel.iter() {
                batch.add(name.clone(), row.clone(), 1);
            }
        }
        self.push(&batch);
        Ok(())
    }

    fn cmp_pass(&self, binding: &Tuple) -> bool {
        self.comparisons.iter().all(|(l, op, r)| {
            match (l.value(binding), r.value(binding)) {
                (Some(a), Some(b)) => op.apply(a, b),
                _ => false,
            }
        })
    }

    fn project(&self, binding: &Tuple) -> Option<Tuple> {
        self.head
            .iter()
            .map(|o| o.value(binding).cloned())
            .collect::<Option<Vec<Value>>>()
    }

    /// Push one batch of base-relation deltas through the circuit and
    /// return the derivation-level output delta (head tuples with signed
    /// multiplicities), also folded into [`Circuit::derivations`].
    pub fn push(&mut self, batch: &DeltaBatch) -> Delta {
        self.pushes += 1;
        // ΔB_{-1}: the unit binding never changes.
        let mut d_bindings: Delta = Delta::new();
        for stage in &mut self.stages {
            let arity = stage.split.arity;
            let d_rows = match batch.get(&stage.relation) {
                Some(d) => d.filter(|t| t.len() == arity && stage.split.row_passes(t)),
                None => Delta::new(),
            };
            self.work += (d_rows.len() + d_bindings.len()) as u64;
            // ΔB ⋈ (R + ΔR): fold ΔR in first so the Δ⋈Δ term is included.
            stage.rows.apply(&d_rows);
            let mut next = Delta::new();
            for (b, wb) in d_bindings.iter() {
                let key: Vec<Value> =
                    stage.split.join_cols.iter().map(|(_, c)| b[*c].clone()).collect();
                for (r, wr) in stage.rows.probe(&key) {
                    self.work += 1;
                    next.add(stage.extend(b, r), wb * wr);
                }
            }
            // B_old ⋈ ΔR: probe the not-yet-updated binding arrangement.
            for (r, wr) in d_rows.iter() {
                let key: Vec<Value> =
                    stage.split.join_cols.iter().map(|(c, _)| r[*c].clone()).collect();
                for (b, wb) in stage.bindings.probe(&key) {
                    self.work += 1;
                    next.add(stage.extend(b, r), wb * wr);
                }
            }
            stage.bindings.apply(&d_bindings);
            d_bindings = next;
        }
        // Comparisons (linear filter) then head projection (linear map).
        let mut out = Delta::new();
        for (b, w) in d_bindings.iter() {
            if !self.cmp_pass(b) {
                continue;
            }
            if let Some(t) = self.project(b) {
                out.add(t, w);
            }
        }
        self.out.merge(&out);
        out
    }

    /// The maintained derivation counts of head tuples (the bag result as
    /// a Z-set).
    pub fn derivations(&self) -> &Delta {
        &self.out
    }

    /// The maintained bag result, sorted — byte-comparable with
    /// `eval_cq_bag_planned(..).sorted()`.
    pub fn output_bag(&self) -> Relation {
        self.out.to_bag(self.schema.clone())
    }

    /// The maintained set-semantics result, sorted and deduplicated.
    pub fn output_set(&self) -> Relation {
        let rows: Vec<Tuple> = self.out.positive().map(|(t, _)| t.clone()).collect();
        Relation::with_rows(self.schema.clone(), rows)
    }

    /// Distinct tuples currently derivable.
    pub fn len(&self) -> usize {
        self.out.positive().count()
    }

    /// True when the maintained result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Distinct tuples held across all arrangements — the circuit's
    /// state footprint (reported by E17 as write amplification).
    pub fn arranged_tuples(&self) -> usize {
        self.stages.iter().map(|s| s.bindings.len() + s.rows.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_cq_bag_planned;
    use crate::parse::parse_query;
    use crate::plan::plan_cq;
    use revere_storage::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a", "b"]));
        let mut s = Relation::new(RelSchema::text("s", &["b", "c"]));
        for (a, b) in [("1", "x"), ("2", "x"), ("3", "y")] {
            r.insert(vec![a.into(), b.into()]);
        }
        for (b, c2) in [("x", "p"), ("y", "q"), ("z", "r")] {
            s.insert(vec![b.into(), c2.into()]);
        }
        c.register(r);
        c.register(s);
        c
    }

    fn circuit(c: &Catalog, text: &str) -> Circuit {
        let q = parse_query(text).unwrap();
        let plan = plan_cq(&q, c);
        let mut cir = Circuit::new(&q, &plan).unwrap();
        cir.init_full(c).unwrap();
        cir
    }

    fn assert_matches_recompute(cir: &Circuit, c: &Catalog) {
        let q = cir.definition().clone();
        let plan = plan_cq(&q, c);
        let fresh = eval_cq_bag_planned(&q, &plan, c).unwrap().sorted();
        assert_eq!(cir.output_bag().rows(), fresh.rows(), "circuit diverged from recompute");
    }

    #[test]
    fn init_matches_recompute() {
        let c = catalog();
        for text in [
            "q(A, C) :- r(A, B), s(B, C)",
            "q(B) :- r(A, B)",
            "q(A) :- r(A, 'x')",
            "q(A, C) :- r(A, B), s(B, C), A != C",
        ] {
            let cir = circuit(&c, text);
            assert_matches_recompute(&cir, &c);
        }
    }

    #[test]
    fn insert_and_delete_deltas_track_recompute() {
        let mut c = catalog();
        let mut cir = circuit(&c, "q(A, C) :- r(A, B), s(B, C)");
        // Insert: a new r row joins with an existing s row.
        let mut batch = DeltaBatch::new();
        batch.add("r", vec!["4".into(), "y".into()], 1);
        c.insert("r", vec!["4".into(), "y".into()]);
        let out = cir.push(&batch);
        assert_eq!(out.len(), 1);
        assert_matches_recompute(&cir, &c);
        // Delete: retract an r row; its derivation vanishes.
        let mut batch = DeltaBatch::new();
        batch.add("r", vec!["1".into(), "x".into()], -1);
        c.delete("r", &[Value::str("1"), Value::str("x")]);
        let out = cir.push(&batch);
        assert_eq!(out.total_weight(), -1);
        assert_matches_recompute(&cir, &c);
    }

    #[test]
    fn self_join_delta_join_delta() {
        // A self-loop inserted into a transitive step derives through the
        // delta in BOTH atom positions — the Δ⋈Δ term.
        let mut c = Catalog::new();
        let mut e = Relation::new(RelSchema::text("e", &["a", "b"]));
        e.insert(vec!["1".into(), "2".into()]);
        c.register(e);
        let mut cir = circuit(&c, "q(X, Z) :- e(X, Y), e(Y, Z)");
        let mut batch = DeltaBatch::new();
        batch.add("e", vec!["9".into(), "9".into()], 1);
        c.insert("e", vec!["9".into(), "9".into()]);
        cir.push(&batch);
        assert!(cir.output_set().contains(&vec!["9".into(), "9".into()]));
        assert_matches_recompute(&cir, &c);
    }

    #[test]
    fn weighted_rows_count_as_bags() {
        // Duplicate base rows are weight-2 entries; derivations multiply.
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a"]));
        r.insert(vec!["x".into()]);
        r.insert(vec!["x".into()]);
        c.register(r);
        let cir = circuit(&c, "q(A) :- r(A)");
        assert_eq!(cir.derivations().weight(&vec!["x".into()]), 2);
        assert_matches_recompute(&cir, &c);
    }

    #[test]
    fn unaffected_relation_is_a_cheap_noop() {
        let c = catalog();
        let mut cir = circuit(&c, "q(A, C) :- r(A, B), s(B, C)");
        let work_before = cir.work;
        let mut batch = DeltaBatch::new();
        batch.add("unrelated", vec!["z".into()], 1);
        let out = cir.push(&batch);
        assert!(out.is_empty());
        assert_eq!(cir.work, work_before);
    }

    #[test]
    fn distinct_emits_only_set_transitions() {
        let mut d = DistinctState::new();
        let out = d.push(&Delta::from_pairs([(vec![Value::str("a")], 2)]));
        assert_eq!(out.weight(&vec![Value::str("a")]), 1);
        // Lowering multiplicity 2 → 1 changes nothing at the set level.
        let out = d.push(&Delta::from_pairs([(vec![Value::str("a")], -1)]));
        assert!(out.is_empty());
        let out = d.push(&Delta::from_pairs([(vec![Value::str("a")], -1)]));
        assert_eq!(out.weight(&vec![Value::str("a")]), -1);
        assert_eq!(d.support(), 0);
    }

    #[test]
    fn aggregate_retracts_old_and_asserts_new() {
        let mut agg = AggregateState::new(vec![0], AggFn::Sum(1));
        let row = |k: &str, v: i64| vec![Value::str(k), Value::Int(v)];
        let out = agg.push(&Delta::from_pairs([(row("g", 10), 1)]));
        assert_eq!(out.weight(&vec![Value::str("g"), Value::Int(10)]), 1);
        let out = agg.push(&Delta::from_pairs([(row("g", 5), 1)]));
        assert_eq!(out.weight(&vec![Value::str("g"), Value::Int(10)]), -1);
        assert_eq!(out.weight(&vec![Value::str("g"), Value::Int(15)]), 1);
        // Retract everything: the group's row disappears.
        let out =
            agg.push(&Delta::from_pairs([(row("g", 10), -1), (row("g", 5), -1)]));
        assert_eq!(out.weight(&vec![Value::str("g"), Value::Int(15)]), -1);
        assert_eq!(agg.len(), 0);
    }

    #[test]
    fn count_aggregate_tracks_multiplicity() {
        let mut agg = AggregateState::new(vec![0], AggFn::Count);
        let row = |k: &str| vec![Value::str(k), Value::str("payload")];
        agg.push(&Delta::from_pairs([(row("g"), 3)]));
        let out = agg.push(&Delta::from_pairs([(row("g"), -1)]));
        assert_eq!(out.weight(&vec![Value::str("g"), Value::Int(3)]), -1);
        assert_eq!(out.weight(&vec![Value::str("g"), Value::Int(2)]), 1);
    }

    #[test]
    fn circuit_rejects_non_applicable_plan() {
        let c = catalog();
        let a = parse_query("q(B) :- r(A, B)").unwrap();
        let b = parse_query("q(A, C) :- r(A, B), s(B, C)").unwrap();
        let plan = plan_cq(&a, &c);
        assert!(Circuit::new(&b, &plan).is_err());
    }

    #[test]
    fn init_full_validates_like_the_evaluator() {
        let c = catalog();
        let q = parse_query("q(X) :- ghost(X)").unwrap();
        let plan = plan_cq(&q, &c);
        let mut cir = Circuit::new(&q, &plan).unwrap();
        assert!(cir.init_full(&c).is_err());
    }
}
