//! The periodic-crawl baseline.
//!
//! §2.2: "this tangible result encourages a feedback cycle ... This
//! feedback cycle would be crippled if changes relied upon periodic web
//! crawls before they took effect." To measure that claim (experiment E4)
//! we implement the alternative MANGROVE rejects: a crawler that refreshes
//! its copy of each page only every `interval` ticks, so a publish becomes
//! visible only at the next crawl.

use crate::publish::publish_page;
use crate::schema::MangroveSchema;
use revere_storage::TripleStore;
use std::collections::BTreeMap;

/// A crawl-based repository with a logical clock.
#[derive(Debug)]
pub struct CrawlBaseline {
    /// Ticks between crawls.
    pub interval: u64,
    schema: MangroveSchema,
    /// Pending page versions not yet crawled: url → html.
    pending: BTreeMap<String, String>,
    /// The crawled repository.
    pub store: TripleStore,
    clock: u64,
}

impl CrawlBaseline {
    /// Create a baseline crawling every `interval` ticks.
    pub fn new(schema: MangroveSchema, interval: u64) -> Self {
        assert!(interval >= 1, "interval must be at least 1 tick");
        CrawlBaseline {
            interval,
            schema,
            pending: BTreeMap::new(),
            store: TripleStore::new(),
            clock: 0,
        }
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// An author edits/publishes a page. Under the crawl model nothing is
    /// visible yet. Returns the tick at which the change *will* become
    /// visible.
    pub fn author_publish(&mut self, url: &str, html: &str) -> u64 {
        self.pending.insert(url.to_string(), html.to_string());
        self.next_crawl_at()
    }

    /// The next tick at which a crawl runs.
    pub fn next_crawl_at(&self) -> u64 {
        ((self.clock / self.interval) + 1) * self.interval
    }

    /// Advance time by one tick; crawls run on multiples of `interval`.
    /// Returns how many pages were (re)ingested this tick.
    pub fn tick(&mut self) -> usize {
        self.clock += 1;
        if self.clock.is_multiple_of(self.interval) {
            let batch = std::mem::take(&mut self.pending);
            let n = batch.len();
            for (url, html) in batch {
                publish_page(&mut self.store, &self.schema, &url, &html);
            }
            n
        } else {
            0
        }
    }

    /// Staleness of a publish made *now*: ticks until visible.
    pub fn staleness_of_publish_now(&self) -> u64 {
        self.next_crawl_at() - self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str =
        r#"<body mg:about="course/db"><h1 mg:tag="course.title">Databases</h1></body>"#;

    #[test]
    fn publish_invisible_until_crawl() {
        let mut c = CrawlBaseline::new(MangroveSchema::department(), 10);
        let visible_at = c.author_publish("http://u/db", PAGE);
        assert_eq!(visible_at, 10);
        for _ in 0..9 {
            assert_eq!(c.tick(), 0);
            assert!(c.store.is_empty());
        }
        assert_eq!(c.tick(), 1);
        assert_eq!(c.store.len(), 1);
    }

    #[test]
    fn multiple_edits_between_crawls_collapse() {
        let mut c = CrawlBaseline::new(MangroveSchema::department(), 5);
        c.author_publish("http://u/db", PAGE);
        c.author_publish(
            "http://u/db",
            r#"<body mg:about="course/db"><h1 mg:tag="course.title">Databases II</h1></body>"#,
        );
        for _ in 0..5 {
            c.tick();
        }
        let titles = c.store.query((Some("course/db"), Some("course.title"), None));
        assert_eq!(titles.len(), 1);
        assert_eq!(titles[0].object.to_string(), "Databases II");
    }

    #[test]
    fn staleness_depends_on_phase() {
        let mut c = CrawlBaseline::new(MangroveSchema::department(), 10);
        assert_eq!(c.staleness_of_publish_now(), 10);
        for _ in 0..7 {
            c.tick();
        }
        assert_eq!(c.staleness_of_publish_now(), 3);
    }

    #[test]
    fn interval_one_is_nearly_instant() {
        let mut c = CrawlBaseline::new(MangroveSchema::department(), 1);
        c.author_publish("http://u/db", PAGE);
        assert_eq!(c.staleness_of_publish_now(), 1);
        c.tick();
        assert_eq!(c.store.len(), 1);
    }
}
