//! The `mg:` in-place annotation language and its extraction semantics.
//!
//! §2.1: "The annotations given by the user are embedded in the HTML files
//! but invisible to the browser ... Our annotation language is syntactic
//! sugar for basic RDF. The reason we had to use a new language is that RDF
//! would require us to replicate all the data in the HTML, rather than
//! supporting in-place annotation."
//!
//! Two attributes make up the language:
//!
//! * `mg:about="<subject>"` — establishes the subject for the element and
//!   all its descendants (scoped, overridable by nested `mg:about`).
//! * `mg:tag="<schema.tag>"` — states that the element's text content is
//!   the value of `<schema.tag>` for the in-scope subject.
//!
//! Extraction walks the tree once and produces RDF-style statements.
//! [`Annotator`] plays the role of the paper's graphical tool: given raw
//! HTML and "highlight this text, tag it so" instructions, it inserts the
//! annotations without duplicating the data.

use crate::html::parse_html;
use revere_storage::Value;
use revere_xml::{Document, NodeId, NodeKind};

/// One extracted statement `(subject, predicate, object)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Subject (from the innermost `mg:about` in scope).
    pub subject: String,
    /// Predicate (the `mg:tag` value).
    pub predicate: String,
    /// Object (the annotated element's text content, trimmed).
    pub object: Value,
}

/// Problems found while extracting (non-fatal: extraction is best-effort,
/// matching MANGROVE's tolerance for imperfect authoring).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnotationIssue {
    /// An `mg:tag` with no `mg:about` in scope.
    TagWithoutSubject {
        /// The orphaned tag name.
        tag: String,
    },
    /// An `mg:tag` on an element with empty text content.
    EmptyValue {
        /// Subject in scope.
        subject: String,
        /// The tag.
        tag: String,
    },
}

/// Extract all statements from an annotated document.
///
/// Returns the statements plus any issues encountered.
pub fn extract_from_doc(doc: &Document) -> (Vec<Statement>, Vec<AnnotationIssue>) {
    let mut statements = Vec::new();
    let mut issues = Vec::new();
    walk(doc, doc.root(), None, &mut statements, &mut issues);
    (statements, issues)
}

/// Parse HTML and extract its statements in one step.
pub fn extract_statements(html: &str) -> (Vec<Statement>, Vec<AnnotationIssue>) {
    extract_from_doc(&parse_html(html))
}

fn walk(
    doc: &Document,
    node: NodeId,
    subject: Option<&str>,
    statements: &mut Vec<Statement>,
    issues: &mut Vec<AnnotationIssue>,
) {
    if let NodeKind::Text(_) = doc.node(node).kind {
        return;
    }
    let own_subject = doc.attr(node, "mg:about");
    let subject = own_subject.or(subject);
    if let Some(tag) = doc.attr(node, "mg:tag") {
        match subject {
            None => issues.push(AnnotationIssue::TagWithoutSubject { tag: tag.to_string() }),
            Some(s) => {
                let text = doc.text_content(node);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    issues.push(AnnotationIssue::EmptyValue {
                        subject: s.to_string(),
                        tag: tag.to_string(),
                    });
                } else {
                    statements.push(Statement {
                        subject: s.to_string(),
                        predicate: tag.to_string(),
                        object: Value::parse(trimmed),
                    });
                }
            }
        }
    }
    for &c in doc.children(node) {
        walk(doc, c, subject, statements, issues);
    }
}

/// The programmatic stand-in for MANGROVE's graphical annotation tool.
///
/// "Users highlight portions of the HTML document, then annotate by
/// choosing a corresponding tag name from the schema" (§2.1). Here a
/// highlight is a literal text snippet; the annotator wraps its first
/// un-annotated occurrence in a `<span mg:tag=...>` — in place, without
/// replicating the data.
#[derive(Debug, Clone)]
pub struct Annotator {
    html: String,
    subject_set: bool,
}

impl Annotator {
    /// Start annotating a page.
    pub fn new(html: impl Into<String>) -> Self {
        Annotator { html: html.into(), subject_set: false }
    }

    /// Declare the page-level subject by annotating the `<body>` (or the
    /// whole document if no body tag exists).
    pub fn set_subject(&mut self, subject: &str) -> &mut Self {
        if let Some(pos) = self.html.find("<body") {
            let insert_at = pos + "<body".len();
            self.html
                .insert_str(insert_at, &format!(" mg:about=\"{subject}\""));
        } else {
            self.html = format!("<div mg:about=\"{subject}\">{}</div>", self.html);
        }
        self.subject_set = true;
        self
    }

    /// Highlight the first occurrence of `snippet` and tag it. Returns
    /// `false` (leaving the page unchanged) if the snippet is not found.
    pub fn highlight(&mut self, snippet: &str, tag: &str) -> bool {
        let Some(pos) = self.html.find(snippet) else {
            return false;
        };
        let wrapped = format!("<span mg:tag=\"{tag}\">{snippet}</span>");
        self.html.replace_range(pos..pos + snippet.len(), &wrapped);
        true
    }

    /// The annotated page, ready to publish.
    pub fn finish(&self) -> String {
        self.html.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_simple_statement() {
        let (stmts, issues) = extract_statements(
            r#"<body mg:about="course/c1"><h1 mg:tag="course.title">Databases</h1></body>"#,
        );
        assert!(issues.is_empty());
        assert_eq!(
            stmts,
            vec![Statement {
                subject: "course/c1".into(),
                predicate: "course.title".into(),
                object: Value::str("Databases"),
            }]
        );
    }

    #[test]
    fn nested_about_overrides_outer() {
        let (stmts, _) = extract_statements(
            r#"<body mg:about="page/x">
                 <div mg:about="person/a"><span mg:tag="person.name">Ada</span></div>
                 <span mg:tag="page.note">outer</span>
               </body>"#,
        );
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].subject, "person/a");
        assert_eq!(stmts[1].subject, "page/x");
    }

    #[test]
    fn tag_without_subject_is_an_issue() {
        let (stmts, issues) = extract_statements(r#"<p mg:tag="x.y">v</p>"#);
        assert!(stmts.is_empty());
        assert_eq!(issues.len(), 1);
        assert!(matches!(issues[0], AnnotationIssue::TagWithoutSubject { .. }));
    }

    #[test]
    fn empty_value_is_an_issue() {
        let (stmts, issues) = extract_statements(
            r#"<body mg:about="s"><span mg:tag="t.v"></span></body>"#,
        );
        assert!(stmts.is_empty());
        assert!(matches!(issues[0], AnnotationIssue::EmptyValue { .. }));
    }

    #[test]
    fn numeric_values_are_typed() {
        let (stmts, _) = extract_statements(
            r#"<body mg:about="course/c1"><span mg:tag="course.enrollment">120</span></body>"#,
        );
        assert_eq!(stmts[0].object, Value::Int(120));
    }

    #[test]
    fn annotator_wraps_in_place() {
        let raw = "<html><body><h1>Intro to Databases</h1>\
                   <p>Taught by Ada Lovelace in Sieg 134.</p></body></html>";
        let mut a = Annotator::new(raw);
        a.set_subject("course/cse444");
        assert!(a.highlight("Intro to Databases", "course.title"));
        assert!(a.highlight("Ada Lovelace", "course.instructor"));
        assert!(a.highlight("Sieg 134", "course.room"));
        assert!(!a.highlight("Not on the page", "course.room"));
        let html = a.finish();
        // Original text not duplicated.
        assert_eq!(html.matches("Ada Lovelace").count(), 1);
        let (stmts, issues) = extract_statements(&html);
        assert!(issues.is_empty());
        assert_eq!(stmts.len(), 3);
        assert!(stmts.iter().all(|s| s.subject == "course/cse444"));
    }

    #[test]
    fn annotator_without_body_wraps_in_div() {
        let mut a = Annotator::new("<p>Ada</p>");
        a.set_subject("person/ada");
        a.highlight("Ada", "person.name");
        let (stmts, _) = extract_statements(&a.finish());
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].subject, "person/ada");
    }

    #[test]
    fn extraction_from_workload_pages() {
        // The htmlgen pages (revere-workload) must round-trip through
        // extraction; validated end-to-end in the integration tests, here
        // with a literal copy of the generator's table layout.
        let html = "<html><body>\n<div mg:about=\"person/p001\">\n<table>\n\
                    <tr><td>Name</td><td mg:tag=\"person.name\">Grace Hopper</td></tr>\n\
                    <tr><td>Tel</td><td mg:tag=\"person.phone\">206-555-0123</td></tr>\n\
                    </table>\n</div>\n</body></html>";
        let (stmts, issues) = extract_statements(html);
        assert!(issues.is_empty());
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[1].object, Value::str("206-555-0123"));
    }
}
