//! The publish pipeline.
//!
//! §2.2: "the annotations on web pages are stored in a repository for
//! querying and access by applications ... The database is typically
//! updated the moment a user publishes new or revised content." A
//! [`Mangrove`] instance couples a [`MangroveSchema`] with the triple-store
//! repository; [`Mangrove::publish`] parses a page, extracts its
//! statements, flags undeclared tags (without rejecting anything — there
//! are no integrity constraints at publish time) and atomically replaces
//! the page's previous statements.

use crate::annotation::{extract_statements, AnnotationIssue};
use crate::schema::MangroveSchema;
use revere_storage::TripleStore;

/// What one publish did.
#[derive(Debug, Clone)]
pub struct PublishReport {
    /// Statements stored.
    pub stored: usize,
    /// Tags used on the page but not declared in the schema. They are
    /// *still stored* — applications decide what to trust — but reported
    /// back to the author, the way the paper's tool surfaces schema
    /// guidance.
    pub undeclared_tags: Vec<String>,
    /// Structural annotation issues (orphan tags, empty values).
    pub issues: Vec<AnnotationIssue>,
}

/// A MANGROVE installation: schema + repository.
#[derive(Debug, Default)]
pub struct Mangrove {
    /// The organization's schema.
    pub schema: MangroveSchema,
    /// The annotation repository.
    pub store: TripleStore,
}

impl Mangrove {
    /// Create an installation with the given schema.
    pub fn new(schema: MangroveSchema) -> Self {
        Mangrove { schema, store: TripleStore::new() }
    }

    /// Publish (or republish) a page: everything previously published from
    /// `url` is replaced by the page's current statements.
    pub fn publish(&mut self, url: &str, html: &str) -> PublishReport {
        publish_page(&mut self.store, &self.schema, url, html)
    }

    /// Remove a deleted page's statements.
    pub fn unpublish(&mut self, url: &str) -> usize {
        self.store.retract_source(url)
    }
}

/// Free-function form of the publish pipeline (used by the crawl baseline,
/// which maintains its own store).
pub fn publish_page(
    store: &mut TripleStore,
    schema: &MangroveSchema,
    url: &str,
    html: &str,
) -> PublishReport {
    let (statements, issues) = extract_statements(html);
    let mut undeclared: Vec<String> = statements
        .iter()
        .map(|s| s.predicate.clone())
        .filter(|p| !schema.declares(p))
        .collect();
    undeclared.sort();
    undeclared.dedup();
    let stored = statements.len();
    store.republish(
        url,
        statements
            .into_iter()
            .map(|s| (s.subject, s.predicate, s.object)),
    );
    PublishReport { stored, undeclared_tags: undeclared, issues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_storage::Value;

    fn page(phone: &str) -> String {
        format!(
            r#"<body mg:about="person/ada">
                 <span mg:tag="person.name">Ada Lovelace</span>
                 <span mg:tag="person.phone">{phone}</span>
               </body>"#
        )
    }

    #[test]
    fn publish_stores_statements_immediately() {
        let mut m = Mangrove::new(MangroveSchema::department());
        let report = m.publish("http://u/ada", &page("555-0001"));
        assert_eq!(report.stored, 2);
        assert!(report.undeclared_tags.is_empty());
        // Instantly visible.
        let phones = m
            .store
            .query((Some("person/ada"), Some("person.phone"), None));
        assert_eq!(phones.len(), 1);
        assert_eq!(phones[0].object, Value::str("555-0001"));
    }

    #[test]
    fn republish_replaces_old_statements() {
        let mut m = Mangrove::new(MangroveSchema::department());
        m.publish("http://u/ada", &page("555-0001"));
        m.publish("http://u/ada", &page("555-0002"));
        let phones = m
            .store
            .query((Some("person/ada"), Some("person.phone"), None));
        assert_eq!(phones.len(), 1);
        assert_eq!(phones[0].object, Value::str("555-0002"));
    }

    #[test]
    fn undeclared_tags_reported_but_stored() {
        let mut m = Mangrove::new(MangroveSchema::department());
        let html = r#"<body mg:about="s"><span mg:tag="weird.tag">v</span></body>"#;
        let report = m.publish("http://u/x", html);
        assert_eq!(report.undeclared_tags, vec!["weird.tag".to_string()]);
        assert_eq!(report.stored, 1);
        assert_eq!(m.store.len(), 1);
    }

    #[test]
    fn conflicting_sources_coexist() {
        // No integrity constraints: two pages may disagree.
        let mut m = Mangrove::new(MangroveSchema::department());
        m.publish("http://u/ada", &page("555-0001"));
        m.publish(
            "http://u/directory",
            r#"<body><div mg:about="person/ada"><span mg:tag="person.phone">555-9999</span></div></body>"#,
        );
        let phones = m
            .store
            .query((Some("person/ada"), Some("person.phone"), None));
        assert_eq!(phones.len(), 2);
    }

    #[test]
    fn unpublish_removes_page() {
        let mut m = Mangrove::new(MangroveSchema::department());
        m.publish("http://u/ada", &page("555-0001"));
        assert_eq!(m.unpublish("http://u/ada"), 2);
        assert!(m.store.is_empty());
    }

    #[test]
    fn issues_propagate() {
        let mut m = Mangrove::new(MangroveSchema::department());
        let report = m.publish("http://u/x", r#"<p mg:tag="person.name">Ada</p>"#);
        assert_eq!(report.stored, 0);
        assert_eq!(report.issues.len(), 1);
    }
}
