//! Proactive inconsistency detection (§2.3).
//!
//! "In addition to dealing with inconsistent data as necessary, one can
//! also build special applications whose goal is to proactively find
//! inconsistencies in the database and notify the relevant authors."
//!
//! [`find_inconsistencies`] scans the repository for subjects whose
//! single-valued tags (per the schema's hints) carry conflicting values,
//! and groups the findings by source URL so each page author can be
//! notified about exactly the conflicts their pages participate in.

use crate::schema::MangroveSchema;
use revere_storage::{TripleStore, Value};
use std::collections::BTreeMap;

/// One detected conflict: a single-valued tag with several values.
#[derive(Debug, Clone, PartialEq)]
pub struct Inconsistency {
    /// The subject (e.g. `person/ada`).
    pub subject: String,
    /// The tag that should be single-valued.
    pub predicate: String,
    /// The conflicting `(value, source, published_at)` assertions, in
    /// publish order.
    pub assertions: Vec<(Value, String, u64)>,
}

impl Inconsistency {
    /// Distinct values asserted.
    pub fn distinct_values(&self) -> usize {
        let mut vals: Vec<&Value> = self.assertions.iter().map(|(v, _, _)| v).collect();
        vals.sort();
        vals.dedup();
        vals.len()
    }
}

/// `(value, source, published_at)` assertions keyed by (subject, predicate).
type AssertionGroups = BTreeMap<(String, String), Vec<(Value, String, u64)>>;

/// Scan the store for violations of the schema's single-valued hints.
pub fn find_inconsistencies(store: &TripleStore, schema: &MangroveSchema) -> Vec<Inconsistency> {
    // Group assertions by (subject, predicate).
    let mut groups: AssertionGroups = BTreeMap::new();
    for t in store.iter() {
        if schema.decl(&t.predicate).map(|d| d.single_valued).unwrap_or(false) {
            groups
                .entry((t.subject.clone(), t.predicate.clone()))
                .or_default()
                .push((t.object.clone(), t.source.clone(), t.published_at));
        }
    }
    let mut out = Vec::new();
    for ((subject, predicate), mut assertions) in groups {
        assertions.sort_by_key(|(_, _, at)| *at);
        let mut values: Vec<&Value> = assertions.iter().map(|(v, _, _)| v).collect();
        values.sort();
        values.dedup();
        if values.len() > 1 {
            out.push(Inconsistency { subject, predicate, assertions });
        }
    }
    out
}

/// The notification list: source URL → the inconsistencies its pages are
/// involved in ("notify the relevant authors").
pub fn notifications_by_source(
    inconsistencies: &[Inconsistency],
) -> BTreeMap<String, Vec<&Inconsistency>> {
    let mut by_source: BTreeMap<String, Vec<&Inconsistency>> = BTreeMap::new();
    for inc in inconsistencies {
        let mut sources: Vec<&str> = inc.assertions.iter().map(|(_, s, _)| s.as_str()).collect();
        sources.sort();
        sources.dedup();
        for s in sources {
            by_source.entry(s.to_string()).or_default().push(inc);
        }
    }
    by_source
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflicted() -> (TripleStore, MangroveSchema) {
        let mut s = TripleStore::new();
        s.insert("person/ada", "person.phone", "555-0001", "http://u/~ada/");
        s.insert("person/ada", "person.phone", "555-9999", "http://u/dir");
        // Multi-valued tag: conflicts allowed, no report.
        s.insert("course/db", "course.instructor", "Ada", "http://u/db");
        s.insert("course/db", "course.instructor", "Bob", "http://u/db2");
        // Single-valued but consistent: no report.
        s.insert("person/bob", "person.phone", "555-2222", "http://u/~bob/");
        s.insert("person/bob", "person.phone", "555-2222", "http://u/dir");
        (s, MangroveSchema::department())
    }

    #[test]
    fn finds_only_single_valued_conflicts() {
        let (store, schema) = conflicted();
        let found = find_inconsistencies(&store, &schema);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].subject, "person/ada");
        assert_eq!(found[0].predicate, "person.phone");
        assert_eq!(found[0].distinct_values(), 2);
        // Assertions in publish order.
        assert!(found[0].assertions[0].2 < found[0].assertions[1].2);
    }

    #[test]
    fn notifications_reach_every_involved_author() {
        let (store, schema) = conflicted();
        let found = find_inconsistencies(&store, &schema);
        let notify = notifications_by_source(&found);
        assert!(notify.contains_key("http://u/~ada/"));
        assert!(notify.contains_key("http://u/dir"));
        assert!(!notify.contains_key("http://u/~bob/"));
    }

    #[test]
    fn clean_store_reports_nothing() {
        let mut s = TripleStore::new();
        s.insert("x", "person.phone", "1", "src");
        assert!(find_inconsistencies(&s, &MangroveSchema::department()).is_empty());
    }

    #[test]
    fn undeclared_tags_are_ignored() {
        let mut s = TripleStore::new();
        s.insert("x", "weird.tag", "1", "a");
        s.insert("x", "weird.tag", "2", "b");
        assert!(find_inconsistencies(&s, &MangroveSchema::department()).is_empty());
    }

    #[test]
    fn resolves_after_author_fixes_page() {
        let (mut store, schema) = conflicted();
        // The directory page republishes with the correct number.
        store.republish(
            "http://u/dir",
            vec![
                ("person/ada".into(), "person.phone".into(), Value::str("555-0001")),
                ("person/bob".into(), "person.phone".into(), Value::str("555-2222")),
            ],
        );
        assert!(find_inconsistencies(&store, &schema).is_empty());
    }
}
