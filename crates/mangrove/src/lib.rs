//! MANGROVE: the data-structuring component of REVERE (§2 of the paper).
//!
//! MANGROVE turns data already living in HTML pages into structured data
//! without moving it: authors annotate fragments in place, hit *publish*,
//! and instant-gratification applications update the moment the publish
//! lands. Integrity constraints are deferred to the applications.
//!
//! * [`html`] — a lenient HTML parser (real pages are not XML: void
//!   elements, optional end tags, unquoted attributes).
//! * [`annotation`] — the `mg:` in-place annotation language ("syntactic
//!   sugar for basic RDF", §2.1): extraction of statements from annotated
//!   pages, and an [`Annotator`] that plays the role of the paper's
//!   graphical annotation tool.
//! * [`schema`] — MANGROVE's lightweight schemas: "a set of standardized
//!   tag names (and their allowed nesting structure)" with *no* integrity
//!   constraints.
//! * [`publish`] — the publish pipeline: parse → extract → check tags →
//!   republish into the provenance-carrying triple store.
//! * [`clean`] — §2.3's application-side cleaning policies (take-all,
//!   prefer-own-source, majority, freshest), which is where deferred
//!   integrity checking actually happens.
//! * [`apps`] — instant-gratification applications: the course calendar,
//!   the "Who's Who", and the phone directory from the paper's examples.
//! * [`crawler`] — the periodic-crawl baseline MANGROVE's freshness is
//!   measured against ("this feedback cycle would be crippled if changes
//!   relied upon periodic web crawls").
//!
//! [`Annotator`]: annotation::Annotator

pub mod annotation;
pub mod apps;
pub mod clean;
pub mod consistency;
pub mod crawler;
pub mod dynamic;
pub mod html;
pub mod publish;
pub mod schema;
pub mod search;

pub use annotation::{extract_statements, Annotator, Statement};
pub use apps::{CourseCalendar, PhoneDirectory, WhosWho};
pub use clean::CleaningPolicy;
pub use consistency::{find_inconsistencies, notifications_by_source, Inconsistency};
pub use crawler::CrawlBaseline;
pub use dynamic::{render_course_summary, render_people_summary};
pub use html::parse_html;
pub use publish::{publish_page, Mangrove, PublishReport};
pub use schema::MangroveSchema;
pub use search::{PaperDatabase, SearchEngine, SearchHit};
