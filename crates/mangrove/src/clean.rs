//! Application-side data cleaning (§2.3: deferred integrity constraints).
//!
//! "The burden of cleaning up the data is passed to the application using
//! the data ... different applications will have varying requirements for
//! data integrity." The policies here are the ones the paper sketches:
//! take everything; prefer facts published from the subject's own web
//! space ("extract a phone number from the faculty's web space, rather
//! than anywhere on the web" — provenance-based); majority vote across
//! sources; or freshest publish wins.

use revere_storage::{Triple, TripleStore, Value};
use std::collections::BTreeMap;

/// How an application resolves conflicting values for one
/// `(subject, predicate)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CleaningPolicy {
    /// Keep every distinct value (applications whose users "can tell
    /// easily whether the answers they are receiving are correct").
    TakeAll,
    /// Only trust triples whose source URL matches the subject's own web
    /// space, determined by `subject_source_hint` — the paper's phone
    /// directory example. Falls back to [`CleaningPolicy::Majority`] when
    /// the subject has no own-space triples for the predicate.
    PreferOwnSource,
    /// The most frequently asserted value wins; ties broken by freshness.
    Majority,
    /// The most recently published value wins.
    Freshest,
}

/// Does `source` look like `subject`'s own web space? The heuristic the
/// paper implies: the subject identifier's last path component appears in
/// the source URL (e.g. subject `person/p003` published from
/// `http://univ.edu/~p003/index.html`).
pub fn is_own_source(subject: &str, source: &str) -> bool {
    match subject.rsplit('/').next() {
        Some(key) if !key.is_empty() => source.contains(key),
        _ => false,
    }
}

/// Resolve the values of `(subject, predicate)` under a policy.
///
/// Single-winner policies return at most one value; [`CleaningPolicy::TakeAll`]
/// returns every distinct value ordered by first publish time.
pub fn resolve(
    store: &TripleStore,
    subject: &str,
    predicate: &str,
    policy: &CleaningPolicy,
) -> Vec<Value> {
    let triples = store.query((Some(subject), Some(predicate), None));
    if triples.is_empty() {
        return Vec::new();
    }
    match policy {
        CleaningPolicy::TakeAll => {
            let mut sorted: Vec<&Triple> = triples;
            sorted.sort_by_key(|t| t.published_at);
            let mut seen = Vec::new();
            for t in sorted {
                if !seen.contains(&t.object) {
                    seen.push(t.object.clone());
                }
            }
            seen
        }
        CleaningPolicy::PreferOwnSource => {
            let own: Vec<&Triple> = triples
                .iter()
                .copied()
                .filter(|t| is_own_source(subject, &t.source))
                .collect();
            if own.is_empty() {
                resolve(store, subject, predicate, &CleaningPolicy::Majority)
            } else {
                // Freshest among own-space assertions.
                vec![freshest(&own).object.clone()]
            }
        }
        CleaningPolicy::Majority => {
            let mut counts: BTreeMap<&Value, (usize, u64)> = BTreeMap::new();
            for t in &triples {
                let e = counts.entry(&t.object).or_insert((0, 0));
                e.0 += 1;
                e.1 = e.1.max(t.published_at);
            }
            let winner = counts
                .into_iter()
                .max_by_key(|(_, (n, at))| (*n, *at))
                .map(|(v, _)| v.clone());
            winner.into_iter().collect()
        }
        CleaningPolicy::Freshest => vec![freshest(&triples).object.clone()],
    }
}

fn freshest<'a>(triples: &[&'a Triple]) -> &'a Triple {
    triples
        .iter()
        .max_by_key(|t| t.published_at)
        .expect("non-empty by caller contract")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflicted_store() -> TripleStore {
        let mut s = TripleStore::new();
        // Own page says 0001 (published first).
        s.insert("person/ada", "person.phone", "555-0001", "http://univ.edu/~ada/");
        // Two directories agree on a wrong value (published later).
        s.insert("person/ada", "person.phone", "555-9999", "http://univ.edu/dir1");
        s.insert("person/ada", "person.phone", "555-9999", "http://univ.edu/dir2");
        s
    }

    #[test]
    fn take_all_returns_distinct_in_publish_order() {
        let s = conflicted_store();
        let vals = resolve(&s, "person/ada", "person.phone", &CleaningPolicy::TakeAll);
        assert_eq!(vals, vec![Value::str("555-0001"), Value::str("555-9999")]);
    }

    #[test]
    fn prefer_own_source_trusts_home_page() {
        let s = conflicted_store();
        let vals = resolve(&s, "person/ada", "person.phone", &CleaningPolicy::PreferOwnSource);
        assert_eq!(vals, vec![Value::str("555-0001")]);
    }

    #[test]
    fn prefer_own_source_falls_back_to_majority() {
        let mut s = TripleStore::new();
        s.insert("person/bob", "person.phone", "555-1111", "http://univ.edu/dir1");
        s.insert("person/bob", "person.phone", "555-1111", "http://univ.edu/dir2");
        s.insert("person/bob", "person.phone", "555-2222", "http://univ.edu/dir3");
        let vals = resolve(&s, "person/bob", "person.phone", &CleaningPolicy::PreferOwnSource);
        assert_eq!(vals, vec![Value::str("555-1111")]);
    }

    #[test]
    fn majority_wins_even_against_own_page() {
        let s = conflicted_store();
        let vals = resolve(&s, "person/ada", "person.phone", &CleaningPolicy::Majority);
        assert_eq!(vals, vec![Value::str("555-9999")]);
    }

    #[test]
    fn freshest_takes_latest_publish() {
        let s = conflicted_store();
        let vals = resolve(&s, "person/ada", "person.phone", &CleaningPolicy::Freshest);
        assert_eq!(vals, vec![Value::str("555-9999")]);
        let mut s2 = conflicted_store();
        s2.insert("person/ada", "person.phone", "555-0002", "http://univ.edu/~ada/");
        let vals2 = resolve(&s2, "person/ada", "person.phone", &CleaningPolicy::Freshest);
        assert_eq!(vals2, vec![Value::str("555-0002")]);
    }

    #[test]
    fn empty_for_unknown_subject() {
        let s = conflicted_store();
        for p in [
            CleaningPolicy::TakeAll,
            CleaningPolicy::PreferOwnSource,
            CleaningPolicy::Majority,
            CleaningPolicy::Freshest,
        ] {
            assert!(resolve(&s, "person/eve", "person.phone", &p).is_empty());
        }
    }

    #[test]
    fn own_source_heuristic() {
        assert!(is_own_source("person/p003", "http://univ.edu/~p003/index.html"));
        assert!(!is_own_source("person/p003", "http://univ.edu/directory.html"));
        assert!(!is_own_source("", "http://univ.edu/x"));
    }
}
