//! A lenient HTML parser.
//!
//! MANGROVE annotates pages people already have, and real pages are rarely
//! well-formed XML. This parser accepts the common deviations: void
//! elements (`<br>`, `<img>`, ...), optional end tags (`<li>`, `<p>`,
//! `<td>`, `<tr>`), unquoted attribute values, boolean attributes,
//! mismatched case, and stray end tags. The output is a
//! [`revere_xml::Document`], so annotation extraction shares the XML
//! substrate's tree machinery.

use revere_xml::{Document, NodeId};

/// Elements that never have content.
const VOID: &[&str] = &[
    "br", "img", "hr", "meta", "input", "link", "area", "base", "col", "embed", "source",
    "track", "wbr",
];

/// Elements whose end tag is optional: opening one of `closes` implicitly
/// closes an open element of the same entry.
fn implicitly_closes(open: &str, next: &str) -> bool {
    match open {
        "li" => next == "li",
        "p" => matches!(next, "p" | "div" | "ul" | "ol" | "table" | "h1" | "h2" | "h3"),
        "td" | "th" => matches!(next, "td" | "th" | "tr"),
        "tr" => next == "tr",
        "option" => next == "option",
        _ => false,
    }
}

/// Parse lenient HTML into a document. Never fails: unparseable fragments
/// degrade to text. The root element is always `html` (synthesized if the
/// input lacks one).
pub fn parse_html(input: &str) -> Document {
    let mut doc = Document::new("html");
    let root = doc.root();
    let mut stack: Vec<(String, NodeId)> = vec![("html".to_string(), root)];
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut text_start = 0usize;

    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Flush pending text.
        let text = &input[text_start..i];
        if !text.trim().is_empty() {
            let (_, parent) = stack.last().expect("stack never empty");
            doc.add_text(*parent, decode_entities(text));
        }
        // Comment?
        if input[i..].starts_with("<!--") {
            match input[i..].find("-->") {
                Some(end) => i += end + 3,
                None => i = bytes.len(),
            }
            text_start = i;
            continue;
        }
        // Doctype or other declaration?
        if input[i..].starts_with("<!") || input[i..].starts_with("<?") {
            match input[i..].find('>') {
                Some(end) => i += end + 1,
                None => i = bytes.len(),
            }
            text_start = i;
            continue;
        }
        // Find the tag end.
        let Some(rel_end) = input[i..].find('>') else {
            // Unterminated tag: treat the rest as text.
            let (_, parent) = stack.last().expect("stack never empty");
            doc.add_text(*parent, decode_entities(&input[i..]));
            i = bytes.len();
            text_start = i;
            continue;
        };
        let tag_src = &input[i + 1..i + rel_end];
        i += rel_end + 1;
        text_start = i;

        if let Some(name) = tag_src.strip_prefix('/') {
            // End tag: pop to the matching element if present.
            let name = name.trim().to_ascii_lowercase();
            if let Some(pos) = stack.iter().rposition(|(n, _)| *n == name) {
                if pos > 0 {
                    stack.truncate(pos);
                }
            }
            // Stray end tag: ignored.
            continue;
        }

        let self_closing = tag_src.ends_with('/');
        let tag_src = tag_src.trim_end_matches('/');
        let (name, attrs) = parse_tag(tag_src);
        if name.is_empty() {
            continue;
        }
        // <html> when a root already exists: merge attributes into root.
        if name == "html" {
            for (k, v) in attrs {
                doc.set_attr(root, k, v);
            }
            continue;
        }
        // Implicit closes.
        while stack.len() > 1 {
            let (open, _) = stack.last().expect("non-empty");
            if implicitly_closes(open, &name) {
                stack.pop();
            } else {
                break;
            }
        }
        let (_, parent) = stack.last().expect("stack never empty");
        let el = doc.add_element(*parent, name.clone());
        for (k, v) in attrs {
            doc.set_attr(el, k, v);
        }
        if !self_closing && !VOID.contains(&name.as_str()) {
            stack.push((name.clone(), el));
        }
        // Raw-text elements: script/style content up to the end tag.
        if name == "script" || name == "style" {
            let close = format!("</{name}");
            if let Some(end) = input[i..].to_ascii_lowercase().find(&close) {
                let content = &input[i..i + end];
                if !content.trim().is_empty() {
                    doc.add_text(el, content.to_string());
                }
                i += end;
                text_start = i;
            }
            stack.pop();
        }
    }
    // Trailing text.
    let text = &input[text_start..];
    if !text.trim().is_empty() {
        let (_, parent) = stack.last().expect("stack never empty");
        doc.add_text(*parent, decode_entities(text));
    }
    doc
}

/// Split `name attr="v" flag attr2=bare` into a lowercase name plus
/// attribute pairs. Attribute *names* are lowercased except the `mg:`
/// annotation namespace, which is preserved case-insensitively as given.
fn parse_tag(src: &str) -> (String, Vec<(String, String)>) {
    let src = src.trim();
    let mut chars = src.char_indices().peekable();
    let mut name_end = src.len();
    for (idx, c) in chars.by_ref() {
        if c.is_whitespace() {
            name_end = idx;
            break;
        }
    }
    let name = src[..name_end].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let rest = &src[name_end..];
    let mut i = 0usize;
    let b = rest.as_bytes();
    while i < b.len() {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        let key_start = i;
        while i < b.len() && !b[i].is_ascii_whitespace() && b[i] != b'=' {
            i += 1;
        }
        let key = rest[key_start..i].to_ascii_lowercase();
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < b.len() && b[i] == b'=' {
            i += 1;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            let value = if i < b.len() && (b[i] == b'"' || b[i] == b'\'') {
                let quote = b[i];
                i += 1;
                let vstart = i;
                while i < b.len() && b[i] != quote {
                    i += 1;
                }
                let v = &rest[vstart..i];
                if i < b.len() {
                    i += 1;
                }
                v
            } else {
                let vstart = i;
                while i < b.len() && !b[i].is_ascii_whitespace() {
                    i += 1;
                }
                &rest[vstart..i]
            };
            if !key.is_empty() {
                attrs.push((key, decode_entities(value)));
            }
        } else if !key.is_empty() {
            // Boolean attribute.
            attrs.push((key, String::new()));
        }
    }
    (name, attrs)
}

/// Decode the handful of entities that matter in page text.
fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&nbsp;", " ")
        .replace("&#39;", "'")
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_xml::Path;

    #[test]
    fn parses_wellformed_page() {
        let d = parse_html("<html><body><h1>Title</h1><p>Hello</p></body></html>");
        let h1 = Path::parse("//h1").unwrap().eval(&d, d.root());
        assert_eq!(d.text_content(h1[0]), "Title");
    }

    #[test]
    fn unclosed_li_and_p() {
        let d = parse_html("<ul><li>one<li>two<li>three</ul><p>a<p>b");
        let lis = Path::parse("//li").unwrap().eval(&d, d.root());
        assert_eq!(lis.len(), 3);
        assert_eq!(d.text_content(lis[1]), "two");
        let ps = Path::parse("//p").unwrap().eval(&d, d.root());
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn table_with_optional_end_tags() {
        let d = parse_html("<table><tr><td>a<td>b<tr><td>c</table>");
        let rows = Path::parse("//tr").unwrap().eval(&d, d.root());
        assert_eq!(rows.len(), 2);
        let cells = Path::parse("//td").unwrap().eval(&d, d.root());
        assert_eq!(cells.len(), 3);
    }

    #[test]
    fn void_elements_do_not_swallow_content() {
        let d = parse_html("<p>line<br>next<img src=x>end</p>");
        let p = Path::parse("//p").unwrap().eval(&d, d.root())[0];
        assert_eq!(d.text_content(p), "linenextend");
    }

    #[test]
    fn unquoted_and_boolean_attributes() {
        let d = parse_html("<input type=checkbox checked><a href=http://x.org/y>l</a>");
        let input = Path::parse("//input").unwrap().eval(&d, d.root())[0];
        assert_eq!(d.attr(input, "type"), Some("checkbox"));
        assert_eq!(d.attr(input, "checked"), Some(""));
        let a = Path::parse("//a").unwrap().eval(&d, d.root())[0];
        assert_eq!(d.attr(a, "href"), Some("http://x.org/y"));
    }

    #[test]
    fn mg_namespace_attributes_survive() {
        let d = parse_html(r#"<div mg:about="course/c1"><span mg:tag="course.title">DB</span></div>"#);
        let span = Path::parse("//span").unwrap().eval(&d, d.root())[0];
        assert_eq!(d.attr(span, "mg:tag"), Some("course.title"));
    }

    #[test]
    fn stray_end_tags_ignored() {
        let d = parse_html("<div>a</span></div>b</p>");
        assert!(d.text_content(d.root()).contains('a'));
        assert!(d.text_content(d.root()).contains('b'));
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let d = parse_html("<!DOCTYPE html><!-- hi --><body>x</body>");
        assert_eq!(d.text_content(d.root()).trim(), "x");
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let d = parse_html(r#"<p title="a &amp; b">1 &lt; 2</p>"#);
        let p = Path::parse("//p").unwrap().eval(&d, d.root())[0];
        assert_eq!(d.text_content(p), "1 < 2");
        assert_eq!(d.attr(p, "title"), Some("a & b"));
    }

    #[test]
    fn script_content_not_parsed_as_markup() {
        let d = parse_html("<script>if (a < b) { x(); }</script><p>after</p>");
        let ps = Path::parse("//p").unwrap().eval(&d, d.root());
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in ["<", "<<<>>>", "<a", "</", "<a b=", "text only", "", "<a b='unterminated"] {
            let _ = parse_html(garbage);
        }
    }

    #[test]
    fn mixed_case_tags_normalized() {
        let d = parse_html("<DIV><SpAn>x</sPaN></div>");
        assert_eq!(Path::parse("//span").unwrap().eval(&d, d.root()).len(), 1);
    }
}
