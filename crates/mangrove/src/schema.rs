//! MANGROVE's lightweight schemas.
//!
//! §2.1: "Users of MANGROVE are required to adhere to one of the schemas
//! provided by the MANGROVE administrator at their organization ...
//! MANGROVE users are only required to use a set of standardized tag names
//! (and their allowed nesting structure) ... they are not required to
//! adhere to integrity constraints." A schema is therefore just a tag
//! vocabulary organized by concept, with single-valuedness recorded as a
//! *hint* for cleaning policies — never enforced at publish time.

use std::collections::BTreeMap;

/// Declaration of one tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagDecl {
    /// Fully-qualified tag, e.g. `course.title`.
    pub name: String,
    /// Whether applications *expect* a single value per subject (a hint
    /// for cleaning, not a constraint: "certain attributes may have
    /// multiple values, where there should be only one").
    pub single_valued: bool,
}

/// A lightweight schema: concepts and their tags.
#[derive(Debug, Clone, Default)]
pub struct MangroveSchema {
    /// Schema name (e.g. `uw-cse`).
    pub name: String,
    tags: BTreeMap<String, TagDecl>,
}

impl MangroveSchema {
    /// Create an empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        MangroveSchema { name: name.into(), tags: BTreeMap::new() }
    }

    /// Declare a tag (builder style).
    pub fn tag(mut self, name: &str, single_valued: bool) -> Self {
        self.tags.insert(
            name.to_string(),
            TagDecl { name: name.to_string(), single_valued },
        );
        self
    }

    /// Is the tag declared?
    pub fn declares(&self, tag: &str) -> bool {
        self.tags.contains_key(tag)
    }

    /// The declaration, if any.
    pub fn decl(&self, tag: &str) -> Option<&TagDecl> {
        self.tags.get(tag)
    }

    /// All declared tags under a concept prefix (`course` →
    /// `course.title`, `course.time`, ...).
    pub fn tags_of(&self, concept: &str) -> Vec<&str> {
        let prefix = format!("{concept}.");
        self.tags
            .keys()
            .filter(|t| t.starts_with(&prefix))
            .map(String::as_str)
            .collect()
    }

    /// Number of declared tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when no tag is declared.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The departmental schema used throughout the paper's examples:
    /// courses, people, seminars — contact info, scheduling, publications.
    pub fn department() -> MangroveSchema {
        MangroveSchema::new("department")
            .tag("course.title", true)
            .tag("course.instructor", false)
            .tag("course.time", true)
            .tag("course.room", true)
            .tag("course.enrollment", true)
            .tag("course.textbook", false)
            .tag("course.url", true)
            .tag("person.name", true)
            .tag("person.phone", true)
            .tag("person.email", true)
            .tag("person.office", true)
            .tag("person.homepage", true)
            .tag("seminar.title", true)
            .tag("seminar.speaker", true)
            .tag("seminar.time", true)
            .tag("seminar.room", true)
            .tag("publication.title", true)
            .tag("publication.author", false)
            .tag("publication.year", true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn department_schema_declares_expected_tags() {
        let s = MangroveSchema::department();
        assert!(s.declares("course.title"));
        assert!(s.declares("person.phone"));
        assert!(!s.declares("course.nonexistent"));
        assert!(s.len() >= 15);
    }

    #[test]
    fn single_valued_hints() {
        let s = MangroveSchema::department();
        assert!(s.decl("person.phone").unwrap().single_valued);
        assert!(!s.decl("course.instructor").unwrap().single_valued);
    }

    #[test]
    fn tags_of_concept() {
        let s = MangroveSchema::department();
        let course_tags = s.tags_of("course");
        assert!(course_tags.contains(&"course.title"));
        assert!(!course_tags.iter().any(|t| t.starts_with("person.")));
    }

    #[test]
    fn builder_overwrite() {
        let s = MangroveSchema::new("x").tag("a.b", true).tag("a.b", false);
        assert!(!s.decl("a.b").unwrap().single_valued);
        assert_eq!(s.len(), 1);
    }
}
