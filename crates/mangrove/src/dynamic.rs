//! Dynamic page generation (§2.3).
//!
//! "MANGROVE also enables some web pages that are currently compiled by
//! hand, such as department-wide course summaries, to be dynamically
//! generated in the spirit of systems like Strudel \[17\]."
//!
//! [`render_course_summary`] and [`render_people_summary`] compile a
//! department-wide page from the triple store. The generated HTML is
//! itself annotated with `mg:` attributes, so the output closes the loop:
//! a generated summary can be published back into (another) MANGROVE
//! installation and re-extracted losslessly.

use crate::clean::{resolve, CleaningPolicy};
use revere_storage::TripleStore;
use revere_xml::writer::escape_text;

/// Render the department-wide course summary page. One section per
/// course subject, each fact both displayed and annotated.
pub fn render_course_summary(store: &TripleStore, policy: &CleaningPolicy) -> String {
    let mut html = String::from(
        "<html><head><title>Department course summary</title></head><body>\n\
         <h1>Department course summary</h1>\n\
         <p>Generated from published annotations.</p>\n",
    );
    for subject in store.subjects_with("course.title") {
        html.push_str(&format!("<div mg:about=\"{subject}\">\n"));
        let field = |pred: &str, label: &str, html: &mut String| {
            if let Some(v) = resolve(store, subject, pred, policy).into_iter().next() {
                html.push_str(&format!(
                    "  <p>{label}: <span mg:tag=\"{pred}\">{}</span></p>\n",
                    escape_text(&v.to_string())
                ));
            }
        };
        field("course.title", "Title", &mut html);
        field("course.instructor", "Instructor", &mut html);
        field("course.time", "Time", &mut html);
        field("course.room", "Room", &mut html);
        html.push_str("</div>\n");
    }
    html.push_str("</body></html>\n");
    html
}

/// Render the department "people" page (name / email / office).
pub fn render_people_summary(store: &TripleStore, policy: &CleaningPolicy) -> String {
    let mut html = String::from(
        "<html><head><title>People</title></head><body>\n<h1>People</h1>\n<ul>\n",
    );
    for subject in store.subjects_with("person.name") {
        html.push_str(&format!("<li mg:about=\"{subject}\">"));
        for (pred, sep) in [
            ("person.name", ""),
            ("person.email", " — "),
            ("person.office", ", "),
        ] {
            if let Some(v) = resolve(store, subject, pred, policy).into_iter().next() {
                html.push_str(&format!(
                    "{sep}<span mg:tag=\"{pred}\">{}</span>",
                    escape_text(&v.to_string())
                ));
            }
        }
        html.push_str("</li>\n");
    }
    html.push_str("</ul>\n</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::extract_statements;
    use crate::publish::Mangrove;
    use crate::schema::MangroveSchema;
    use revere_storage::Value;

    fn loaded() -> Mangrove {
        let mut m = Mangrove::new(MangroveSchema::department());
        m.publish(
            "http://u/db",
            r#"<body mg:about="course/db">
                 <h1 mg:tag="course.title">Databases</h1>
                 <span mg:tag="course.instructor">Ada Lovelace</span>
                 <span mg:tag="course.time">MWF 10:30</span>
               </body>"#,
        );
        m.publish(
            "http://u/~ada",
            r#"<body mg:about="person/ada">
                 <span mg:tag="person.name">Ada Lovelace</span>
                 <span mg:tag="person.email">ada@u.edu</span>
               </body>"#,
        );
        m
    }

    #[test]
    fn course_summary_contains_facts_and_annotations() {
        let m = loaded();
        let html = render_course_summary(&m.store, &CleaningPolicy::Freshest);
        assert!(html.contains("Databases"));
        assert!(html.contains("mg:about=\"course/db\""));
        assert!(html.contains("mg:tag=\"course.time\""));
    }

    #[test]
    fn generated_page_republishes_losslessly() {
        // The Strudel loop: generate → publish elsewhere → same facts.
        let m = loaded();
        let html = render_course_summary(&m.store, &CleaningPolicy::Freshest);
        let (stmts, issues) = extract_statements(&html);
        assert!(issues.is_empty(), "{issues:?}");
        assert!(stmts
            .iter()
            .any(|s| s.subject == "course/db"
                && s.predicate == "course.title"
                && s.object == Value::str("Databases")));
        assert!(stmts
            .iter()
            .any(|s| s.predicate == "course.instructor"));
        // Publish into a second installation; the calendar renders there.
        let mut mirror = Mangrove::new(MangroveSchema::department());
        mirror.publish("http://mirror/summary", &html);
        let cal = crate::apps::CourseCalendar::default().render(&mirror.store);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn people_summary_lists_everyone() {
        let m = loaded();
        let html = render_people_summary(&m.store, &CleaningPolicy::Freshest);
        assert!(html.contains("ada@u.edu"));
        let (stmts, issues) = extract_statements(&html);
        assert!(issues.is_empty());
        assert_eq!(stmts.iter().filter(|s| s.subject == "person/ada").count(), 2);
    }

    #[test]
    fn values_are_escaped() {
        let mut m = Mangrove::new(MangroveSchema::department());
        m.store
            .insert("course/x", "course.title", "Logic <& > Proofs", "src");
        let html = render_course_summary(&m.store, &CleaningPolicy::Freshest);
        assert!(html.contains("Logic &lt;&amp; &gt; Proofs"));
        let (stmts, _) = extract_statements(&html);
        assert_eq!(stmts[0].object, Value::str("Logic <& > Proofs"));
    }

    #[test]
    fn empty_store_renders_empty_summary() {
        let store = TripleStore::new();
        let html = render_course_summary(&store, &CleaningPolicy::Freshest);
        let (stmts, _) = extract_statements(&html);
        assert!(stmts.is_empty());
    }
}
