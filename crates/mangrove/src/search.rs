//! The annotation-enabled search engine (§2.2).
//!
//! "Other applications that we are constructing include a departmental
//! paper database, a 'Who's Who,' and an annotation-enabled search
//! engine." The engine below searches the *structured* side of the pages:
//! keywords are TF-IDF-scored against the values published for each
//! subject, and — this is the "annotation-enabled" part — hits can be
//! restricted to specific tags (`person.name:ada`) so a search for a
//! phone number does not match a course description.

use revere_storage::TripleStore;
use std::collections::{BTreeMap, HashMap};

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matching subject.
    pub subject: String,
    /// TF-IDF relevance score.
    pub score: f64,
    /// The `(predicate, value)` pairs that matched a query term.
    pub matched: Vec<(String, String)>,
}

/// An inverted index over the triple store's values.
#[derive(Debug, Default)]
pub struct SearchEngine {
    /// term → (subject → occurrences), with the predicates it came from.
    postings: HashMap<String, BTreeMap<String, Vec<String>>>,
    /// Number of indexed subjects (the "document" count for IDF).
    subjects: usize,
}

fn terms_of(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(str::to_lowercase)
        .collect()
}

impl SearchEngine {
    /// Build (or rebuild) the index from the store's current contents.
    /// MANGROVE's instant-gratification contract applies: call after
    /// publishes, not on a crawl schedule.
    pub fn build(store: &TripleStore) -> SearchEngine {
        let mut postings: HashMap<String, BTreeMap<String, Vec<String>>> = HashMap::new();
        let mut subjects: BTreeMap<&str, ()> = BTreeMap::new();
        for t in store.iter() {
            subjects.insert(&t.subject, ());
            for term in terms_of(&t.object.to_string()) {
                postings
                    .entry(term)
                    .or_default()
                    .entry(t.subject.clone())
                    .or_default()
                    .push(t.predicate.clone());
            }
        }
        SearchEngine { postings, subjects: subjects.len() }
    }

    /// Number of distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Search with optional tag restriction. Query syntax: plain keywords
    /// score everywhere; `tag:keyword` (e.g. `person.name:ada`) only
    /// matches occurrences published under predicates starting with `tag`.
    /// Hits are ranked by summed TF-IDF; returns the top `k`.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let mut scores: BTreeMap<&str, (f64, Vec<(String, String)>)> = BTreeMap::new();
        for raw in query.split_whitespace() {
            let (tag_filter, word) = match raw.split_once(':') {
                Some((tag, w)) if !tag.is_empty() && !w.is_empty() => (Some(tag), w),
                _ => (None, raw),
            };
            for term in terms_of(word) {
                let Some(subjects) = self.postings.get(&term) else {
                    continue;
                };
                // IDF over indexed subjects.
                let idf = ((1.0 + self.subjects as f64)
                    / (1.0 + subjects.len() as f64))
                .ln()
                    + 1.0;
                for (subject, predicates) in subjects {
                    let hits: Vec<&String> = predicates
                        .iter()
                        .filter(|p| tag_filter.map(|t| p.starts_with(t)).unwrap_or(true))
                        .collect();
                    if hits.is_empty() {
                        continue;
                    }
                    let tf = hits.len() as f64;
                    let entry = scores.entry(subject).or_insert((0.0, Vec::new()));
                    entry.0 += tf.sqrt() * idf;
                    for p in hits {
                        let pair = (p.clone(), term.clone());
                        if !entry.1.contains(&pair) {
                            entry.1.push(pair);
                        }
                    }
                }
            }
        }
        let mut out: Vec<SearchHit> = scores
            .into_iter()
            .map(|(subject, (score, matched))| SearchHit {
                subject: subject.to_string(),
                score,
                matched,
            })
            .collect();
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.subject.cmp(&b.subject)));
        out.truncate(k);
        out
    }
}

/// The departmental paper database (§2.2), the third named
/// instant-gratification application: publications aggregated from
/// members' pages, one row per paper with its authors joined.
#[derive(Debug, Clone, Default)]
pub struct PaperDatabase;

impl PaperDatabase {
    /// Render the publication list from the store.
    pub fn render(&self, store: &TripleStore) -> revere_storage::Relation {
        use revere_storage::{RelSchema, Relation, Value};
        let schema = RelSchema::text("papers", &["paper", "title", "authors", "year"]);
        let mut rel = Relation::new(schema);
        for subject in store.subjects_with("publication.title") {
            let title = store
                .query((Some(subject), Some("publication.title"), None))
                .first()
                .map(|t| t.object.clone())
                .unwrap_or(Value::Null);
            let mut authors: Vec<String> = store
                .query((Some(subject), Some("publication.author"), None))
                .iter()
                .map(|t| t.object.to_string())
                .collect();
            authors.sort();
            authors.dedup();
            let year = store
                .query((Some(subject), Some("publication.year"), None))
                .first()
                .map(|t| t.object.clone())
                .unwrap_or(Value::Null);
            rel.insert(vec![
                Value::str(subject),
                title,
                Value::str(authors.join("; ")),
                year,
            ]);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::Mangrove;
    use crate::schema::MangroveSchema;

    fn store() -> TripleStore {
        let mut m = Mangrove::new(MangroveSchema::department());
        m.publish(
            "http://u/db",
            r#"<body mg:about="course/db">
                 <h1 mg:tag="course.title">Advanced Databases</h1>
                 <span mg:tag="course.instructor">Ada Lovelace</span>
               </body>"#,
        );
        m.publish(
            "http://u/~ada",
            r#"<body mg:about="person/ada">
                 <span mg:tag="person.name">Ada Lovelace</span>
                 <span mg:tag="person.office">Databases Lab 3</span>
               </body>"#,
        );
        m.publish(
            "http://u/papers/p1",
            r#"<body mg:about="paper/p1">
                 <span mg:tag="publication.title">Crossing the Structure Chasm</span>
                 <span mg:tag="publication.author">Alon Halevy</span>
                 <span mg:tag="publication.author">Oren Etzioni</span>
                 <span mg:tag="publication.year">2003</span>
               </body>"#,
        );
        m.store
    }

    #[test]
    fn keyword_search_ranks_by_relevance() {
        let engine = SearchEngine::build(&store());
        let hits = engine.search("databases", 10);
        assert_eq!(hits.len(), 2);
        // The course mentions "Databases" in its title; both it and Ada's
        // office match, but scores are positive and sorted.
        assert!(hits[0].score >= hits[1].score);
        assert!(hits.iter().any(|h| h.subject == "course/db"));
        assert!(hits.iter().any(|h| h.subject == "person/ada"));
    }

    #[test]
    fn tag_filter_narrows_to_annotated_field() {
        let engine = SearchEngine::build(&store());
        // Unfiltered: "lovelace" matches both the course (instructor) and
        // the person (name).
        assert_eq!(engine.search("lovelace", 10).len(), 2);
        // Annotation-enabled: only person.name occurrences.
        let hits = engine.search("person.name:lovelace", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, "person/ada");
        assert!(hits[0].matched.iter().all(|(p, _)| p == "person.name"));
    }

    #[test]
    fn multi_term_queries_accumulate() {
        let engine = SearchEngine::build(&store());
        let hits = engine.search("structure chasm", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, "paper/p1");
        assert!(hits[0].matched.len() >= 2);
    }

    #[test]
    fn unknown_terms_yield_nothing() {
        let engine = SearchEngine::build(&store());
        assert!(engine.search("zebra quantum", 10).is_empty());
        assert!(engine.search("", 10).is_empty());
    }

    #[test]
    fn rebuilding_after_publish_sees_new_data() {
        let mut m = Mangrove::new(MangroveSchema::department());
        let before = SearchEngine::build(&m.store);
        assert!(before.search("fresh", 5).is_empty());
        m.publish(
            "http://u/x",
            r#"<body mg:about="course/x"><h1 mg:tag="course.title">Fresh Topic</h1></body>"#,
        );
        let after = SearchEngine::build(&m.store);
        assert_eq!(after.search("fresh", 5).len(), 1);
    }

    #[test]
    fn paper_database_joins_authors() {
        let db = PaperDatabase.render(&store());
        assert_eq!(db.len(), 1);
        let row = &db.rows()[0];
        assert_eq!(row[1].to_string(), "Crossing the Structure Chasm");
        assert!(row[2].to_string().contains("Alon Halevy"));
        assert!(row[2].to_string().contains("Oren Etzioni"));
        assert_eq!(row[3].to_string(), "2003");
    }

    #[test]
    fn empty_store_gives_empty_results() {
        let s = TripleStore::new();
        assert!(SearchEngine::build(&s).search("anything", 5).is_empty());
        assert!(PaperDatabase.render(&s).is_empty());
    }
}
