//! Instant-gratification applications (§2.2).
//!
//! "Instant gratification is provided by building a set of applications
//! over MANGROVE that immediately show the user the value of structuring
//! her data. For example, an online department schedule is created based
//! on the annotations department members add to course home pages ...
//! Other applications ... include a departmental paper database, a 'Who's
//! Who', and an annotation-enabled search engine."
//!
//! Each application is a *view* over the triple store, recomputed on
//! demand — so a publish is visible on the very next render, which is the
//! E4 experiment's subject. Each application chooses its own
//! [`CleaningPolicy`], demonstrating §2.3's point that integrity is an
//! application decision.

use crate::clean::{resolve, CleaningPolicy};
use revere_storage::{Attribute, RelSchema, Relation, TripleStore, Value};

/// The departmental course calendar: one row per course with title, time
/// and room. Uses [`CleaningPolicy::Freshest`] — a schedule should show
/// the latest published time.
#[derive(Debug, Clone)]
pub struct CourseCalendar {
    /// Conflict policy (freshest by default).
    pub policy: CleaningPolicy,
}

impl Default for CourseCalendar {
    fn default() -> Self {
        CourseCalendar { policy: CleaningPolicy::Freshest }
    }
}

impl CourseCalendar {
    /// Render the calendar from the store's current contents.
    pub fn render(&self, store: &TripleStore) -> Relation {
        let schema = RelSchema::text("calendar", &["course", "title", "time", "room"]);
        let mut rel = Relation::new(schema);
        for subject in store.subjects_with("course.title") {
            let get = |pred: &str| {
                resolve(store, subject, pred, &self.policy)
                    .into_iter()
                    .next()
                    .unwrap_or(Value::Null)
            };
            rel.insert(vec![
                Value::str(subject),
                get("course.title"),
                get("course.time"),
                get("course.room"),
            ]);
        }
        rel
    }
}

/// The "Who's Who": people with name, email and office. Multi-valued
/// fields tolerated ([`CleaningPolicy::TakeAll`], joined with `;`).
#[derive(Debug, Clone)]
pub struct WhosWho {
    /// Conflict policy (take-all by default).
    pub policy: CleaningPolicy,
}

impl Default for WhosWho {
    fn default() -> Self {
        WhosWho { policy: CleaningPolicy::TakeAll }
    }
}

impl WhosWho {
    /// Render the listing.
    pub fn render(&self, store: &TripleStore) -> Relation {
        let schema = RelSchema::text("whos_who", &["person", "name", "email", "office"]);
        let mut rel = Relation::new(schema);
        for subject in store.subjects_with("person.name") {
            let get = |pred: &str| {
                let vals = resolve(store, subject, pred, &self.policy);
                if vals.is_empty() {
                    Value::Null
                } else {
                    Value::Str(
                        vals.iter().map(Value::to_string).collect::<Vec<_>>().join("; "),
                    )
                }
            };
            rel.insert(vec![
                Value::str(subject),
                get("person.name"),
                get("person.email"),
                get("person.office"),
            ]);
        }
        rel
    }
}

/// The faculty phone directory — the paper's worked example of
/// provenance-based cleaning: "the application can be instructed to
/// extract a phone number from the faculty's web space, rather than
/// anywhere on the web."
#[derive(Debug, Clone)]
pub struct PhoneDirectory {
    /// Conflict policy (prefer-own-source by default).
    pub policy: CleaningPolicy,
}

impl Default for PhoneDirectory {
    fn default() -> Self {
        PhoneDirectory { policy: CleaningPolicy::PreferOwnSource }
    }
}

impl PhoneDirectory {
    /// Render the directory: one phone per person under the policy.
    pub fn render(&self, store: &TripleStore) -> Relation {
        let schema = RelSchema::new(
            "phone_directory",
            vec![Attribute::text("person"), Attribute::text("name"), Attribute::text("phone")],
        );
        let mut rel = Relation::new(schema);
        for subject in store.subjects_with("person.phone") {
            let phone = resolve(store, subject, "person.phone", &self.policy)
                .into_iter()
                .next()
                .unwrap_or(Value::Null);
            let name = resolve(store, subject, "person.name", &CleaningPolicy::Freshest)
                .into_iter()
                .next()
                .unwrap_or(Value::Null);
            rel.insert(vec![Value::str(subject), name, phone]);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::Mangrove;
    use crate::schema::MangroveSchema;

    fn installation() -> Mangrove {
        let mut m = Mangrove::new(MangroveSchema::department());
        m.publish(
            "http://univ.edu/courses/db.html",
            r#"<body mg:about="course/db">
                 <h1 mg:tag="course.title">Databases</h1>
                 <span mg:tag="course.time">MWF 10:30</span>
                 <span mg:tag="course.room">Sieg 134</span>
               </body>"#,
        );
        m.publish(
            "http://univ.edu/~ada/",
            r#"<body mg:about="person/ada">
                 <span mg:tag="person.name">Ada Lovelace</span>
                 <span mg:tag="person.phone">555-0001</span>
                 <span mg:tag="person.email">ada@univ.edu</span>
                 <span mg:tag="person.office">Sieg 301</span>
               </body>"#,
        );
        m
    }

    #[test]
    fn calendar_lists_courses() {
        let m = installation();
        let cal = CourseCalendar::default().render(&m.store);
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.rows()[0][1], Value::str("Databases"));
        assert_eq!(cal.rows()[0][2], Value::str("MWF 10:30"));
    }

    #[test]
    fn instant_gratification_publish_to_visible() {
        let mut m = installation();
        // A new course page appears...
        m.publish(
            "http://univ.edu/courses/os.html",
            r#"<body mg:about="course/os"><h1 mg:tag="course.title">Operating Systems</h1></body>"#,
        );
        // ...and the very next render shows it.
        let cal = CourseCalendar::default().render(&m.store);
        assert_eq!(cal.len(), 2);
    }

    #[test]
    fn republish_updates_calendar() {
        let mut m = installation();
        m.publish(
            "http://univ.edu/courses/db.html",
            r#"<body mg:about="course/db">
                 <h1 mg:tag="course.title">Databases</h1>
                 <span mg:tag="course.time">TTh 9:00</span>
               </body>"#,
        );
        let cal = CourseCalendar::default().render(&m.store);
        assert_eq!(cal.rows()[0][2], Value::str("TTh 9:00"));
        // Room was removed from the page; it disappears from the view.
        assert_eq!(cal.rows()[0][3], Value::Null);
    }

    #[test]
    fn whos_who_joins_multiple_values() {
        let mut m = installation();
        m.publish(
            "http://univ.edu/group.html",
            r#"<body><div mg:about="person/ada"><span mg:tag="person.email">lovelace@acm.org</span></div></body>"#,
        );
        let ww = WhosWho::default().render(&m.store);
        let email = ww.rows()[0][2].to_string();
        assert!(email.contains("ada@univ.edu") && email.contains("lovelace@acm.org"));
    }

    #[test]
    fn phone_directory_resists_dirty_directories() {
        let mut m = installation();
        // Two stale directories disagree with Ada's own page.
        for d in ["dir1", "dir2"] {
            m.publish(
                &format!("http://univ.edu/{d}.html"),
                r#"<body><div mg:about="person/ada"><span mg:tag="person.phone">555-9999</span></div></body>"#,
            );
        }
        let dir = PhoneDirectory::default().render(&m.store);
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.rows()[0][2], Value::str("555-0001"), "own page must win");
        // A majority-policy directory would have been fooled.
        let fooled = PhoneDirectory { policy: CleaningPolicy::Majority }.render(&m.store);
        assert_eq!(fooled.rows()[0][2], Value::str("555-9999"));
    }

    #[test]
    fn empty_store_renders_empty_views() {
        let store = TripleStore::new();
        assert!(CourseCalendar::default().render(&store).is_empty());
        assert!(WhosWho::default().render(&store).is_empty());
        assert!(PhoneDirectory::default().render(&store).is_empty());
    }
}
