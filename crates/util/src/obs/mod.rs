//! Observability substrate: deterministic tracing, metrics, exporters.
//!
//! The PDMS answers a query by chaining reformulation, view rewriting and
//! multi-peer fetch — a layered pipeline where "the answer is small, slow
//! or incomplete" is undiagnosable without per-stage accounting. This
//! module is the zero-dependency substrate the storage, query and pdms
//! layers thread their accounting through:
//!
//! * [`Tracer`] — a structured span tree keyed by a **logical tick
//!   clock**. Every span start/end consumes one tick, and simulated
//!   latency can be charged with [`Tracer::advance`], so span timestamps
//!   are a pure function of the instrumented code path, not of the
//!   machine. Wall-clock durations are captured on the side and *never*
//!   enter the deterministic exports, so traces can be golden-tested
//!   byte for byte. [`Tracer::new`] retains every span (for golden-trace
//!   tests); [`Tracer::flight`] is the production **flight recorder**: a
//!   bounded ring of the most recently finished spans with deterministic
//!   oldest-first eviction, so long runs keep O(capacity) memory and
//!   [`Tracer::dump`] always has a post-incident snapshot.
//! * [`Metrics`] — a registry of named counters, gauges and log2-bucket
//!   [`Histogram`]s. Counter updates are commutative, so totals stay
//!   deterministic even when worker threads race. [`Metrics::windowed`]
//!   adds epoch-rotated sliding windows: observations land in the
//!   current window, [`Metrics::rotate_window`] (driven by the caller's
//!   logical tick cadence, never wall-clock) closes it, and
//!   [`Metrics::rate`] / [`Metrics::quantile_window`] read the last K
//!   closed windows — recent behaviour, not lifetime averages.
//! * Lossless rollups — [`Histogram::merge`] and
//!   [`MetricsSnapshot::merge`] combine per-peer metrics into a cluster
//!   view. Log2 buckets plus exact count/sum/min/max make histogram
//!   merge *exact*: merging equals observing the union.
//! * Deterministic **head sampling** — [`ObsConfig::sample_rate`] keeps
//!   a pure-hash-chosen fraction of root spans (children follow their
//!   root), bounding tracing overhead under sustained load without
//!   losing run-to-run determinism.
//! * Chrome trace-event export ([`Tracer::chrome_trace`]) — the JSON
//!   array `chrome://tracing` / Perfetto load directly, rendered with an
//!   in-repo serializer (the workspace has no serde).
//! * [`LogSink`] — the shared writer the bench/property harnesses report
//!   through instead of bare `println!`/`eprintln!`, so harness output is
//!   machine-parseable and separable from test noise.
//!
//! Canonical metric names live in [`names`]; every `Obs::inc`/`observe`
//! call site uses those constants, and [`names::unregistered`] lets tests
//! fail on strays.
//!
//! The [`Obs`] handle bundles one tracer and one metrics registry behind
//! a cheap `Clone`; [`Obs::disabled`] is a no-alloc no-op, so hot paths
//! take `&Obs` unconditionally and instrumentation costs nothing when
//! off. The contract every instrumented layer upholds: **enabling
//! observability never changes answers** — only what is recorded about
//! producing them.

pub mod names;

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::fault::{mix, unit};

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// One recorded span: a named interval on the logical tick clock, with
/// ordered key→value annotations and an optional parent.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Dense id, in span-*start* order (0-based).
    pub id: usize,
    /// Parent span id, `None` for roots.
    pub parent: Option<usize>,
    /// Span name, e.g. `pdms.fetch.relation`.
    pub name: String,
    /// Annotations in insertion order (later `set` of a key replaces the
    /// value in place, keeping the order stable).
    pub args: Vec<(String, String)>,
    /// Logical tick at span start.
    pub start_tick: u64,
    /// Logical tick at span end (`None` while open).
    pub end_tick: Option<u64>,
    /// Wall-clock nanoseconds between start and finish. Diagnostic only:
    /// excluded from the deterministic exports.
    pub wall_ns: Option<u128>,
}

impl SpanRecord {
    /// Duration in logical ticks (open spans extend to `now`).
    pub fn ticks(&self, now: u64) -> u64 {
        self.end_tick.unwrap_or(now).saturating_sub(self.start_tick)
    }

    /// Look up an annotation.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A started, not yet finished span plus its wall-clock start.
#[derive(Debug)]
struct OpenSpan {
    rec: SpanRecord,
    started_at: Instant,
}

#[derive(Debug, Default)]
struct TracerInner {
    ticks: u64,
    /// Ids handed out so far (monotone; ids stay dense in start order
    /// even after old spans have been evicted).
    started: usize,
    /// Spans currently open, by id. Bounded by instrumented nesting depth
    /// (the span stack), never by trace length.
    open: BTreeMap<usize, OpenSpan>,
    /// Finished spans in finish order. In flight-recorder mode this is a
    /// ring: once `capacity` is reached, finishing a span evicts the
    /// oldest-finished one.
    done: VecDeque<SpanRecord>,
    /// `None` = unbounded (golden-trace mode); `Some(n)` = flight
    /// recorder keeping at most `n` finished spans.
    capacity: Option<usize>,
    /// Finished spans evicted so far (flight-recorder mode only).
    evicted: u64,
}

impl TracerInner {
    /// References to every retained span (finished and open), sorted by
    /// span id — the one walk all exporters share, clone-free.
    fn sorted(&self) -> Vec<&SpanRecord> {
        let mut refs: Vec<&SpanRecord> =
            self.done.iter().chain(self.open.values().map(|o| &o.rec)).collect();
        refs.sort_by_key(|s| s.id);
        refs
    }
}

/// A deterministic structured tracer: a tree of [`SpanRecord`]s on a
/// logical tick clock. Cheap to clone (shared handle); interior mutability
/// so instrumented code can record through `&self` receivers.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// A fresh unbounded tracer at tick 0: every span is retained, so
    /// exports are complete. This is the golden-trace-test mode; long
    /// runs should use [`Tracer::flight`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh **flight recorder** at tick 0: at most `capacity` finished
    /// spans are retained, evicting the oldest-finished deterministically,
    /// so memory is O(capacity) regardless of trace length. `capacity` is
    /// clamped to at least 1.
    pub fn flight(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                capacity: Some(capacity.max(1)),
                ..TracerInner::default()
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, TracerInner> {
        // Plain data behind the lock; recover from poisoning like the
        // storage catalog does (DESIGN.md §5).
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Open a root span.
    pub fn span(&self, name: impl Into<String>) -> Span {
        self.open(name.into(), None)
    }

    fn open(&self, name: String, parent: Option<usize>) -> Span {
        let mut t = self.lock();
        let id = t.started;
        t.started += 1;
        let start_tick = t.ticks;
        t.ticks += 1;
        t.open.insert(
            id,
            OpenSpan {
                rec: SpanRecord {
                    id,
                    parent,
                    name,
                    args: Vec::new(),
                    start_tick,
                    end_tick: None,
                    wall_ns: None,
                },
                started_at: Instant::now(),
            },
        );
        Span { tracer: self.clone(), id, closed: false }
    }

    /// Advance the logical clock by `n` ticks — how simulated latency
    /// (network backoff, fault-plan delays) is charged to the trace.
    pub fn advance(&self, n: u64) {
        self.lock().ticks += n;
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.lock().ticks
    }

    /// Snapshot every *retained* span (in span-id order). In unbounded
    /// mode that is the full trace; a flight recorder returns its ring
    /// plus any still-open spans. Clones each record — periodic scrapers
    /// should prefer [`Tracer::for_each_span`] or [`Tracer::spans_since`].
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().sorted().into_iter().cloned().collect()
    }

    /// Snapshot only the retained spans with `id >= since` (in span-id
    /// order) — the incremental-scrape companion to [`Tracer::spans`]: a
    /// periodic scraper remembers the last id it saw and clones just the
    /// suffix instead of the whole trace on every poll.
    pub fn spans_since(&self, since: usize) -> Vec<SpanRecord> {
        self.lock().sorted().into_iter().filter(|s| s.id >= since).cloned().collect()
    }

    /// Visit every retained span in span-id order **without cloning** —
    /// what the exporters are built on.
    pub fn for_each_span(&self, mut f: impl FnMut(&SpanRecord)) {
        for s in self.lock().sorted() {
            f(s);
        }
    }

    /// Number of spans started so far (including evicted ones).
    pub fn len(&self) -> usize {
        self.lock().started
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans currently retained (finished ring + open spans).
    pub fn retained(&self) -> usize {
        let t = self.lock();
        t.done.len() + t.open.len()
    }

    /// Finished spans evicted from the flight-recorder ring so far.
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// The flight-recorder capacity (`None` for an unbounded tracer).
    pub fn capacity(&self) -> Option<usize> {
        self.lock().capacity
    }

    /// Export the span tree as a Chrome trace-event JSON array (the
    /// `chrome://tracing` / Perfetto "JSON Array Format"). Timestamps and
    /// durations are **logical ticks**, so for a fixed instrumented code
    /// path the output is byte-identical run to run; wall-clock is
    /// deliberately left out. Load with `ph:"X"` complete events; spans
    /// still open at export time run to the current tick. A flight
    /// recorder exports only its retained window.
    pub fn chrome_trace(&self) -> String {
        let t = self.lock();
        let now = t.ticks;
        let mut out = String::from("[");
        for (i, s) in t.sorted().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            json_string(&mut out, &s.name);
            out.push_str(",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":");
            out.push_str(&s.start_tick.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&s.ticks(now).to_string());
            out.push_str(",\"args\":{\"id\":");
            out.push_str(&s.id.to_string());
            if let Some(p) = s.parent {
                out.push_str(",\"parent\":");
                out.push_str(&p.to_string());
            }
            for (k, v) in &s.args {
                out.push(',');
                json_string(&mut out, k);
                out.push(':');
                json_string(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// The post-incident text snapshot: one line per retained span,
    /// ordered by span id, headed by the recorder's accounting. Purely
    /// logical-tick data, so a fixed code path dumps byte-identically.
    pub fn dump(&self) -> String {
        let t = self.lock();
        let cap = match t.capacity {
            Some(c) => c.to_string(),
            None => "unbounded".to_string(),
        };
        let mut out = format!(
            "flight recorder: capacity={cap} retained={} evicted={} started={} now={}\n",
            t.done.len() + t.open.len(),
            t.evicted,
            t.started,
            t.ticks,
        );
        for s in t.sorted() {
            let end = match s.end_tick {
                Some(e) => e.to_string(),
                None => "*".to_string(),
            };
            out.push_str(&format!("#{} {} [{}..{}]", s.id, s.name, s.start_tick, end));
            if let Some(p) = s.parent {
                out.push_str(&format!(" parent={p}"));
            }
            for (k, v) in &s.args {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Render the span tree as indented text — the human-facing view of
    /// the same deterministic data the JSON export carries. Spans whose
    /// parent was evicted from a flight-recorder ring render as roots.
    pub fn render_tree(&self) -> String {
        let t = self.lock();
        let now = t.ticks;
        let by_id: BTreeMap<usize, &SpanRecord> =
            t.sorted().into_iter().map(|s| (s.id, s)).collect();
        let mut children: BTreeMap<Option<usize>, Vec<usize>> = BTreeMap::new();
        for s in by_id.values() {
            let key = s.parent.filter(|p| by_id.contains_key(p));
            children.entry(key).or_default().push(s.id);
        }
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = children
            .get(&None)
            .map(|roots| roots.iter().rev().map(|&r| (r, 0)).collect())
            .unwrap_or_default();
        while let Some((id, depth)) = stack.pop() {
            let s = by_id[&id];
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} [{}..{}]", s.name, s.start_tick, s.end_tick.unwrap_or(now)));
            for (k, v) in &s.args {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            if let Some(kids) = children.get(&Some(id)) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
        out
    }
}

/// An open span. Finishes (records its end tick) on [`Span::finish`] or
/// on drop, whichever comes first.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: usize,
    closed: bool,
}

impl Span {
    /// This span's id in the tracer.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Open a child span.
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.tracer.open(name.into(), Some(self.id))
    }

    /// Set an annotation (replaces an existing key in place).
    pub fn set(&self, key: &str, value: impl fmt::Display) {
        let mut t = self.tracer.lock();
        let Some(open) = t.open.get_mut(&self.id) else { return };
        let value = value.to_string();
        match open.rec.args.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => open.rec.args.push((key.to_string(), value)),
        }
    }

    /// Close the span at the current tick.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut t = self.tracer.lock();
        let Some(mut open) = t.open.remove(&self.id) else { return };
        let end = t.ticks;
        t.ticks += 1;
        open.rec.end_tick = Some(end);
        open.rec.wall_ns = Some(open.started_at.elapsed().as_nanos());
        t.done.push_back(open.rec);
        if let Some(cap) = t.capacity {
            while t.done.len() > cap {
                t.done.pop_front();
                t.evicted += 1;
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Escape and append a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render `s` as a JSON string literal (quotes included) — the same
/// escaper the Chrome export uses, for other modules emitting trace
/// events (e.g. the pdms monitor's rollup export).
pub fn json_escape(s: &str) -> String {
    let mut out = String::new();
    json_string(&mut out, s);
    out
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A log2-bucket histogram over `u64` observations: bucket `i` holds
/// values whose bit length is `i` (0 → bucket 0, 1 → bucket 1, 2..3 →
/// bucket 2, 4..7 → bucket 3, ...). Exact count/sum/min/max ride along,
/// so means are exact and percentiles are bucket-upper-bound estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Smallest observation (u64::MAX when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`. Bucket 64 holds values with
    /// the top bit set; its bound is `u64::MAX` (a plain `1 << 64` would
    /// overflow — caught by the `u64::MAX` edge-case test).
    fn bucket_top(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self`. Log2 buckets make this **lossless**:
    /// the merge is exactly the histogram that would have observed the
    /// union of both observation streams (count, sum, min, max and every
    /// bucket agree) — which is what lets per-peer histograms roll up
    /// into an exact cluster view.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the bucket
    /// holding the `ceil(q·count)`-th observation, clamped to the exact
    /// max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_top(i).min(self.max);
            }
        }
        self.max
    }
}

/// One sliding window's worth of deltas: the counters and histogram
/// observations that landed while this window was current.
#[derive(Debug, Default, Clone)]
struct Frame {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Sliding-window state for a windowed [`Metrics`] registry: the
/// in-progress frame plus up to `keep` closed frames.
#[derive(Debug)]
struct WindowState {
    keep: usize,
    /// Rotations performed so far — the window epoch.
    epoch: u64,
    current: Frame,
    closed: VecDeque<Frame>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    windows: Option<WindowState>,
}

/// A registry of named counters, gauges and histograms. Cheap to clone
/// (shared handle); `&self` updates via interior mutability. Snapshots
/// render in sorted name order, so output is deterministic.
///
/// [`Metrics::windowed`] additionally keeps epoch-rotated sliding
/// windows: every `inc`/`observe` also lands in the *current* window,
/// [`Metrics::rotate_window`] closes it (retaining the last `keep`
/// closed windows), and [`Metrics::rate`] / [`Metrics::quantile_window`]
/// read only those closed windows. Rotation is driven by the caller's
/// logical tick cadence — never wall-clock — so windowed readings are as
/// byte-deterministic as cumulative ones.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<MetricsInner>>,
}

impl Metrics {
    /// An empty cumulative-only registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry that also keeps the last `keep` rotated windows
    /// (`keep` is clamped to at least 1).
    pub fn windowed(keep: usize) -> Self {
        Metrics {
            inner: Arc::new(Mutex::new(MetricsInner {
                windows: Some(WindowState {
                    keep: keep.max(1),
                    epoch: 0,
                    current: Frame::default(),
                    closed: VecDeque::new(),
                }),
                ..MetricsInner::default()
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Add `n` to the named counter (creating it at 0).
    pub fn inc(&self, name: &str, n: u64) {
        let mut m = self.lock();
        match m.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                m.counters.insert(name.to_string(), n);
            }
        }
        if let Some(w) = &mut m.windows {
            *w.current.counters.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge.
    pub fn set_gauge(&self, name: &str, v: i64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Read a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    /// Record an observation into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        let mut m = self.lock();
        m.histograms.entry(name.to_string()).or_default().observe(v);
        if let Some(w) = &mut m.windows {
            w.current.histograms.entry(name.to_string()).or_default().observe(v);
        }
    }

    /// Clone out the named histogram (cumulative).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// True when this registry keeps sliding windows.
    pub fn is_windowed(&self) -> bool {
        self.lock().windows.is_some()
    }

    /// Close the current window and open a fresh one, retaining at most
    /// `keep` closed windows. No-op on a cumulative-only registry.
    pub fn rotate_window(&self) {
        let mut m = self.lock();
        if let Some(w) = &mut m.windows {
            let frame = std::mem::take(&mut w.current);
            w.closed.push_back(frame);
            while w.closed.len() > w.keep {
                w.closed.pop_front();
            }
            w.epoch += 1;
        }
    }

    /// Rotations performed so far (0 for cumulative-only registries).
    pub fn window_epoch(&self) -> u64 {
        self.lock().windows.as_ref().map_or(0, |w| w.epoch)
    }

    /// Sum of the named counter over the retained closed windows.
    pub fn window_counter(&self, name: &str) -> u64 {
        let m = self.lock();
        m.windows
            .as_ref()
            .map_or(0, |w| w.closed.iter().filter_map(|f| f.counters.get(name)).sum())
    }

    /// Per-window average of the named counter over the retained closed
    /// windows (0.0 until the first rotation) — "events per tick" when
    /// the caller rotates once per logical tick.
    pub fn rate(&self, name: &str) -> f64 {
        let m = self.lock();
        match m.windows.as_ref() {
            Some(w) if !w.closed.is_empty() => {
                let total: u64 = w.closed.iter().filter_map(|f| f.counters.get(name)).sum();
                total as f64 / w.closed.len() as f64
            }
            _ => 0.0,
        }
    }

    /// The named histogram merged across the retained closed windows
    /// (empty until the first rotation).
    pub fn window_histogram(&self, name: &str) -> Histogram {
        let m = self.lock();
        let mut out = Histogram::default();
        if let Some(w) = m.windows.as_ref() {
            for f in &w.closed {
                if let Some(h) = f.histograms.get(name) {
                    out.merge(h);
                }
            }
        }
        out
    }

    /// Estimated `q`-quantile of the named histogram over the retained
    /// closed windows — the sliding-window companion to
    /// [`Histogram::quantile`].
    pub fn quantile_window(&self, name: &str, q: f64) -> u64 {
        self.window_histogram(name).quantile(q)
    }

    /// A point-in-time copy of every metric, for rendering or assertions.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        MetricsSnapshot {
            counters: m.counters.clone(),
            gauges: m.gauges.clone(),
            histograms: m.histograms.clone(),
        }
    }

    /// A snapshot of the retained closed windows only: counters summed
    /// and histograms merged across them, gauges carried over at their
    /// current value (gauges are points, not deltas). This is what a
    /// monitor scrapes to see *recent* behaviour.
    pub fn window_snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        let mut out = MetricsSnapshot { gauges: m.gauges.clone(), ..MetricsSnapshot::default() };
        if let Some(w) = m.windows.as_ref() {
            for f in &w.closed {
                for (k, v) in &f.counters {
                    *out.counters.entry(k.clone()).or_insert(0) += v;
                }
                for (k, h) in &f.histograms {
                    out.histograms.entry(k.clone()).or_default().merge(h);
                }
            }
        }
        out
    }
}

/// A frozen copy of a [`Metrics`] registry. `Display` renders one
/// machine-parseable line per metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: counters and gauges add, histograms
    /// merge losslessly ([`Histogram::merge`]). Gauges *sum* because a
    /// rollup reads them as cluster totals (total WAL backlog, total
    /// sync lag); per-peer points stay visible in per-peer snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k}={v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "gauge {k}={v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "histogram {k} count={} sum={} min={} max={} p50={} p95={}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile(0.5),
                h.quantile(0.95),
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Obs: the handle instrumented layers carry
// ---------------------------------------------------------------------------

/// How an [`Obs`] handle records: unbounded vs flight-recorder tracing,
/// cumulative vs windowed metrics, full vs head-sampled spans. The
/// default (`Obs::enabled()`) is the golden-trace configuration: retain
/// everything, sample nothing away.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// `Some(n)` bounds the tracer to a flight-recorder ring of `n`
    /// finished spans ([`Tracer::flight`]); `None` retains every span.
    pub flight_capacity: Option<usize>,
    /// `Some(k)` makes the metrics registry windowed, retaining the last
    /// `k` rotated windows ([`Metrics::windowed`]).
    pub metric_windows: Option<usize>,
    /// `Some(r)` head-samples root spans at rate `r` (`0.0..=1.0`): a
    /// pure-hash draw on `(sample_seed, root ordinal)` keeps the span
    /// tree for ~`r` of the roots and drops it (children included,
    /// recorded as no-ops) for the rest. `None` traces every root.
    pub sample_rate: Option<f64>,
    /// Seed for the sampling draw — same seed, same call sequence, same
    /// kept set, so sampled traces stay byte-deterministic.
    pub sample_seed: u64,
}

/// Head-sampling state: the pure-hash draw plus the root ordinal.
#[derive(Debug)]
struct Sampler {
    rate: f64,
    seed: u64,
    roots: Mutex<u64>,
}

const SALT_SAMPLE: u64 = 0x0b5e_c0de_5a3b_1e5d;

impl Sampler {
    /// Deterministically decide the next root span's fate.
    fn keep_next(&self) -> bool {
        let mut n = self.roots.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let ordinal = *n;
        *n += 1;
        if self.rate >= 1.0 {
            return true;
        }
        if self.rate <= 0.0 {
            return false;
        }
        unit(mix(&[self.seed, SALT_SAMPLE, ordinal])) < self.rate
    }
}

#[derive(Debug)]
struct ObsCore {
    tracer: Tracer,
    metrics: Metrics,
    sampler: Option<Sampler>,
}

/// The observability handle threaded through storage → query → pdms: one
/// [`Tracer`] plus one [`Metrics`] registry, or nothing at all.
/// [`Obs::disabled`] allocates nothing and makes every operation a no-op,
/// so un-instrumented callers pay only a branch.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsCore>>,
}

impl Obs {
    /// A live handle with a fresh unbounded tracer and cumulative metrics
    /// registry — the golden-trace configuration.
    pub fn enabled() -> Self {
        Self::with_config(ObsConfig::default())
    }

    /// A live handle configured for production telemetry: flight-recorder
    /// capacity, windowed metrics, head sampling — any subset.
    pub fn with_config(cfg: ObsConfig) -> Self {
        let tracer = match cfg.flight_capacity {
            Some(cap) => Tracer::flight(cap),
            None => Tracer::new(),
        };
        let metrics = match cfg.metric_windows {
            Some(k) => Metrics::windowed(k),
            None => Metrics::new(),
        };
        let sampler = cfg
            .sample_rate
            .map(|rate| Sampler { rate, seed: cfg.sample_seed, roots: Mutex::new(0) });
        Obs { inner: Some(Arc::new(ObsCore { tracer, metrics, sampler })) }
    }

    /// The no-op handle (no allocation).
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The tracer, when enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.as_deref().map(|c| &c.tracer)
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_deref().map(|c| &c.metrics)
    }

    /// Counter add (no-op when disabled).
    pub fn inc(&self, name: &str, n: u64) {
        if let Some(c) = &self.inner {
            c.metrics.inc(name, n);
        }
    }

    /// Histogram observation (no-op when disabled).
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(c) = &self.inner {
            c.metrics.observe(name, v);
        }
    }

    /// Gauge set (no-op when disabled).
    pub fn set_gauge(&self, name: &str, v: i64) {
        if let Some(c) = &self.inner {
            c.metrics.set_gauge(name, v);
        }
    }

    /// Charge `n` logical ticks to the trace clock (no-op when disabled).
    pub fn advance(&self, n: u64) {
        if let Some(c) = &self.inner {
            c.tracer.advance(n);
        }
    }

    /// Rotate the metrics window ([`Metrics::rotate_window`]); no-op when
    /// disabled or cumulative-only.
    pub fn rotate_window(&self) {
        if let Some(c) = &self.inner {
            c.metrics.rotate_window();
        }
    }

    /// Open a root span (a no-op handle when disabled, or when the head
    /// sampler drops this root — children of a dropped root are free).
    pub fn span(&self, name: &str) -> SpanHandle {
        let Some(c) = &self.inner else { return SpanHandle(None) };
        if let Some(s) = &c.sampler {
            if !s.keep_next() {
                return SpanHandle(None);
            }
        }
        SpanHandle(Some(c.tracer.span(name)))
    }
}

/// A possibly-absent span: the disabled-observability twin of [`Span`].
/// Every method is a no-op when the underlying tracer is off, so
/// instrumented code reads the same either way.
#[derive(Debug, Default)]
pub struct SpanHandle(Option<Span>);

impl SpanHandle {
    /// The always-no-op handle.
    pub fn none() -> Self {
        SpanHandle(None)
    }

    /// True when this handle records anything.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Open a child span (no-op child when disabled).
    pub fn child(&self, name: &str) -> SpanHandle {
        SpanHandle(self.0.as_ref().map(|s| s.child(name)))
    }

    /// Set an annotation.
    pub fn set(&self, key: &str, value: impl fmt::Display) {
        if let Some(s) = &self.0 {
            s.set(key, value);
        }
    }

    /// Close the span at the current tick (also happens on drop).
    pub fn finish(self) {
        if let Some(s) = self.0 {
            s.finish();
        }
    }
}

// ---------------------------------------------------------------------------
// LogSink
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum SinkTarget {
    Stdout,
    Stderr,
    Capture(Vec<String>),
}

/// A shared line-oriented writer for harness diagnostics. The bench and
/// property harnesses emit through a sink instead of bare
/// `println!`/`eprintln!`: every line is prefixed `[stream]`, so
/// consumers can grep one stream out of interleaved output, and tests can
/// swap in a capturing sink to assert on (or silence) diagnostics.
#[derive(Debug, Clone)]
pub struct LogSink {
    target: Arc<Mutex<SinkTarget>>,
}

impl LogSink {
    /// A sink that prints to stdout.
    pub fn stdout() -> Self {
        LogSink { target: Arc::new(Mutex::new(SinkTarget::Stdout)) }
    }

    /// A sink that prints to stderr.
    pub fn stderr() -> Self {
        LogSink { target: Arc::new(Mutex::new(SinkTarget::Stderr)) }
    }

    /// A sink that buffers lines for later inspection.
    pub fn capture() -> Self {
        LogSink { target: Arc::new(Mutex::new(SinkTarget::Capture(Vec::new()))) }
    }

    /// Emit one line on `stream` (rendered as `[stream] line`).
    pub fn emit(&self, stream: &str, line: &str) {
        let rendered = format!("[{stream}] {line}");
        let mut t = self.target.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match &mut *t {
            SinkTarget::Stdout => println!("{rendered}"),
            SinkTarget::Stderr => eprintln!("{rendered}"),
            SinkTarget::Capture(lines) => lines.push(rendered),
        }
    }

    /// Emit one machine-parseable `key=value` record on `stream`. Values
    /// containing whitespace are double-quoted (with `"` and `\` escaped),
    /// so a consumer can split on spaces outside quotes.
    pub fn emit_kv(&self, stream: &str, fields: &[(&str, String)]) {
        let mut line = String::new();
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(k);
            line.push('=');
            if v.is_empty() || v.contains(char::is_whitespace) || v.contains('"') {
                line.push('"');
                for c in v.chars() {
                    if c == '"' || c == '\\' {
                        line.push('\\');
                    }
                    line.push(c);
                }
                line.push('"');
            } else {
                line.push_str(v);
            }
        }
        self.emit(stream, &line);
    }

    /// Lines captured so far (empty for stdout/stderr sinks).
    pub fn lines(&self) -> Vec<String> {
        let t = self.target.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*t {
            SinkTarget::Capture(lines) => lines.clone(),
            _ => Vec::new(),
        }
    }
}

impl Default for LogSink {
    fn default() -> Self {
        Self::stdout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_records_parents_args_and_ticks() {
        let t = Tracer::new();
        let root = t.span("query");
        root.set("peer", "MIT");
        {
            let child = root.child("fetch");
            child.set("relation", "Berkeley.course");
            child.set("relation", "Berkeley.course2"); // replace in place
            t.advance(5);
            child.finish();
        }
        root.finish();
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].arg("relation"), Some("Berkeley.course2"));
        assert_eq!(spans[1].args.len(), 1);
        // Each start/end consumes a tick: start(root)@0, start(child)@1
        // (clock now 2), +5 latency → 7, end(child)@7, end(root)@8.
        assert_eq!(spans[1].start_tick, 1);
        assert_eq!(spans[1].end_tick, Some(7));
        assert_eq!(spans[0].end_tick, Some(8));
        assert!(spans[0].wall_ns.is_some());
    }

    #[test]
    fn spans_close_on_drop() {
        let t = Tracer::new();
        {
            let _s = t.span("scoped");
        }
        assert_eq!(t.spans()[0].end_tick, Some(1));
    }

    #[test]
    fn chrome_trace_is_deterministic_and_excludes_wall_clock() {
        let run = || {
            let t = Tracer::new();
            let root = t.span("q");
            root.set("n", 3);
            let c = root.child("step \"one\"\n");
            c.finish();
            root.finish();
            t.chrome_trace()
        };
        let a = run();
        // Two fresh runs of the same path are byte-identical even though
        // their wall clocks differ.
        assert_eq!(a, run());
        assert!(a.contains("\"ph\":\"X\""), "{a}");
        assert!(a.contains("\\\"one\\\""), "escaped quote: {a}");
        assert!(a.contains("\\n"), "escaped newline: {a}");
        assert!(!a.contains("wall"), "wall clock leaked into export: {a}");
        assert!(a.starts_with('[') && a.ends_with("]\n"), "{a}");
    }

    #[test]
    fn render_tree_indents_children() {
        let t = Tracer::new();
        let root = t.span("root");
        root.child("kid").finish();
        root.finish();
        t.span("second_root").finish();
        let tree = t.render_tree();
        assert!(tree.contains("root [0..3]"), "{tree}");
        assert!(tree.contains("\n  kid [1..2]"), "{tree}");
        assert!(tree.contains("\nsecond_root"), "{tree}");
    }

    #[test]
    fn flight_recorder_bounds_memory_and_evicts_oldest() {
        let t = Tracer::flight(4);
        assert_eq!(t.capacity(), Some(4));
        for i in 0..100 {
            t.span(format!("s{i}")).finish();
        }
        assert_eq!(t.len(), 100, "len counts every started span");
        assert_eq!(t.retained(), 4, "ring holds exactly its capacity");
        assert_eq!(t.evicted(), 96);
        // Survivors are the most recent finishes, exported in id order.
        let ids: Vec<usize> = t.spans().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![96, 97, 98, 99]);
        // spans_since clones just a suffix.
        assert_eq!(t.spans_since(98).len(), 2);
        assert_eq!(t.spans_since(1000).len(), 0);
    }

    #[test]
    fn flight_recorder_dump_is_ordered_and_deterministic() {
        let run = || {
            let t = Tracer::flight(3);
            let root = t.span("root");
            root.set("peer", "P0");
            for i in 0..5 {
                root.child(format!("c{i}")).finish();
            }
            drop(root);
            t.dump()
        };
        let d = run();
        assert_eq!(d, run(), "dump diverged across identical runs");
        assert!(d.starts_with("flight recorder: capacity=3 retained=3 evicted=3 started=6"), "{d}");
        // Ordered by span id: the retained children then the root.
        let i4 = d.find("#4 c3").expect("span 4 retained");
        let i5 = d.find("#5 c4").expect("span 5 retained");
        assert!(i4 < i5, "{d}");
        // Children whose parent survives keep the parent edge; render_tree
        // treats evicted parents as roots without panicking.
        assert!(d.contains("parent=0"), "{d}");
        let _ = Tracer::flight(1).render_tree();
    }

    #[test]
    fn unbounded_dump_and_open_spans_render() {
        let t = Tracer::new();
        let root = t.span("open_root");
        let d = t.dump();
        assert!(d.contains("capacity=unbounded"), "{d}");
        assert!(d.contains("#0 open_root [0..*]"), "open span marked: {d}");
        root.finish();
    }

    #[test]
    fn spans_since_on_unbounded_tracer_is_a_suffix() {
        let t = Tracer::new();
        for i in 0..10 {
            t.span(format!("s{i}")).finish();
        }
        let tail = t.spans_since(7);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].id, 7);
        let mut seen = 0;
        t.for_each_span(|_| seen += 1);
        assert_eq!(seen, 10);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1110);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.quantile(0.0), 0);
        // p50 = 4th of 7 observations → value 3 lands in bucket 2 (top 3).
        assert_eq!(h.quantile(0.5), 3);
        // The top quantile is clamped to the exact max, not the bucket top.
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count, 0);
    }

    #[test]
    fn single_observation_histogram() {
        let mut h = Histogram::default();
        h.observe(42);
        assert_eq!((h.count, h.sum, h.min, h.max), (1, 42, 42, 42));
        // Every quantile of a single observation is that observation
        // (the bucket top clamps to the exact max).
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(0.5), 42);
        assert_eq!(h.quantile(1.0), 42);
    }

    #[test]
    fn extreme_observation_does_not_overflow() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.min, u64::MAX);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
    }

    #[test]
    fn merge_equals_observing_the_union() {
        // Hand-picked boundary values; the seeded sweep lives in
        // tests/property_tests.rs.
        let xs = [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX];
        let ys = [0u64, 5, 63, 64, u64::MAX - 1];
        let (mut a, mut b, mut union) =
            (Histogram::default(), Histogram::default(), Histogram::default());
        for &x in &xs {
            a.observe(x);
            union.observe(x);
        }
        for &y in &ys {
            b.observe(y);
            union.observe(y);
        }
        a.merge(&b);
        assert_eq!(a, union, "merge must equal observing the union");
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn metrics_registry_counts_and_snapshots_deterministically() {
        let m = Metrics::new();
        m.inc("b.count", 2);
        m.inc("a.count", 1);
        m.inc("b.count", 3);
        m.set_gauge("depth", -4);
        m.observe("lat", 7);
        m.observe("lat", 100);
        assert_eq!(m.counter("b.count"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("depth"), Some(-4));
        assert_eq!(m.histogram("lat").unwrap().count, 2);
        let text = m.snapshot().to_string();
        let a_pos = text.find("counter a.count=1").expect("a.count line");
        let b_pos = text.find("counter b.count=5").expect("b.count line");
        assert!(a_pos < b_pos, "sorted order: {text}");
        assert!(text.contains("gauge depth=-4"), "{text}");
        assert!(text.contains("histogram lat count=2"), "{text}");
    }

    #[test]
    fn windowed_metrics_read_only_closed_windows() {
        let m = Metrics::windowed(2);
        assert!(m.is_windowed() && !Metrics::new().is_windowed());
        m.inc("c", 10);
        m.observe("h", 100);
        // Nothing rotated yet: windowed readers see nothing, cumulative
        // readers see everything.
        assert_eq!(m.window_counter("c"), 0);
        assert_eq!(m.rate("c"), 0.0);
        assert_eq!(m.quantile_window("h", 0.5), 0);
        assert_eq!(m.counter("c"), 10);
        m.rotate_window();
        assert_eq!(m.window_counter("c"), 10);
        assert_eq!(m.rate("c"), 10.0);
        assert_eq!(m.quantile_window("h", 0.5), 100);
        // Two more rotations age the first window out (keep = 2).
        m.inc("c", 4);
        m.rotate_window();
        m.rotate_window();
        assert_eq!(m.window_epoch(), 3);
        assert_eq!(m.window_counter("c"), 4, "first window aged out");
        assert_eq!(m.rate("c"), 2.0, "4 events over 2 retained windows");
        assert_eq!(m.window_histogram("h").count, 0, "histogram aged out");
        // Cumulative view is untouched by rotation.
        assert_eq!(m.counter("c"), 14);
        // window_snapshot carries only retained-window deltas (+ gauges).
        m.set_gauge("g", 7);
        let ws = m.window_snapshot();
        assert_eq!(ws.counters.get("c"), Some(&4));
        assert_eq!(ws.gauges.get("g"), Some(&7));
        // rotate_window on a cumulative registry is a no-op.
        let plain = Metrics::new();
        plain.inc("c", 1);
        plain.rotate_window();
        assert_eq!(plain.window_epoch(), 0);
        assert_eq!(plain.counter("c"), 1);
    }

    #[test]
    fn snapshot_merge_rolls_up_losslessly() {
        let (a, b) = (Metrics::new(), Metrics::new());
        a.inc("x", 2);
        a.set_gauge("g", 5);
        a.observe("h", 10);
        b.inc("x", 3);
        b.inc("y", 1);
        b.set_gauge("g", -2);
        b.observe("h", 1000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters.get("x"), Some(&5));
        assert_eq!(merged.counters.get("y"), Some(&1));
        assert_eq!(merged.gauges.get("g"), Some(&3), "gauges sum in rollups");
        let h = &merged.histograms["h"];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 1010, 10, 1000));
    }

    #[test]
    fn disabled_obs_is_free_and_inert() {
        let o = Obs::disabled();
        assert!(!o.is_enabled());
        o.inc("x", 1);
        o.observe("y", 2);
        o.advance(10);
        o.rotate_window();
        let s = o.span("nothing");
        assert!(!s.is_recording());
        s.child("nested").set("k", "v");
        s.finish();
        assert!(o.tracer().is_none());
        assert!(o.metrics().is_none());
    }

    #[test]
    fn enabled_obs_records_through_the_handle() {
        let o = Obs::enabled();
        let s = o.span("root");
        s.child("leaf").finish();
        s.finish();
        o.inc("c", 2);
        assert_eq!(o.tracer().unwrap().len(), 2);
        assert_eq!(o.metrics().unwrap().counter("c"), 2);
        // Clones share state.
        let o2 = o.clone();
        o2.inc("c", 1);
        assert_eq!(o.metrics().unwrap().counter("c"), 3);
    }

    #[test]
    fn head_sampling_is_deterministic_and_bounds_spans() {
        let run = |rate| {
            let o = Obs::with_config(ObsConfig {
                sample_rate: Some(rate),
                sample_seed: 7,
                ..ObsConfig::default()
            });
            for i in 0..200 {
                let root = o.span("root");
                root.child(&format!("kid{i}")).finish();
                root.finish();
            }
            (o.tracer().unwrap().len(), o.tracer().unwrap().chrome_trace())
        };
        let (n_kept, trace_a) = run(0.25);
        let (n_again, trace_b) = run(0.25);
        assert_eq!(n_kept, n_again, "sampled span count diverged");
        assert_eq!(trace_a, trace_b, "sampled trace diverged");
        // Roughly the configured fraction of the 400 spans survives, and
        // children follow their roots exactly (even count).
        assert!(n_kept % 2 == 0, "a kept root keeps its child");
        assert!((40..160).contains(&n_kept), "rate 0.25 kept {n_kept} of 400");
        // Boundary rates short-circuit.
        assert_eq!(run(1.0).0, 400);
        assert_eq!(run(0.0).0, 0);
        // Metrics still record under sampling.
        let o = Obs::with_config(ObsConfig { sample_rate: Some(0.0), ..ObsConfig::default() });
        o.inc("c", 1);
        assert_eq!(o.metrics().unwrap().counter("c"), 1);
    }

    #[test]
    fn json_escape_matches_export_escaping() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn log_sink_captures_and_prefixes() {
        let sink = LogSink::capture();
        sink.emit("bench", "hello");
        sink.emit_kv(
            "bench",
            &[("name", "g/f".to_string()), ("title", "two words".to_string()), ("n", "3".to_string())],
        );
        let lines = sink.lines();
        assert_eq!(lines[0], "[bench] hello");
        assert_eq!(lines[1], "[bench] name=g/f title=\"two words\" n=3");
        // stdout sinks don't capture.
        assert!(LogSink::stdout().lines().is_empty());
    }
}
