//! Canonical metric names: the one registry every `Obs::inc`/`observe`
//! call site draws from.
//!
//! Names follow a `layer.component.noun_verb` scheme — the dotted prefix
//! says *where* in the stack the number comes from (`storage.scan`,
//! `query.eval`, `pdms.fetch`, `monitor.probe`, ...), the snake_case
//! leaf says *what happened* (`rows_scanned`, `messages_dropped`,
//! `retries_spent`). Keeping every name here (instead of scattered
//! string literals) makes three things cheap:
//!
//! * renames are one-file diffs with the compiler finding call sites;
//! * dashboards and rollups can enumerate [`ALL`] instead of guessing;
//! * tests can lint a [`MetricsSnapshot`] with [`unregistered`] and fail
//!   on stray names before they ossify into ad-hoc conventions.

use super::MetricsSnapshot;

// --- storage layer ---------------------------------------------------------

/// Rows read by a storage scan before predicate filtering.
pub const STORAGE_SCAN_ROWS_READ: &str = "storage.scan.rows_read";
/// Rows a storage scan kept after applying its pushed-down predicates.
pub const STORAGE_SCAN_ROWS_KEPT: &str = "storage.scan.rows_kept";
/// Rows hashed into join build sides.
pub const STORAGE_JOIN_ROWS_BUILT: &str = "storage.join.rows_built";
/// Rows streamed through join probe sides.
pub const STORAGE_JOIN_ROWS_PROBED: &str = "storage.join.rows_probed";
/// Probe rows that found at least one build match via the hash index.
pub const STORAGE_JOIN_INDEX_HITS: &str = "storage.join.index_hits";
/// Rows emitted by joins.
pub const STORAGE_JOIN_ROWS_MATCHED: &str = "storage.join.rows_matched";

// --- query layer -----------------------------------------------------------

/// Plan steps executed by the evaluator.
pub const QUERY_EVAL_STEPS_EXECUTED: &str = "query.eval.steps_executed";
/// Base-relation rows scanned during evaluation.
pub const QUERY_EVAL_ROWS_SCANNED: &str = "query.eval.rows_scanned";
/// Rows materialized into join build sides during evaluation.
pub const QUERY_EVAL_ROWS_BUILT: &str = "query.eval.rows_built";
/// Binding rows probed against join indexes during evaluation.
pub const QUERY_EVAL_ROWS_PROBED: &str = "query.eval.rows_probed";
/// Histogram: binding-set size after each plan step.
pub const QUERY_EVAL_STEP_BINDINGS: &str = "query.eval.step_bindings";

// --- pdms fetch (query-time data movement) ---------------------------------

/// Fetch request messages sent to owner peers (including retries).
pub const PDMS_FETCH_MESSAGES_SENT: &str = "pdms.fetch.messages_sent";
/// Fetch request messages the fault plan dropped.
pub const PDMS_FETCH_MESSAGES_DROPPED: &str = "pdms.fetch.messages_dropped";
/// Fetch retries spent beyond each first attempt.
pub const PDMS_FETCH_RETRIES_SPENT: &str = "pdms.fetch.retries_spent";
/// Completeness gaps: relations whose owner never delivered.
pub const PDMS_FETCH_GAPS_OBSERVED: &str = "pdms.fetch.gaps_observed";
/// Histogram: simulated round-trip latency of successful fetches.
pub const PDMS_FETCH_LATENCY_TICKS: &str = "pdms.fetch.latency_ticks";

// --- pdms ship (updategram propagation) ------------------------------------

/// Updategram messages shipped to subscribers (including retries).
pub const PDMS_SHIP_MESSAGES_SENT: &str = "pdms.ship.messages_sent";
/// Updategram messages the fault plan dropped.
pub const PDMS_SHIP_MESSAGES_DROPPED: &str = "pdms.ship.messages_dropped";
/// Updategram messages duplicated by the wire.
pub const PDMS_SHIP_MESSAGES_DUPLICATED: &str = "pdms.ship.messages_duplicated";
/// Shipping retries spent beyond each first attempt.
pub const PDMS_SHIP_RETRIES_SPENT: &str = "pdms.ship.retries_spent";
/// Histogram: delivery attempts needed per updategram.
pub const PDMS_SHIP_ATTEMPTS_SPENT: &str = "pdms.ship.attempts_spent";

// --- pdms feedback (estimator calibration loop) ----------------------------

/// Cached plans evicted by the q-error feedback loop.
pub const PDMS_FEEDBACK_PLANS_REPLANNED: &str = "pdms.feedback.plans_replanned";
/// Per-step actual cardinalities fed back into peer statistics.
pub const PDMS_FEEDBACK_OVERLAPS_OBSERVED: &str = "pdms.feedback.overlaps_observed";

// --- pdms cache (reformulation/plan cache verdicts) ------------------------

/// Queries answered with a cached reformulation.
pub const PDMS_CACHE_REFORMULATION_HITS: &str = "pdms.cache.reformulation_hits";
/// Queries that had to reformulate from scratch.
pub const PDMS_CACHE_REFORMULATION_MISSES: &str = "pdms.cache.reformulation_misses";
/// Disjuncts executed under a cached plan.
pub const PDMS_CACHE_PLAN_HITS: &str = "pdms.cache.plan_hits";
/// Disjuncts planned from scratch.
pub const PDMS_CACHE_PLAN_MISSES: &str = "pdms.cache.plan_misses";
/// Cached plans evicted for miscalibration.
pub const PDMS_CACHE_PLAN_EVICTIONS: &str = "pdms.cache.plan_evictions";

// --- pdms wal (durability backlog, scraped as gauges) ----------------------

/// Gauge: change-log records appended but not yet acknowledged by every
/// durable subscriber (the unacked LSN span).
pub const PDMS_WAL_RECORDS_PENDING: &str = "pdms.wal.records_pending";
/// Gauge: change-log records published but not yet absorbed by the
/// durable-subscription sync cursor (inbox watermark lag).
pub const PDMS_WAL_RECORDS_UNSYNCED: &str = "pdms.wal.records_unsynced";

// --- pdms feedback vitals (scraped as gauges) ------------------------------

/// Gauge: worst q-error observed for plans touching this peer, in
/// thousandths (integer so gauges stay exact).
pub const PDMS_FEEDBACK_QERROR_WORST_MILLI: &str = "pdms.feedback.qerror_worst_milli";

// --- monitor (the overlay health monitor's own accounting) -----------------

/// Liveness probe messages sent (including intra-scrape retries).
pub const MONITOR_PROBE_PROBES_SENT: &str = "monitor.probe.probes_sent";
/// Scrapes in which a peer answered no probe at all.
pub const MONITOR_PROBE_PROBES_MISSED: &str = "monitor.probe.probes_missed";
/// Peers successfully scraped.
pub const MONITOR_SCRAPE_PEERS_SEEN: &str = "monitor.scrape.peers_seen";
/// Threshold-crossing events appended to the monitor's event log.
pub const MONITOR_SCRAPE_EVENTS_EMITTED: &str = "monitor.scrape.events_emitted";

/// Every canonical metric name, sorted — the registry the lint test and
/// the dashboards enumerate.
pub const ALL: &[&str] = &[
    MONITOR_PROBE_PROBES_MISSED,
    MONITOR_PROBE_PROBES_SENT,
    MONITOR_SCRAPE_EVENTS_EMITTED,
    MONITOR_SCRAPE_PEERS_SEEN,
    PDMS_CACHE_PLAN_EVICTIONS,
    PDMS_CACHE_PLAN_HITS,
    PDMS_CACHE_PLAN_MISSES,
    PDMS_CACHE_REFORMULATION_HITS,
    PDMS_CACHE_REFORMULATION_MISSES,
    PDMS_FEEDBACK_OVERLAPS_OBSERVED,
    PDMS_FEEDBACK_PLANS_REPLANNED,
    PDMS_FEEDBACK_QERROR_WORST_MILLI,
    PDMS_FETCH_GAPS_OBSERVED,
    PDMS_FETCH_LATENCY_TICKS,
    PDMS_FETCH_MESSAGES_DROPPED,
    PDMS_FETCH_MESSAGES_SENT,
    PDMS_FETCH_RETRIES_SPENT,
    PDMS_SHIP_ATTEMPTS_SPENT,
    PDMS_SHIP_MESSAGES_DROPPED,
    PDMS_SHIP_MESSAGES_DUPLICATED,
    PDMS_SHIP_MESSAGES_SENT,
    PDMS_SHIP_RETRIES_SPENT,
    PDMS_WAL_RECORDS_PENDING,
    PDMS_WAL_RECORDS_UNSYNCED,
    QUERY_EVAL_ROWS_BUILT,
    QUERY_EVAL_ROWS_PROBED,
    QUERY_EVAL_ROWS_SCANNED,
    QUERY_EVAL_STEP_BINDINGS,
    QUERY_EVAL_STEPS_EXECUTED,
    STORAGE_JOIN_INDEX_HITS,
    STORAGE_JOIN_ROWS_BUILT,
    STORAGE_JOIN_ROWS_MATCHED,
    STORAGE_JOIN_ROWS_PROBED,
    STORAGE_SCAN_ROWS_KEPT,
    STORAGE_SCAN_ROWS_READ,
];

/// Is `name` in the canonical registry?
pub fn is_registered(name: &str) -> bool {
    ALL.binary_search(&name).is_ok()
}

/// Does `name` follow the `layer.component.noun_verb` scheme: exactly
/// three dot-separated lowercase snake_case segments, the leaf compound
/// (containing `_`)?
pub fn follows_scheme(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    if segs.len() != 3 {
        return false;
    }
    let well_formed = |s: &str| {
        !s.is_empty()
            && !s.starts_with('_')
            && !s.ends_with('_')
            && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    segs.iter().all(|s| well_formed(s)) && segs[2].contains('_')
}

/// Every metric name in `snap` that is *not* in the canonical registry —
/// the lint tests assert this comes back empty after a representative
/// workload.
pub fn unregistered(snap: &MetricsSnapshot) -> Vec<String> {
    snap.counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys())
        .filter(|n| !is_registered(n))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Metrics;

    #[test]
    fn registry_is_sorted_deduped_and_scheme_clean() {
        for w in ALL.windows(2) {
            assert!(w[0] < w[1], "ALL must stay sorted/deduped: {:?} >= {:?}", w[0], w[1]);
        }
        for name in ALL {
            assert!(follows_scheme(name), "canonical name breaks the scheme: {name}");
        }
    }

    #[test]
    fn scheme_rejects_malformed_names() {
        for bad in [
            "messages",                 // no layer
            "pdms.fetch",               // no leaf
            "pdms.fetch.messages",      // leaf not noun_verb
            "pdms.fetch.dropped.again", // too deep
            "pdms.Fetch.rows_read",     // uppercase
            "pdms..rows_read",          // empty segment
            "pdms.fetch._rows",         // leading underscore
        ] {
            assert!(!follows_scheme(bad), "scheme accepted {bad:?}");
        }
        assert!(follows_scheme("storage.scan.rows_read"));
    }

    #[test]
    fn unregistered_flags_strays_only() {
        let m = Metrics::new();
        m.inc(STORAGE_SCAN_ROWS_READ, 1);
        m.observe(PDMS_FETCH_LATENCY_TICKS, 3);
        m.set_gauge(PDMS_WAL_RECORDS_PENDING, 5);
        assert!(unregistered(&m.snapshot()).is_empty());
        m.inc("pdms.fetch.bytes", 1);
        assert_eq!(unregistered(&m.snapshot()), vec!["pdms.fetch.bytes".to_string()]);
    }
}
