//! Deterministic fault injection for the simulated peer overlay.
//!
//! Production peers fail; the paper's §3.1 peers "join and leave at will".
//! A [`FaultPlan`] decides — as a *pure function* of a seed — which peers
//! are down, which messages are lost or answered with a transient error,
//! and how many latency ticks a delivery costs. Because every decision is
//! derived by hashing `(seed, peer, message key, attempt)` rather than by
//! consuming a shared mutable RNG stream, the same plan gives identical
//! verdicts regardless of evaluation order: sequential and multi-threaded
//! query paths observe the same network weather, and a chaos run replays
//! exactly from its seed.
//!
//! [`RetryPolicy`] (capped exponential backoff) is the standard knob both
//! the query fetch path and updategram shipping use to ride out transient
//! fates. An all-zero [`FaultSpec`] (the default) is the perfect network:
//! every message delivers instantly, so fault-aware call sites behave
//! byte-identically to their pre-chaos versions.

use crate::rng::splitmix64;
use std::collections::{BTreeMap, BTreeSet};

/// FNV-1a 64-bit hash: a stable, dependency-free string hash used to key
/// fault decisions on peer and message names.
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mix a sequence of words into one via SplitMix64 steps (order-sensitive,
/// avalanche-quality). The basis constant keeps `mix(&[])` away from 0.
/// Public because it is the workspace's shared pure-hash coin: the fault
/// plan, the obs head sampler, and the monitor's probe draws all derive
/// deterministic verdicts from it.
pub fn mix(parts: &[u64]) -> u64 {
    let mut s: u64 = 0x243F_6A88_85A3_08D3; // π digits
    for &p in parts {
        let mut t = s ^ p;
        s = splitmix64(&mut t);
    }
    s
}

/// Map a hash word to `[0, 1)` with 53 bits of precision.
pub fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// Role salts so the same (peer, key) draws independent dice per question.
const SALT_OUTAGE: u64 = 0x0FA1;
const SALT_DROP: u64 = 0x0D10;
const SALT_FLAKY: u64 = 0x0F1A;
const SALT_LATENCY: u64 = 0x01A7;
const SALT_DUP: u64 = 0x0D0B;
const SALT_CRASH: u64 = 0x0C5A;
const SALT_CRASH_TICK: u64 = 0x0C71;

/// The chaos dial: probabilities and ranges a [`FaultPlan`] draws from.
///
/// The default is all-zero — a perfect network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability that a given peer is down for the whole run.
    pub outage_prob: f64,
    /// Peers that are down unconditionally (targeted chaos for tests).
    pub down_peers: BTreeSet<String>,
    /// Per-message probability the request vanishes in flight.
    pub drop_prob: f64,
    /// Per-message probability of a transient (retryable) error response.
    pub flaky_prob: f64,
    /// Inclusive `(min, max)` latency ticks charged per delivered message.
    pub latency_ticks: (u64, u64),
    /// Probability a delivered message is delivered a second time
    /// (exercises receiver-side idempotence).
    pub duplicate_prob: f64,
    /// Deterministic kill-at-tick events: peer → the simulation tick at
    /// which it crashes (targeted chaos for tests and E16). From that
    /// tick on the peer is down until the harness restarts it.
    pub crashes: BTreeMap<String, u64>,
    /// Probability a peer draws a seeded crash tick from `crash_window`.
    pub crash_prob: f64,
    /// Inclusive `(min, max)` tick window seeded crashes are drawn from.
    pub crash_window: (u64, u64),
}

impl FaultSpec {
    /// A one-dial chaos profile: peer outages at `failure_rate`, drops and
    /// flaky responses at half of it each, duplication at a quarter, and
    /// 1–4 ticks of latency once any fault is possible.
    pub fn chaos(seed: u64, failure_rate: f64) -> Self {
        let f = failure_rate.clamp(0.0, 1.0);
        FaultSpec {
            seed,
            outage_prob: f,
            down_peers: BTreeSet::new(),
            drop_prob: f / 2.0,
            flaky_prob: f / 2.0,
            latency_ticks: if f > 0.0 { (1, 4) } else { (0, 0) },
            duplicate_prob: f / 4.0,
            ..FaultSpec::default()
        }
    }

    /// Mark one peer as unconditionally down.
    pub fn with_down_peer(mut self, peer: impl Into<String>) -> Self {
        self.down_peers.insert(peer.into());
        self
    }

    /// Schedule a deterministic crash: `peer` dies at `tick`.
    pub fn with_crash(mut self, peer: impl Into<String>, tick: u64) -> Self {
        self.crashes.insert(peer.into(), tick);
        self
    }
}

/// What happened to one message attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Request and response both arrive, after `latency` ticks.
    Delivered {
        /// Simulated ticks the round trip costs.
        latency: u64,
    },
    /// The request is lost; the sender times out and may retry.
    Dropped,
    /// The peer answers with a transient error; retryable.
    Flaky,
}

/// A sealed, replayable fault schedule: [`FaultSpec`] plus the pure-hash
/// derivation of every verdict.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Seal a spec into a plan.
    pub fn new(spec: FaultSpec) -> Self {
        FaultPlan { spec }
    }

    /// The perfect network: nothing fails, nothing waits.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Borrow the spec this plan was sealed from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// True when no fault can ever fire (the happy-path fast check).
    pub fn is_zero(&self) -> bool {
        let s = &self.spec;
        s.outage_prob <= 0.0
            && s.down_peers.is_empty()
            && s.drop_prob <= 0.0
            && s.flaky_prob <= 0.0
            && s.duplicate_prob <= 0.0
            && s.latency_ticks == (0, 0)
            && s.crashes.is_empty()
            && s.crash_prob <= 0.0
    }

    /// Is `peer` down for the whole run?
    pub fn is_down(&self, peer: &str) -> bool {
        if self.spec.down_peers.contains(peer) {
            return true;
        }
        self.spec.outage_prob > 0.0
            && unit(mix(&[self.spec.seed, SALT_OUTAGE, stable_hash(peer)])) < self.spec.outage_prob
    }

    /// The tick at which `peer` crashes, if it does: an explicit
    /// [`FaultSpec::crashes`] entry wins; otherwise a seeded draw fires
    /// with probability `crash_prob` and picks a tick in `crash_window`.
    pub fn crash_tick(&self, peer: &str) -> Option<u64> {
        if let Some(&t) = self.spec.crashes.get(peer) {
            return Some(t);
        }
        if self.spec.crash_prob > 0.0
            && unit(mix(&[self.spec.seed, SALT_CRASH, stable_hash(peer)])) < self.spec.crash_prob
        {
            let (lo, hi) = self.spec.crash_window;
            let tick = if hi > lo {
                lo + mix(&[self.spec.seed, SALT_CRASH_TICK, stable_hash(peer)]) % (hi - lo + 1)
            } else {
                lo
            };
            return Some(tick);
        }
        None
    }

    /// Is `peer` unreachable at simulation tick `tick`? Covers both
    /// whole-run outages ([`FaultPlan::is_down`]) and crashes whose tick
    /// has passed (a crashed peer stays down until the harness restarts
    /// it — queries in between must report the gap, not shrink silently).
    pub fn is_down_at(&self, peer: &str, tick: u64) -> bool {
        self.is_down(peer) || self.crash_tick(peer).is_some_and(|t| tick >= t)
    }

    /// The fate of attempt number `attempt` of message `key` to `peer`.
    /// (A down peer never answers; callers check [`FaultPlan::is_down`]
    /// first.)
    pub fn fate(&self, peer: &str, key: &str, attempt: u32) -> Fate {
        let p = stable_hash(peer);
        let k = stable_hash(key);
        let a = u64::from(attempt);
        if self.spec.drop_prob > 0.0
            && unit(mix(&[self.spec.seed, SALT_DROP, p, k, a])) < self.spec.drop_prob
        {
            return Fate::Dropped;
        }
        if self.spec.flaky_prob > 0.0
            && unit(mix(&[self.spec.seed, SALT_FLAKY, p, k, a])) < self.spec.flaky_prob
        {
            return Fate::Flaky;
        }
        let (lo, hi) = self.spec.latency_ticks;
        let latency = if hi > lo {
            lo + mix(&[self.spec.seed, SALT_LATENCY, p, k, a]) % (hi - lo + 1)
        } else {
            lo
        };
        Fate::Delivered { latency }
    }

    /// Should delivered message `key` arrive a second time?
    pub fn duplicates(&self, peer: &str, key: &str) -> bool {
        self.spec.duplicate_prob > 0.0
            && unit(mix(&[self.spec.seed, SALT_DUP, stable_hash(peer), stable_hash(key)]))
                < self.spec.duplicate_prob
    }
}

/// Retry with capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1 is always made.
    pub max_attempts: u32,
    /// Backoff ticks after the first failed attempt.
    pub base_backoff: u64,
    /// Ceiling on the per-attempt backoff.
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_backoff: 1, max_backoff: 8 }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, no waiting.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, base_backoff: 0, max_backoff: 0 }
    }

    /// Backoff ticks charged after failed attempt number `attempt`
    /// (0-based): `min(base · 2^attempt, max)`.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_backoff
            .checked_shl(attempt.min(63))
            .unwrap_or(self.max_backoff);
        shifted.min(self.max_backoff)
    }

    /// Attempts, never less than one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_always_delivers_instantly() {
        let plan = FaultPlan::zero();
        assert!(plan.is_zero());
        for peer in ["A", "B", "C"] {
            assert!(!plan.is_down(peer));
            for attempt in 0..5 {
                assert_eq!(plan.fate(peer, "r", attempt), Fate::Delivered { latency: 0 });
            }
            assert!(!plan.duplicates(peer, "g1"));
        }
    }

    #[test]
    fn verdicts_are_pure_functions_of_the_seed() {
        let a = FaultPlan::new(FaultSpec::chaos(42, 0.3));
        let b = FaultPlan::new(FaultSpec::chaos(42, 0.3));
        for peer in ["P0", "P1", "P2", "P3"] {
            assert_eq!(a.is_down(peer), b.is_down(peer));
            for attempt in 0..4 {
                assert_eq!(a.fate(peer, "P1.course", attempt), b.fate(peer, "P1.course", attempt));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_weather() {
        let a = FaultPlan::new(FaultSpec::chaos(1, 0.5));
        let b = FaultPlan::new(FaultSpec::chaos(2, 0.5));
        let fates_a: Vec<Fate> = (0..64).map(|i| a.fate("P", &format!("k{i}"), 0)).collect();
        let fates_b: Vec<Fate> = (0..64).map(|i| b.fate("P", &format!("k{i}"), 0)).collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn down_peers_grow_monotonically_with_failure_rate() {
        // Same seed, rising rate: the down set only gains members, because
        // each peer's outage die is fixed and only the threshold moves.
        let peers: Vec<String> = (0..32).map(|i| format!("P{i}")).collect();
        let mut prev: BTreeSet<&str> = BTreeSet::new();
        for rate in [0.0, 0.1, 0.25, 0.5, 0.9] {
            let plan = FaultPlan::new(FaultSpec::chaos(7, rate));
            let down: BTreeSet<&str> =
                peers.iter().filter(|p| plan.is_down(p)).map(String::as_str).collect();
            assert!(down.is_superset(&prev), "rate {rate}: {down:?} ⊉ {prev:?}");
            prev = down;
        }
    }

    #[test]
    fn explicit_down_peer_overrides_probability() {
        let plan = FaultPlan::new(FaultSpec::default().with_down_peer("Berkeley"));
        assert!(plan.is_down("Berkeley"));
        assert!(!plan.is_down("MIT"));
        assert!(!plan.is_zero());
    }

    #[test]
    fn explicit_crash_tick_downs_the_peer_from_that_tick_on() {
        let plan = FaultPlan::new(FaultSpec::default().with_crash("Berkeley", 5));
        assert!(!plan.is_zero());
        assert_eq!(plan.crash_tick("Berkeley"), Some(5));
        assert_eq!(plan.crash_tick("MIT"), None);
        assert!(!plan.is_down("Berkeley"), "a crash is not a whole-run outage");
        assert!(!plan.is_down_at("Berkeley", 4));
        assert!(plan.is_down_at("Berkeley", 5));
        assert!(plan.is_down_at("Berkeley", 99));
        assert!(!plan.is_down_at("MIT", 99));
    }

    #[test]
    fn seeded_crashes_are_deterministic_and_land_in_the_window() {
        let spec = FaultSpec {
            seed: 11,
            crash_prob: 0.5,
            crash_window: (3, 9),
            ..FaultSpec::default()
        };
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        let peers: Vec<String> = (0..64).map(|i| format!("P{i}")).collect();
        let mut crashed = 0;
        for p in &peers {
            assert_eq!(a.crash_tick(p), b.crash_tick(p), "pure function of the seed");
            if let Some(t) = a.crash_tick(p) {
                crashed += 1;
                assert!((3..=9).contains(&t), "{p} crashes at {t}");
            }
        }
        assert!((16..=48).contains(&crashed), "p=0.5 gave {crashed}/64");
    }

    #[test]
    fn fault_rates_are_roughly_calibrated() {
        let plan = FaultPlan::new(FaultSpec {
            seed: 5,
            drop_prob: 0.25,
            ..FaultSpec::default()
        });
        let dropped = (0..10_000)
            .filter(|i| plan.fate("P", &format!("m{i}"), 0) == Fate::Dropped)
            .count();
        assert!((2000..3000).contains(&dropped), "p=0.25 gave {dropped}/10000");
    }

    #[test]
    fn latency_stays_in_the_declared_band() {
        let plan = FaultPlan::new(FaultSpec {
            seed: 9,
            latency_ticks: (2, 6),
            ..FaultSpec::default()
        });
        for i in 0..1000 {
            match plan.fate("P", &format!("m{i}"), 0) {
                Fate::Delivered { latency } => assert!((2..=6).contains(&latency)),
                other => panic!("unexpected fate {other:?}"),
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy { max_attempts: 6, base_backoff: 1, max_backoff: 8 };
        assert_eq!(
            (0..6).map(|a| r.backoff(a)).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 8, 8]
        );
        assert_eq!(RetryPolicy::none().attempts(), 1);
        assert_eq!(RetryPolicy::none().backoff(3), 0);
    }

    #[test]
    fn stable_hash_is_stable_and_spread() {
        assert_eq!(stable_hash("Berkeley"), stable_hash("Berkeley"));
        assert_ne!(stable_hash("Berkeley"), stable_hash("Berkelez"));
        assert_ne!(stable_hash(""), 0);
    }
}
