//! A small seeded PRNG: SplitMix64-seeded xoshiro256++.
//!
//! Not cryptographic — it drives synthetic-workload generation and
//! property tests, where the requirements are determinism per seed, good
//! statistical dispersion, and speed. The surface (`StdRng`,
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] /
//! [`RngExt::random_bool`] / [`RngExt::shuffle`]) matches what the
//! workspace's call sites were written against, so porting is mechanical.

use std::ops::Range;

/// Types that can produce raw random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand a 64-bit seed into xoshiro state and
/// to derive independent per-case seeds in the property harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Values that [`RngExt::random_range`] can draw uniformly from a
/// half-open `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty random_range");
                // Work in u64 offsets from the start so signed types and
                // usize share one code path.
                let span = (range.end as i128 - range.start as i128) as u64;
                // Lemire multiply-shift: maps a raw word onto [0, span)
                // with bias < 2^-64 per draw — immaterial here.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty random_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience draws on top of [`RngCore`]; blanket-implemented.
pub trait RngExt: RngCore {
    /// Uniform draw from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.random_f64() < p
        }
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.random_range(0..i + 1);
            xs.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(12345);
        let mut b = StdRng::seed_from_u64(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_cover_small_domains() {
        // Every value of a width-5 range appears in 1000 draws.
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn random_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        StdRng::seed_from_u64(7).shuffle(&mut a);
        StdRng::seed_from_u64(7).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..100).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn random_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f = rng.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
