//! Dependency-free substrates for the rest of the workspace.
//!
//! The build environment is hermetic: crates.io is unreachable, so every
//! facility the workspace used to pull from the registry lives here
//! instead, with deliberately compatible surfaces so call sites port
//! mechanically:
//!
//! * [`rng`] — a small, seeded, splittable PRNG (SplitMix64-seeded
//!   xoshiro256++) with the `StdRng` / `SeedableRng` / `RngExt` surface
//!   the `workload`, `corpus` and `bench` crates were written against.
//! * [`prop`] — a closure-driven property-test harness (`forall` with a
//!   case count and seeded, shrink-free generation) standing in for
//!   `proptest`.
//! * [`criterion`] — a micro-benchmark harness (warmup + N timed samples,
//!   median/p95) with a `criterion`-shaped API (`Criterion`, groups,
//!   `BenchmarkId`, `criterion_group!`/`criterion_main!`) so the bench
//!   files keep their structure.
//! * [`fault`] — deterministic fault injection for the simulated peer
//!   overlay: a seeded [`fault::FaultPlan`] (outages, drops, flaky
//!   responses, latency, duplication) whose verdicts are pure functions
//!   of `(seed, peer, key, attempt)`, plus capped-exponential
//!   [`fault::RetryPolicy`].
//! * [`obs`] — the observability substrate: a deterministic span-tree
//!   tracer on a logical tick clock, a metrics registry (counters,
//!   gauges, log2-bucket histograms), a Chrome trace-event JSON
//!   exporter, and the [`obs::LogSink`] shared writer the harnesses
//!   report through.
//!
//! Everything here is deterministic given a seed, allocation-light, and
//! uses only `std`.

pub mod criterion;
pub mod fault;
pub mod obs;
pub mod prop;
pub mod rng;

/// Mirror of `rand::rngs`, so `use revere_util::rngs::StdRng` works.
pub mod rngs {
    pub use crate::rng::StdRng;
}

pub use rng::{RngCore, RngExt, SeedableRng, StdRng};
