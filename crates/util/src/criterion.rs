//! A micro-benchmark harness with a `criterion`-shaped API.
//!
//! Replaces the `criterion` crate for this workspace's `harness = false`
//! bench targets. The surface kept: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`]
//! / [`BenchmarkGroup::sample_size`], [`BenchmarkId`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — so the five files in
//! `crates/bench/benches/` keep their structure.
//!
//! Measurement model: one warmup phase sizes an iteration batch so a
//! sample takes roughly [`TARGET_SAMPLE`], then `sample_size` samples are
//! timed and per-iteration **median** and **p95** are reported through a
//! [`LogSink`] (stdout by default, a capture sink in tests). Each
//! measurement also emits a machine-parseable `key=value` record on the
//! `bench` stream, so CI can grep results out of interleaved output. No
//! plotting, no statistics files, no outlier analysis.

use crate::obs::LogSink;
use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time the warmup phase aims for when sizing batches.
const TARGET_SAMPLE: Duration = Duration::from_millis(2);
/// Minimum wall-clock spent warming up a routine before measuring.
const WARMUP: Duration = Duration::from_millis(10);

/// A benchmark identifier rendered as `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("pruned", 8)` renders as `pruned/8`.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }

    /// An id with only a parameter component.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Hint for how to amortize setup cost in [`Bencher::iter_batched`].
/// This harness times one routine call per batch regardless, so the
/// variants only exist for call-site compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state; criterion would batch many.
    SmallInput,
    /// Large per-iteration state; criterion would batch few.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// The measurement driver handed to bench closures.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { samples: Vec::new(), sample_size }
    }

    /// Time `routine` repeatedly: warmup, size the batch, then record
    /// `sample_size` samples of per-iteration seconds.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup and batch sizing: run until WARMUP has elapsed, tracking
        // the mean cost to pick how many iterations fill TARGET_SAMPLE.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }

    /// Like [`Bencher::iter`], but re-creates the routine's input outside
    /// the timed region before every call.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // One warmup call keeps cold-start effects out of the samples
        // without paying for the (possibly expensive) setup many times.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.id, &b.samples);
        self
    }

    fn report(&mut self, id: &str, samples: &[f64]) {
        let name = format!("{}/{}", self.name, id);
        let line = summarize(&name, samples);
        self.criterion.sink.emit("bench", &line);
        if !samples.is_empty() {
            let (median, p95) = percentiles(samples);
            self.criterion.sink.emit_kv(
                "bench.kv",
                &[
                    ("name", name),
                    ("median_s", format!("{median:.9}")),
                    ("p95_s", format!("{p95:.9}")),
                    ("samples", samples.len().to_string()),
                ],
            );
        }
        self.criterion.lines.push(line);
    }

    /// End the group (kept for criterion API compatibility; reporting is
    /// incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level bench driver; one per process, created by `criterion_main!`.
pub struct Criterion {
    sample_size: usize,
    lines: Vec<String>,
    sink: LogSink,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, lines: Vec::new(), sink: LogSink::stdout() }
    }
}

impl Criterion {
    /// Route this driver's reporting through `sink` instead of stdout.
    pub fn with_sink(mut self, sink: LogSink) -> Self {
        self.sink = sink;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Re-emit every measurement at the end of the run.
    pub fn final_summary(&self) {
        if self.lines.is_empty() {
            return;
        }
        self.sink.emit("bench", &format!("== bench summary ({} measurements) ==", self.lines.len()));
        for l in &self.lines {
            self.sink.emit("bench", l);
        }
    }
}

/// Median and p95 of a non-empty sample set (seconds).
fn percentiles(samples: &[f64]) -> (f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = sorted[sorted.len() / 2];
    let p95 = sorted[((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1)];
    (median, p95)
}

/// Render one measurement line: `name  median <t>  p95 <t>  (n samples)`.
fn summarize(name: &str, samples: &[f64]) -> String {
    if samples.is_empty() {
        return format!("{name:<52} (no samples)");
    }
    let (median, p95) = percentiles(samples);
    format!(
        "{name:<52} median {:>10}  p95 {:>10}  ({} samples)",
        fmt_duration(median),
        fmt_duration(p95),
        samples.len()
    )
}

/// Human units for a seconds measurement.
fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a bench group function from bench functions, criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::criterion::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` from bench groups, criterion-style:
/// `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::criterion::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

// Make `use revere_util::criterion::{criterion_group, criterion_main}`
// work like the real crate's paths (macro_export places them at the
// crate root).
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("pruned", 8).id, "pruned/8");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn summarize_orders_percentiles() {
        let line = summarize("g/b", &[0.004, 0.001, 0.002, 0.003, 0.010]);
        assert!(line.contains("median"), "{line}");
        assert!(line.contains("3.000 ms"), "{line}"); // median of 5
        assert!(line.contains("10.000 ms"), "{line}"); // p95 = max here
    }

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(2.5), "2.500 s");
        assert_eq!(fmt_duration(0.0025), "2.500 ms");
        assert_eq!(fmt_duration(2.5e-6), "2.500 µs");
        assert_eq!(fmt_duration(2.5e-9), "2.5 ns");
    }

    #[test]
    fn reporting_routes_through_the_sink() {
        let sink = LogSink::capture();
        let mut c = Criterion::default().with_sink(sink.clone());
        {
            let mut g = c.benchmark_group("sinked");
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        }
        c.final_summary();
        let lines = sink.lines();
        // Human line, machine line, then the summary re-emit — no stdout.
        assert!(lines[0].starts_with("[bench] sinked/f"), "{lines:?}");
        assert!(lines[1].starts_with("[bench.kv] name=sinked/f median_s="), "{lines:?}");
        assert!(lines[1].contains("samples=2"), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("bench summary (1 measurements)")), "{lines:?}");
    }

    #[test]
    fn bench_pipeline_produces_samples() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(3);
            g.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
                b.iter_batched(|| vec![0u64; n as usize], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.lines.len(), 2);
    }
}
