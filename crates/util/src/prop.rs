//! A minimal property-test harness: seeded, shrink-free `forall`.
//!
//! Replaces `proptest` for this workspace. Each case draws its inputs
//! from a [`Gen`] seeded as a pure function of the case index, so a
//! failure report ("case 17, seed 0x...") is exactly reproducible by
//! rerunning the test — no shrinking, no persistence files. Generation is
//! closure-driven: instead of strategy combinators, a property takes
//! `&mut Gen` and builds its own inputs with the helpers below.
//!
//! ```
//! use revere_util::prop::forall;
//! use revere_util::RngExt;
//!
//! forall(64, |g| {
//!     let xs: Vec<i64> = g.vec(0..10, |g| g.random_range(-5i64..5));
//!     let mut sorted = xs.clone();
//!     sorted.sort();
//!     sorted.sort();
//!     assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
//! });
//! ```
//!
//! Set `REVERE_PROP_CASES` to scale every `forall` count (e.g. `=4x` in a
//! soak run, or an absolute number) without touching the tests.

use crate::obs::LogSink;
use crate::rng::{splitmix64, RngCore, SeedableRng, StdRng};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed for case derivation. Changing it reshuffles every property
/// test's inputs; keep it fixed so failures stay reproducible across runs.
const BASE_SEED: u64 = 0xC1D8_2003_5EED_0001;

/// Per-case random input source: an [`StdRng`] plus generation helpers.
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
}

impl RngCore for Gen {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

impl Gen {
    /// A generator for one explicit seed (the harness does this per case).
    pub fn from_seed(seed: u64) -> Gen {
        Gen { rng: StdRng::seed_from_u64(seed) }
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        use crate::rng::RngExt;
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.rng.random_range(0..xs.len())]
    }

    /// A vector with a length drawn from `len` and elements from `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        use crate::rng::RngExt;
        let n = if len.start >= len.end { len.start } else { self.rng.random_range(len) };
        (0..n).map(|_| f(self)).collect()
    }

    /// A string of `len` characters drawn uniformly from `alphabet`.
    pub fn string_from(&mut self, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        self.vec(len, |g| *g.pick(&chars)).into_iter().collect()
    }

    /// A lowercase ASCII identifier-ish string, `[a-z]{len}`.
    pub fn lowercase(&mut self, len: Range<usize>) -> String {
        self.string_from("abcdefghijklmnopqrstuvwxyz", len)
    }
}

/// How many cases to actually run for a nominal count, honoring the
/// `REVERE_PROP_CASES` override (`"256"` absolute or `"4x"` multiplier).
fn effective_cases(nominal: u32) -> u32 {
    match std::env::var("REVERE_PROP_CASES") {
        Ok(v) => {
            if let Some(mult) = v.strip_suffix('x') {
                mult.parse::<f64>()
                    .map(|m| ((nominal as f64 * m).ceil() as u32).max(1))
                    .unwrap_or(nominal)
            } else {
                v.parse().unwrap_or(nominal)
            }
        }
        Err(_) => nominal,
    }
}

/// Run `property` against `cases` independently seeded inputs.
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// after reporting the case index and seed needed to reproduce it with
/// [`Gen::from_seed`]. The report goes to stderr; use
/// [`forall_with_sink`] to capture or redirect it.
pub fn forall(cases: u32, property: impl FnMut(&mut Gen)) {
    forall_with_sink(cases, &LogSink::stderr(), property);
}

/// [`forall`] with the failure report routed through `sink` (stream
/// `prop`) instead of stderr — a machine-parseable `key=value` record
/// carrying the case index and reproduction seed.
pub fn forall_with_sink(cases: u32, sink: &LogSink, mut property: impl FnMut(&mut Gen)) {
    let cases = effective_cases(cases);
    for case in 0..cases {
        let mut sm = BASE_SEED ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut sm);
        let mut gen = Gen::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut gen))) {
            sink.emit_kv(
                "prop",
                &[
                    ("event", "property_failed".to_string()),
                    ("case", case.to_string()),
                    ("cases", cases.to_string()),
                    ("seed", format!("{seed:#018x}")),
                    ("reproduce", format!("Gen::from_seed({seed:#x})")),
                ],
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngExt;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        forall(37, |g| {
            ran += 1;
            let x = g.random_range(0u64..1000);
            assert!(x < 1000);
        });
        assert_eq!(ran, 37);
    }

    #[test]
    fn failing_property_panics_with_context() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall(16, |g| {
                let x = g.random_range(0u32..10);
                assert!(x < 5, "drew {x}");
            })
        }));
        assert!(result.is_err(), "a draw ≥ 5 must occur within 16 cases");
    }

    #[test]
    fn failure_report_routes_through_sink() {
        let sink = LogSink::capture();
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall_with_sink(4, &sink, |_| panic!("always"));
        }));
        assert!(result.is_err());
        let lines = sink.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("[prop] event=property_failed case=0 cases=4 seed=0x"), "{lines:?}");
        assert!(lines[0].contains("reproduce=Gen::from_seed(0x"), "{lines:?}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        forall(8, |g| first.push(g.next_u64()));
        let mut second = Vec::new();
        forall(8, |g| second.push(g.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn gen_helpers_respect_bounds() {
        forall(32, |g| {
            let v = g.vec(2..5, |g| g.random_range(0i32..3));
            assert!((2..5).contains(&v.len()));
            let s = g.lowercase(1..8);
            assert!((1..8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let choice = *g.pick(&[10, 20, 30]);
            assert!([10, 20, 30].contains(&choice));
        });
    }
}
