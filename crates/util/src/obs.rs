//! Observability substrate: deterministic tracing, metrics, exporters.
//!
//! The PDMS answers a query by chaining reformulation, view rewriting and
//! multi-peer fetch — a layered pipeline where "the answer is small, slow
//! or incomplete" is undiagnosable without per-stage accounting. This
//! module is the zero-dependency substrate the storage, query and pdms
//! layers thread their accounting through:
//!
//! * [`Tracer`] — a structured span tree keyed by a **logical tick
//!   clock**. Every span start/end consumes one tick, and simulated
//!   latency can be charged with [`Tracer::advance`], so span timestamps
//!   are a pure function of the instrumented code path, not of the
//!   machine. Wall-clock durations are captured on the side and *never*
//!   enter the deterministic exports, so traces can be golden-tested
//!   byte for byte.
//! * [`Metrics`] — a registry of named counters, gauges and log2-bucket
//!   [`Histogram`]s. Counter updates are commutative, so totals stay
//!   deterministic even when worker threads race.
//! * Chrome trace-event export ([`Tracer::chrome_trace`]) — the JSON
//!   array `chrome://tracing` / Perfetto load directly, rendered with an
//!   in-repo serializer (the workspace has no serde).
//! * [`LogSink`] — the shared writer the bench/property harnesses report
//!   through instead of bare `println!`/`eprintln!`, so harness output is
//!   machine-parseable and separable from test noise.
//!
//! The [`Obs`] handle bundles one tracer and one metrics registry behind
//! a cheap `Clone`; [`Obs::disabled`] is a no-alloc no-op, so hot paths
//! take `&Obs` unconditionally and instrumentation costs nothing when
//! off. The contract every instrumented layer upholds: **enabling
//! observability never changes answers** — only what is recorded about
//! producing them.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// One recorded span: a named interval on the logical tick clock, with
/// ordered key→value annotations and an optional parent.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Dense id, in span-*start* order (0-based).
    pub id: usize,
    /// Parent span id, `None` for roots.
    pub parent: Option<usize>,
    /// Span name, e.g. `pdms.fetch.relation`.
    pub name: String,
    /// Annotations in insertion order (later `set` of a key replaces the
    /// value in place, keeping the order stable).
    pub args: Vec<(String, String)>,
    /// Logical tick at span start.
    pub start_tick: u64,
    /// Logical tick at span end (`None` while open).
    pub end_tick: Option<u64>,
    /// Wall-clock nanoseconds between start and finish. Diagnostic only:
    /// excluded from the deterministic exports.
    pub wall_ns: Option<u128>,
}

impl SpanRecord {
    /// Duration in logical ticks (open spans extend to `now`).
    pub fn ticks(&self, now: u64) -> u64 {
        self.end_tick.unwrap_or(now).saturating_sub(self.start_tick)
    }

    /// Look up an annotation.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[derive(Debug, Default)]
struct TracerInner {
    ticks: u64,
    spans: Vec<SpanRecord>,
    starts: Vec<Instant>,
}

/// A deterministic structured tracer: a tree of [`SpanRecord`]s on a
/// logical tick clock. Cheap to clone (shared handle); interior mutability
/// so instrumented code can record through `&self` receivers.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// A fresh tracer at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, TracerInner> {
        // Plain data behind the lock; recover from poisoning like the
        // storage catalog does (DESIGN.md §5).
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Open a root span.
    pub fn span(&self, name: impl Into<String>) -> Span {
        self.open(name.into(), None)
    }

    fn open(&self, name: String, parent: Option<usize>) -> Span {
        let mut t = self.lock();
        let id = t.spans.len();
        let start_tick = t.ticks;
        t.ticks += 1;
        t.spans.push(SpanRecord {
            id,
            parent,
            name,
            args: Vec::new(),
            start_tick,
            end_tick: None,
            wall_ns: None,
        });
        t.starts.push(Instant::now());
        Span { tracer: self.clone(), id, closed: false }
    }

    /// Advance the logical clock by `n` ticks — how simulated latency
    /// (network backoff, fault-plan delays) is charged to the trace.
    pub fn advance(&self, n: u64) {
        self.lock().ticks += n;
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.lock().ticks
    }

    /// Snapshot every span recorded so far (in start order).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Number of spans started so far.
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export the span tree as a Chrome trace-event JSON array (the
    /// `chrome://tracing` / Perfetto "JSON Array Format"). Timestamps and
    /// durations are **logical ticks**, so for a fixed instrumented code
    /// path the output is byte-identical run to run; wall-clock is
    /// deliberately left out. Load with `ph:"X"` complete events; spans
    /// still open at export time run to the current tick.
    pub fn chrome_trace(&self) -> String {
        let t = self.lock();
        let now = t.ticks;
        let mut out = String::from("[");
        for (i, s) in t.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            json_string(&mut out, &s.name);
            out.push_str(",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":");
            out.push_str(&s.start_tick.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&s.ticks(now).to_string());
            out.push_str(",\"args\":{\"id\":");
            out.push_str(&s.id.to_string());
            if let Some(p) = s.parent {
                out.push_str(",\"parent\":");
                out.push_str(&p.to_string());
            }
            for (k, v) in &s.args {
                out.push(',');
                json_string(&mut out, k);
                out.push(':');
                json_string(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// Render the span tree as indented text — the human-facing view of
    /// the same deterministic data the JSON export carries.
    pub fn render_tree(&self) -> String {
        let t = self.lock();
        let now = t.ticks;
        let mut children: BTreeMap<Option<usize>, Vec<usize>> = BTreeMap::new();
        for s in &t.spans {
            children.entry(s.parent).or_default().push(s.id);
        }
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = children
            .get(&None)
            .map(|roots| roots.iter().rev().map(|&r| (r, 0)).collect())
            .unwrap_or_default();
        while let Some((id, depth)) = stack.pop() {
            let s = &t.spans[id];
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} [{}..{}]", s.name, s.start_tick, s.end_tick.unwrap_or(now)));
            for (k, v) in &s.args {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            if let Some(kids) = children.get(&Some(id)) {
                for &k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
        out
    }
}

/// An open span. Finishes (records its end tick) on [`Span::finish`] or
/// on drop, whichever comes first.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: usize,
    closed: bool,
}

impl Span {
    /// This span's id in the tracer.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Open a child span.
    pub fn child(&self, name: impl Into<String>) -> Span {
        self.tracer.open(name.into(), Some(self.id))
    }

    /// Set an annotation (replaces an existing key in place).
    pub fn set(&self, key: &str, value: impl fmt::Display) {
        let mut t = self.tracer.lock();
        let span = &mut t.spans[self.id];
        let value = value.to_string();
        match span.args.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => span.args.push((key.to_string(), value)),
        }
    }

    /// Close the span at the current tick.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut t = self.tracer.lock();
        let end = t.ticks;
        t.ticks += 1;
        let wall = t.starts[self.id].elapsed().as_nanos();
        let span = &mut t.spans[self.id];
        span.end_tick = Some(end);
        span.wall_ns = Some(wall);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Escape and append a JSON string literal.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A log2-bucket histogram over `u64` observations: bucket `i` holds
/// values whose bit length is `i` (0 → bucket 0, 1 → bucket 1, 2..3 →
/// bucket 2, 4..7 → bucket 3, ...). Exact count/sum/min/max ride along,
/// so means are exact and percentiles are bucket-upper-bound estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    /// Number of observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Smallest observation (u64::MAX when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_top(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i).saturating_sub(1)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the bucket
    /// holding the `ceil(q·count)`-th observation, clamped to the exact
    /// max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_top(i).min(self.max);
            }
        }
        self.max
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters, gauges and histograms. Cheap to clone
/// (shared handle); `&self` updates via interior mutability. Snapshots
/// render in sorted name order, so output is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<MetricsInner>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, MetricsInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Add `n` to the named counter (creating it at 0).
    pub fn inc(&self, name: &str, n: u64) {
        let mut m = self.lock();
        match m.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                m.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge.
    pub fn set_gauge(&self, name: &str, v: i64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Read a gauge (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    /// Record an observation into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        self.lock().histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Clone out the named histogram.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// A point-in-time copy of every metric, for rendering or assertions.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        MetricsSnapshot {
            counters: m.counters.clone(),
            gauges: m.gauges.clone(),
            histograms: m.histograms.clone(),
        }
    }
}

/// A frozen copy of a [`Metrics`] registry. `Display` renders one
/// machine-parseable line per metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k}={v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "gauge {k}={v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "histogram {k} count={} sum={} min={} max={} p50={} p95={}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile(0.5),
                h.quantile(0.95),
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Obs: the handle instrumented layers carry
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ObsCore {
    tracer: Tracer,
    metrics: Metrics,
}

/// The observability handle threaded through storage → query → pdms: one
/// [`Tracer`] plus one [`Metrics`] registry, or nothing at all.
/// [`Obs::disabled`] allocates nothing and makes every operation a no-op,
/// so un-instrumented callers pay only a branch.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsCore>>,
}

impl Obs {
    /// A live handle with a fresh tracer and metrics registry.
    pub fn enabled() -> Self {
        Obs { inner: Some(Arc::new(ObsCore { tracer: Tracer::new(), metrics: Metrics::new() })) }
    }

    /// The no-op handle (no allocation).
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The tracer, when enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.as_deref().map(|c| &c.tracer)
    }

    /// The metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_deref().map(|c| &c.metrics)
    }

    /// Counter add (no-op when disabled).
    pub fn inc(&self, name: &str, n: u64) {
        if let Some(c) = &self.inner {
            c.metrics.inc(name, n);
        }
    }

    /// Histogram observation (no-op when disabled).
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(c) = &self.inner {
            c.metrics.observe(name, v);
        }
    }

    /// Gauge set (no-op when disabled).
    pub fn set_gauge(&self, name: &str, v: i64) {
        if let Some(c) = &self.inner {
            c.metrics.set_gauge(name, v);
        }
    }

    /// Charge `n` logical ticks to the trace clock (no-op when disabled).
    pub fn advance(&self, n: u64) {
        if let Some(c) = &self.inner {
            c.tracer.advance(n);
        }
    }

    /// Open a root span (a no-op handle when disabled).
    pub fn span(&self, name: &str) -> SpanHandle {
        SpanHandle(self.inner.as_ref().map(|c| c.tracer.span(name)))
    }
}

/// A possibly-absent span: the disabled-observability twin of [`Span`].
/// Every method is a no-op when the underlying tracer is off, so
/// instrumented code reads the same either way.
#[derive(Debug, Default)]
pub struct SpanHandle(Option<Span>);

impl SpanHandle {
    /// The always-no-op handle.
    pub fn none() -> Self {
        SpanHandle(None)
    }

    /// True when this handle records anything.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Open a child span (no-op child when disabled).
    pub fn child(&self, name: &str) -> SpanHandle {
        SpanHandle(self.0.as_ref().map(|s| s.child(name)))
    }

    /// Set an annotation.
    pub fn set(&self, key: &str, value: impl fmt::Display) {
        if let Some(s) = &self.0 {
            s.set(key, value);
        }
    }

    /// Close the span at the current tick (also happens on drop).
    pub fn finish(self) {
        if let Some(s) = self.0 {
            s.finish();
        }
    }
}

// ---------------------------------------------------------------------------
// LogSink
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum SinkTarget {
    Stdout,
    Stderr,
    Capture(Vec<String>),
}

/// A shared line-oriented writer for harness diagnostics. The bench and
/// property harnesses emit through a sink instead of bare
/// `println!`/`eprintln!`: every line is prefixed `[stream]`, so
/// consumers can grep one stream out of interleaved output, and tests can
/// swap in a capturing sink to assert on (or silence) diagnostics.
#[derive(Debug, Clone)]
pub struct LogSink {
    target: Arc<Mutex<SinkTarget>>,
}

impl LogSink {
    /// A sink that prints to stdout.
    pub fn stdout() -> Self {
        LogSink { target: Arc::new(Mutex::new(SinkTarget::Stdout)) }
    }

    /// A sink that prints to stderr.
    pub fn stderr() -> Self {
        LogSink { target: Arc::new(Mutex::new(SinkTarget::Stderr)) }
    }

    /// A sink that buffers lines for later inspection.
    pub fn capture() -> Self {
        LogSink { target: Arc::new(Mutex::new(SinkTarget::Capture(Vec::new()))) }
    }

    /// Emit one line on `stream` (rendered as `[stream] line`).
    pub fn emit(&self, stream: &str, line: &str) {
        let rendered = format!("[{stream}] {line}");
        let mut t = self.target.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match &mut *t {
            SinkTarget::Stdout => println!("{rendered}"),
            SinkTarget::Stderr => eprintln!("{rendered}"),
            SinkTarget::Capture(lines) => lines.push(rendered),
        }
    }

    /// Emit one machine-parseable `key=value` record on `stream`. Values
    /// containing whitespace are double-quoted (with `"` and `\` escaped),
    /// so a consumer can split on spaces outside quotes.
    pub fn emit_kv(&self, stream: &str, fields: &[(&str, String)]) {
        let mut line = String::new();
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(k);
            line.push('=');
            if v.is_empty() || v.contains(char::is_whitespace) || v.contains('"') {
                line.push('"');
                for c in v.chars() {
                    if c == '"' || c == '\\' {
                        line.push('\\');
                    }
                    line.push(c);
                }
                line.push('"');
            } else {
                line.push_str(v);
            }
        }
        self.emit(stream, &line);
    }

    /// Lines captured so far (empty for stdout/stderr sinks).
    pub fn lines(&self) -> Vec<String> {
        let t = self.target.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*t {
            SinkTarget::Capture(lines) => lines.clone(),
            _ => Vec::new(),
        }
    }
}

impl Default for LogSink {
    fn default() -> Self {
        Self::stdout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_records_parents_args_and_ticks() {
        let t = Tracer::new();
        let root = t.span("query");
        root.set("peer", "MIT");
        {
            let child = root.child("fetch");
            child.set("relation", "Berkeley.course");
            child.set("relation", "Berkeley.course2"); // replace in place
            t.advance(5);
            child.finish();
        }
        root.finish();
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].arg("relation"), Some("Berkeley.course2"));
        assert_eq!(spans[1].args.len(), 1);
        // Each start/end consumes a tick: start(root)@0, start(child)@1
        // (clock now 2), +5 latency → 7, end(child)@7, end(root)@8.
        assert_eq!(spans[1].start_tick, 1);
        assert_eq!(spans[1].end_tick, Some(7));
        assert_eq!(spans[0].end_tick, Some(8));
        assert!(spans[0].wall_ns.is_some());
    }

    #[test]
    fn spans_close_on_drop() {
        let t = Tracer::new();
        {
            let _s = t.span("scoped");
        }
        assert_eq!(t.spans()[0].end_tick, Some(1));
    }

    #[test]
    fn chrome_trace_is_deterministic_and_excludes_wall_clock() {
        let run = || {
            let t = Tracer::new();
            let root = t.span("q");
            root.set("n", 3);
            let c = root.child("step \"one\"\n");
            c.finish();
            root.finish();
            t.chrome_trace()
        };
        let a = run();
        // Two fresh runs of the same path are byte-identical even though
        // their wall clocks differ.
        assert_eq!(a, run());
        assert!(a.contains("\"ph\":\"X\""), "{a}");
        assert!(a.contains("\\\"one\\\""), "escaped quote: {a}");
        assert!(a.contains("\\n"), "escaped newline: {a}");
        assert!(!a.contains("wall"), "wall clock leaked into export: {a}");
        assert!(a.starts_with('[') && a.ends_with("]\n"), "{a}");
    }

    #[test]
    fn render_tree_indents_children() {
        let t = Tracer::new();
        let root = t.span("root");
        root.child("kid").finish();
        root.finish();
        t.span("second_root").finish();
        let tree = t.render_tree();
        assert!(tree.contains("root [0..3]"), "{tree}");
        assert!(tree.contains("\n  kid [1..2]"), "{tree}");
        assert!(tree.contains("\nsecond_root"), "{tree}");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1110);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.quantile(0.0), 0);
        // p50 = 4th of 7 observations → value 3 lands in bucket 2 (top 3).
        assert_eq!(h.quantile(0.5), 3);
        // The top quantile is clamped to the exact max, not the bucket top.
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 1110.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn metrics_registry_counts_and_snapshots_deterministically() {
        let m = Metrics::new();
        m.inc("b.count", 2);
        m.inc("a.count", 1);
        m.inc("b.count", 3);
        m.set_gauge("depth", -4);
        m.observe("lat", 7);
        m.observe("lat", 100);
        assert_eq!(m.counter("b.count"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("depth"), Some(-4));
        assert_eq!(m.histogram("lat").unwrap().count, 2);
        let text = m.snapshot().to_string();
        let a_pos = text.find("counter a.count=1").expect("a.count line");
        let b_pos = text.find("counter b.count=5").expect("b.count line");
        assert!(a_pos < b_pos, "sorted order: {text}");
        assert!(text.contains("gauge depth=-4"), "{text}");
        assert!(text.contains("histogram lat count=2"), "{text}");
    }

    #[test]
    fn disabled_obs_is_free_and_inert() {
        let o = Obs::disabled();
        assert!(!o.is_enabled());
        o.inc("x", 1);
        o.observe("y", 2);
        o.advance(10);
        let s = o.span("nothing");
        assert!(!s.is_recording());
        s.child("nested").set("k", "v");
        s.finish();
        assert!(o.tracer().is_none());
        assert!(o.metrics().is_none());
    }

    #[test]
    fn enabled_obs_records_through_the_handle() {
        let o = Obs::enabled();
        let s = o.span("root");
        s.child("leaf").finish();
        s.finish();
        o.inc("c", 2);
        assert_eq!(o.tracer().unwrap().len(), 2);
        assert_eq!(o.metrics().unwrap().counter("c"), 2);
        // Clones share state.
        let o2 = o.clone();
        o2.inc("c", 1);
        assert_eq!(o.metrics().unwrap().counter("c"), 3);
    }

    #[test]
    fn log_sink_captures_and_prefixes() {
        let sink = LogSink::capture();
        sink.emit("bench", "hello");
        sink.emit_kv(
            "bench",
            &[("name", "g/f".to_string()), ("title", "two words".to_string()), ("n", "3".to_string())],
        );
        let lines = sink.lines();
        assert_eq!(lines[0], "[bench] hello");
        assert_eq!(lines[1], "[bench] name=g/f title=\"two words\" n=3");
        // stdout sinks don't capture.
        assert!(LogSink::stdout().lines().is_empty());
    }
}
