//! The shared university-domain ontology.
//!
//! Every synthetic university derives its schema from these concepts by
//! renaming and restructuring, so matching difficulty is controlled and
//! every generated element carries a known ground-truth concept — the thing
//! the paper's real-world corpus cannot provide. The vocabulary variants
//! mirror the paper's §4.2.1 axes: synonyms, abbreviations ("stemming"-like
//! surface variation) and inter-language dictionaries (Example 3.1's
//! University of Rome "has a schema using terms in Italian").

use revere_util::rngs::StdRng;
use revere_util::RngExt;
use revere_storage::{AttrType, Value};

/// How an attribute's values look, for the data generators and the
/// value-based matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Person names ("Ada Lovelace").
    PersonName,
    /// Course titles ("Introduction to Databases").
    CourseTitle,
    /// Course codes ("CSE 444").
    CourseCode,
    /// Department names ("Computer Science").
    DeptName,
    /// Meeting times ("MWF 10:30-11:20").
    MeetingTime,
    /// Room strings ("Sieg 134").
    Room,
    /// Phone numbers ("206-555-0199").
    Phone,
    /// Email addresses.
    Email,
    /// Enrollment counts (integers 5..400).
    Enrollment,
    /// Credit counts (integers 1..6).
    Credits,
    /// Book titles.
    BookTitle,
    /// URLs.
    Url,
    /// Term names ("Fall 2002").
    Term,
}

impl ValueKind {
    /// Declared storage type for this kind of value.
    pub fn attr_type(self) -> AttrType {
        match self {
            ValueKind::Enrollment | ValueKind::Credits => AttrType::Int,
            _ => AttrType::Text,
        }
    }
}

/// One attribute of a concept: a canonical name, its surface variants, and
/// the kind of values it holds.
#[derive(Debug, Clone)]
pub struct ConceptAttr {
    /// Canonical (ground-truth) name, e.g. `title`.
    pub canonical: &'static str,
    /// Synonyms and abbreviations usable as surface names.
    pub variants: &'static [&'static str],
    /// Italian surface names (the inter-language axis).
    pub italian: &'static [&'static str],
    /// What the values look like.
    pub kind: ValueKind,
    /// Probability-weight of appearing in a derived schema (1.0 = always).
    pub keep_weight: f64,
}

/// A domain concept (maps to a relation in derived schemas).
#[derive(Debug, Clone)]
pub struct Concept {
    /// Canonical concept name, e.g. `course`.
    pub canonical: &'static str,
    /// Synonym relation names.
    pub variants: &'static [&'static str],
    /// Italian relation names.
    pub italian: &'static [&'static str],
    /// Attributes.
    pub attrs: Vec<ConceptAttr>,
}

/// The full domain ontology.
#[derive(Debug, Clone)]
pub struct Ontology {
    /// The concepts.
    pub concepts: Vec<Concept>,
}

macro_rules! attr {
    ($canon:literal, [$($v:literal),*], [$($i:literal),*], $kind:ident, $w:literal) => {
        ConceptAttr {
            canonical: $canon,
            variants: &[$($v),*],
            italian: &[$($i),*],
            kind: ValueKind::$kind,
            keep_weight: $w,
        }
    };
}

impl Ontology {
    /// The university domain of the paper's running example: courses,
    /// instructors, TAs, departments, textbooks and seminars.
    pub fn university() -> Ontology {
        Ontology {
            concepts: vec![
                Concept {
                    canonical: "course",
                    variants: &["class", "subject", "offering", "module"],
                    italian: &["corso", "insegnamento"],
                    attrs: vec![
                        attr!("code", ["course_code", "number", "course_no", "id"], ["codice"], CourseCode, 1.0),
                        attr!("title", ["name", "course_title", "heading"], ["titolo", "nome"], CourseTitle, 1.0),
                        attr!("instructor", ["teacher", "professor", "lecturer", "taught_by"], ["docente", "professore"], PersonName, 0.95),
                        attr!("enrollment", ["size", "num_students", "capacity", "seats"], ["iscritti"], Enrollment, 0.8),
                        attr!("credits", ["units", "credit_hours"], ["crediti"], Credits, 0.6),
                        attr!("time", ["schedule", "meeting_time", "when", "hours"], ["orario"], MeetingTime, 0.8),
                        attr!("room", ["location", "place", "building"], ["aula"], Room, 0.7),
                        attr!("term", ["quarter", "semester", "session"], ["periodo"], Term, 0.6),
                        attr!("url", ["homepage", "website", "course_page"], ["sito"], Url, 0.5),
                    ],
                },
                Concept {
                    canonical: "instructor",
                    variants: &["faculty", "professor", "teacher", "staff"],
                    italian: &["docente"],
                    attrs: vec![
                        attr!("name", ["full_name", "instructor_name"], ["nome"], PersonName, 1.0),
                        attr!("email", ["mail", "email_address", "contact"], ["posta"], Email, 0.9),
                        attr!("phone", ["telephone", "phone_number", "office_phone"], ["telefono"], Phone, 0.8),
                        attr!("office", ["room", "office_location"], ["ufficio"], Room, 0.7),
                        attr!("department", ["dept", "unit", "division"], ["dipartimento"], DeptName, 0.8),
                    ],
                },
                Concept {
                    canonical: "ta",
                    variants: &["teaching_assistant", "assistant", "tutor", "grader"],
                    italian: &["assistente"],
                    attrs: vec![
                        attr!("name", ["ta_name", "assistant_name"], ["nome"], PersonName, 1.0),
                        attr!("email", ["mail", "contact_email"], ["posta"], Email, 0.8),
                        attr!("course", ["class", "assists", "for_course"], ["corso"], CourseCode, 0.9),
                        attr!("hours", ["office_hours", "availability"], ["orario"], MeetingTime, 0.6),
                    ],
                },
                Concept {
                    canonical: "department",
                    variants: &["dept", "school", "division", "faculty_unit"],
                    italian: &["dipartimento", "facolta"],
                    attrs: vec![
                        attr!("name", ["dept_name", "title"], ["nome"], DeptName, 1.0),
                        attr!("chair", ["head", "director", "dean"], ["direttore"], PersonName, 0.7),
                        attr!("phone", ["telephone", "main_phone"], ["telefono"], Phone, 0.6),
                        attr!("url", ["homepage", "website"], ["sito"], Url, 0.6),
                    ],
                },
                Concept {
                    canonical: "textbook",
                    variants: &["book", "text", "reading", "required_text"],
                    italian: &["libro", "testo"],
                    attrs: vec![
                        attr!("title", ["book_title", "name"], ["titolo"], BookTitle, 1.0),
                        attr!("author", ["written_by", "authors"], ["autore"], PersonName, 0.9),
                        attr!("course", ["for_course", "class", "used_in"], ["corso"], CourseCode, 0.9),
                    ],
                },
                Concept {
                    canonical: "seminar",
                    variants: &["talk", "colloquium", "lecture_event"],
                    italian: &["seminario"],
                    attrs: vec![
                        attr!("title", ["topic", "name"], ["titolo"], CourseTitle, 1.0),
                        attr!("speaker", ["presenter", "given_by"], ["relatore"], PersonName, 0.9),
                        attr!("time", ["when", "schedule"], ["orario"], MeetingTime, 0.8),
                        attr!("room", ["location", "venue"], ["aula"], Room, 0.7),
                    ],
                },
            ],
        }
    }

    /// Look up a concept by canonical name.
    pub fn concept(&self, canonical: &str) -> Option<&Concept> {
        self.concepts.iter().find(|c| c.canonical == canonical)
    }

    /// Total attribute count across concepts.
    pub fn attr_count(&self) -> usize {
        self.concepts.iter().map(|c| c.attrs.len()).sum()
    }
}

const FIRST_NAMES: &[&str] = &[
    "Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald", "Leslie", "John", "Tim", "Radia",
    "Frances", "Ken", "Dennis", "Niklaus", "Tony", "Edgar", "Jim", "Michael", "David", "Sophie",
];
const LAST_NAMES: &[&str] = &[
    "Lovelace", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "Lamport", "Backus",
    "BernersLee", "Perlman", "Allen", "Thompson", "Ritchie", "Wirth", "Hoare", "Codd", "Gray",
    "Stonebraker", "DeWitt", "Wilson",
];
const TITLE_HEADS: &[&str] = &[
    "Introduction to", "Advanced", "Topics in", "Foundations of", "Seminar on", "Principles of",
    "Applied", "Graduate",
];
const TITLE_SUBJECTS: &[&str] = &[
    "Databases", "Operating Systems", "Ancient History", "Machine Learning", "Compilers",
    "Distributed Systems", "Information Retrieval", "Roman Law", "Greek Philosophy", "Networks",
    "Algorithms", "Linguistics", "Art History", "Microeconomics", "Astrophysics",
];
const DEPTS: &[&str] = &[
    "Computer Science", "History", "Classics", "Mathematics", "Physics", "Economics",
    "Linguistics", "Philosophy", "Statistics", "Biology",
];
const DEPT_CODES: &[&str] =
    &["CSE", "HIST", "CLAS", "MATH", "PHYS", "ECON", "LING", "PHIL", "STAT", "BIOL"];
const BUILDINGS: &[&str] = &["Sieg", "Guggenheim", "Savery", "Kane", "Loew", "Denny", "Gowen"];
const DAYS: &[&str] = &["MWF", "TTh", "MW", "F", "Daily"];
const TERMS: &[&str] = &["Fall 2002", "Winter 2003", "Spring 2003", "Summer 2003"];

/// Generate one value of the given kind.
pub fn generate_value(kind: ValueKind, rng: &mut StdRng) -> Value {
    let pick = |xs: &[&str], rng: &mut StdRng| xs[rng.random_range(0..xs.len())].to_string();
    match kind {
        ValueKind::PersonName => Value::Str(format!(
            "{} {}",
            pick(FIRST_NAMES, rng),
            pick(LAST_NAMES, rng)
        )),
        ValueKind::CourseTitle => Value::Str(format!(
            "{} {}",
            pick(TITLE_HEADS, rng),
            pick(TITLE_SUBJECTS, rng)
        )),
        ValueKind::CourseCode => Value::Str(format!(
            "{} {}",
            pick(DEPT_CODES, rng),
            rng.random_range(100..600)
        )),
        ValueKind::DeptName => Value::Str(pick(DEPTS, rng)),
        ValueKind::MeetingTime => {
            let h = rng.random_range(8..17);
            Value::Str(format!("{} {}:30-{}:20", pick(DAYS, rng), h, h + 1))
        }
        ValueKind::Room => Value::Str(format!(
            "{} {}",
            pick(BUILDINGS, rng),
            rng.random_range(100..500)
        )),
        ValueKind::Phone => Value::Str(format!(
            "206-555-{:04}",
            rng.random_range(0..10000)
        )),
        ValueKind::Email => Value::Str(format!(
            "{}{}@univ.edu",
            pick(FIRST_NAMES, rng).to_lowercase(),
            rng.random_range(1..100)
        )),
        ValueKind::Enrollment => Value::Int(rng.random_range(5..400)),
        ValueKind::Credits => Value::Int(rng.random_range(1..6)),
        ValueKind::BookTitle => Value::Str(format!(
            "The {} Book, {}th ed.",
            pick(TITLE_SUBJECTS, rng),
            rng.random_range(1..9)
        )),
        ValueKind::Url => Value::Str(format!(
            "http://univ.edu/{}/{}",
            pick(DEPT_CODES, rng).to_lowercase(),
            rng.random_range(100..600)
        )),
        ValueKind::Term => Value::Str(pick(TERMS, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_util::SeedableRng;

    #[test]
    fn ontology_has_expected_shape() {
        let o = Ontology::university();
        assert_eq!(o.concepts.len(), 6);
        assert!(o.concept("course").is_some());
        assert!(o.concept("nonexistent").is_none());
        assert!(o.attr_count() > 20);
    }

    #[test]
    fn every_attr_has_variants_and_italian() {
        for c in &Ontology::university().concepts {
            assert!(!c.variants.is_empty(), "{}", c.canonical);
            assert!(!c.italian.is_empty(), "{}", c.canonical);
            for a in &c.attrs {
                assert!(!a.variants.is_empty(), "{}.{}", c.canonical, a.canonical);
                assert!(!a.italian.is_empty(), "{}.{}", c.canonical, a.canonical);
                assert!(a.keep_weight > 0.0 && a.keep_weight <= 1.0);
            }
        }
    }

    #[test]
    fn values_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for kind in [
            ValueKind::PersonName,
            ValueKind::CourseCode,
            ValueKind::Enrollment,
            ValueKind::Email,
        ] {
            assert_eq!(generate_value(kind, &mut a), generate_value(kind, &mut b));
        }
    }

    #[test]
    fn int_kinds_generate_ints() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(generate_value(ValueKind::Enrollment, &mut rng), Value::Int(_)));
        assert!(matches!(generate_value(ValueKind::Credits, &mut rng), Value::Int(_)));
        assert_eq!(ValueKind::Enrollment.attr_type(), AttrType::Int);
        assert_eq!(ValueKind::Phone.attr_type(), AttrType::Text);
    }

    #[test]
    fn value_kinds_are_visually_distinct() {
        // The value matcher depends on different kinds producing
        // distinguishable distributions; spot-check formats.
        let mut rng = StdRng::seed_from_u64(3);
        let phone = generate_value(ValueKind::Phone, &mut rng).to_string();
        assert!(phone.starts_with("206-555-"));
        let email = generate_value(ValueKind::Email, &mut rng).to_string();
        assert!(email.contains('@'));
        let time = generate_value(ValueKind::MeetingTime, &mut rng).to_string();
        assert!(time.contains(':'));
    }
}
