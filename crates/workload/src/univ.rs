//! Per-university schema derivation and data generation.
//!
//! "Naturally, each university used a different, independently evolved
//! schema to mark up its web pages" (Example 3.1). The generator derives a
//! schema per university from the shared [`Ontology`] by applying exactly
//! the divergence axes the paper names: synonym renaming, abbreviation,
//! inter-language renaming (Italian), attribute dropping, and relation
//! renaming — while retaining the ground-truth correspondence of every
//! generated element to its ontology concept, which is what lets the
//! matching experiments measure accuracy.

use crate::ontology::{generate_value, Concept, Ontology, ValueKind};
use revere_util::rngs::StdRng;
use revere_util::{RngExt, SeedableRng};
use revere_storage::{Attribute, Catalog, DbSchema, RelSchema, Relation, Value};
use std::collections::BTreeMap;

/// Which language a university's vocabulary is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// English surface names (canonical + synonyms).
    English,
    /// Italian surface names ("the University of Rome, that has a schema
    /// using terms in Italian").
    Italian,
}

/// Ground truth: generated element name → ontology element name.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Relation name → concept canonical name.
    pub relations: BTreeMap<String, String>,
    /// `(relation, attribute)` → `(concept, canonical attribute)`.
    pub attributes: BTreeMap<(String, String), (String, String)>,
}

impl GroundTruth {
    /// The canonical concept element behind a generated `(rel, attr)`.
    pub fn concept_of(&self, rel: &str, attr: &str) -> Option<&(String, String)> {
        self.attributes.get(&(rel.to_string(), attr.to_string()))
    }

    /// Derive the correct element-level correspondences between two
    /// universities: pairs whose ground-truth concepts coincide.
    pub fn correspondences(&self, other: &GroundTruth) -> Vec<((String, String), (String, String))> {
        let mut out = Vec::new();
        for (a_key, a_val) in &self.attributes {
            for (b_key, b_val) in &other.attributes {
                if a_val == b_val {
                    out.push((a_key.clone(), b_key.clone()));
                }
            }
        }
        out
    }
}

/// A generated university: schema, data and ground truth.
#[derive(Debug, Clone)]
pub struct University {
    /// University name (e.g. `U03` or `Roma`).
    pub name: String,
    /// Its derived schema.
    pub schema: DbSchema,
    /// Its data, one relation per schema relation.
    pub data: Catalog,
    /// Ground-truth correspondences to the ontology.
    pub truth: GroundTruth,
    /// Per-attribute value kinds (for page generation and matcher oracles).
    pub value_kinds: BTreeMap<(String, String), ValueKind>,
}

/// Configuration for deriving universities.
#[derive(Debug, Clone)]
pub struct UniversityGenerator {
    /// Base RNG seed; university `i` uses `seed + i`.
    pub seed: u64,
    /// Probability that a surface name is replaced by a synonym variant
    /// (0.0 = all canonical names, 1.0 = always renamed). This is the
    /// matching-difficulty knob.
    pub rename_prob: f64,
    /// Probability an optional attribute is dropped (scaled by the
    /// ontology's per-attribute keep weight).
    pub drop_prob: f64,
    /// Rows to generate per relation.
    pub rows_per_relation: usize,
    /// Fraction of universities using the Italian vocabulary.
    pub italian_fraction: f64,
}

impl Default for UniversityGenerator {
    fn default() -> Self {
        UniversityGenerator {
            seed: 42,
            rename_prob: 0.5,
            drop_prob: 0.3,
            rows_per_relation: 30,
            italian_fraction: 0.2,
        }
    }
}

impl UniversityGenerator {
    /// Generate `n` universities.
    pub fn generate(&self, n: usize) -> Vec<University> {
        (0..n).map(|i| self.generate_one(i)).collect()
    }

    /// Generate the `i`-th university.
    pub fn generate_one(&self, i: usize) -> University {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(i as u64));
        let language = if rng.random_bool(self.italian_fraction.clamp(0.0, 1.0)) {
            Language::Italian
        } else {
            Language::English
        };
        let name = match language {
            Language::English => format!("U{i:02}"),
            Language::Italian => format!("It{i:02}"),
        };
        self.derive(&name, language, &mut rng)
    }

    /// Derive one university with an explicit language and RNG.
    pub fn derive(&self, name: &str, language: Language, rng: &mut StdRng) -> University {
        let ontology = Ontology::university();
        let mut schema = DbSchema::new(name);
        let mut truth = GroundTruth::default();
        let mut value_kinds = BTreeMap::new();
        let mut data = Catalog::new();

        // Shared pools so cross-relation values line up (TA.course refers
        // to real course codes, etc.).
        let course_codes: Vec<Value> = (0..self.rows_per_relation)
            .map(|_| generate_value(ValueKind::CourseCode, rng))
            .collect();

        for concept in &ontology.concepts {
            let rel_name = self.pick_name(
                concept.canonical,
                concept.variants,
                concept.italian,
                language,
                rng,
            );
            let mut attrs = Vec::new();
            let mut kept: Vec<&crate::ontology::ConceptAttr> = Vec::new();
            for a in &concept.attrs {
                let drop_chance = self.drop_prob * (1.0 - a.keep_weight) * 2.0;
                if rng.random_bool(drop_chance.clamp(0.0, 0.95)) {
                    continue;
                }
                let attr_name =
                    self.pick_name(a.canonical, a.variants, a.italian, language, rng);
                // Avoid duplicate attribute names within one relation.
                if attrs.iter().any(|x: &Attribute| x.name == attr_name) {
                    continue;
                }
                truth.attributes.insert(
                    (rel_name.clone(), attr_name.clone()),
                    (concept.canonical.to_string(), a.canonical.to_string()),
                );
                value_kinds.insert((rel_name.clone(), attr_name.clone()), a.kind);
                attrs.push(Attribute::new(attr_name, a.kind.attr_type()));
                kept.push(a);
            }
            if attrs.is_empty() {
                continue;
            }
            truth
                .relations
                .insert(rel_name.clone(), concept.canonical.to_string());
            let rel_schema = RelSchema::new(rel_name.clone(), attrs);
            schema.relations.push(rel_schema.clone());

            // Generate data.
            let mut rel = Relation::new(rel_schema);
            for row_i in 0..self.rows_per_relation {
                let row: Vec<Value> = kept
                    .iter()
                    .map(|a| match a.kind {
                        // Keep referential consistency for course codes.
                        ValueKind::CourseCode => course_codes[row_i % course_codes.len()].clone(),
                        k => generate_value(k, rng),
                    })
                    .collect();
                rel.insert(row);
            }
            data.register(rel);
        }
        University {
            name: name.to_string(),
            schema,
            data,
            truth,
            value_kinds,
        }
    }

    fn pick_name(
        &self,
        canonical: &str,
        variants: &[&str],
        italian: &[&str],
        language: Language,
        rng: &mut StdRng,
    ) -> String {
        match language {
            Language::Italian => italian[rng.random_range(0..italian.len())].to_string(),
            Language::English => {
                if rng.random_bool(self.rename_prob.clamp(0.0, 1.0)) && !variants.is_empty() {
                    variants[rng.random_range(0..variants.len())].to_string()
                } else {
                    canonical.to_string()
                }
            }
        }
    }
}

/// Convenience: derive the concept for a relation from ground truth.
pub fn concept_for<'a>(ontology: &'a Ontology, truth: &GroundTruth, rel: &str) -> Option<&'a Concept> {
    truth
        .relations
        .get(rel)
        .and_then(|c| ontology.concept(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = UniversityGenerator::default();
        let a = g.generate_one(3);
        let b = g.generate_one(3);
        assert_eq!(a.schema, b.schema);
        assert_eq!(a.data.total_rows(), b.data.total_rows());
    }

    #[test]
    fn different_universities_diverge() {
        let g = UniversityGenerator { rename_prob: 0.8, ..Default::default() };
        let a = g.generate_one(1);
        let b = g.generate_one(2);
        assert_ne!(a.schema, b.schema);
    }

    #[test]
    fn ground_truth_covers_every_attribute() {
        let g = UniversityGenerator::default();
        let u = g.generate_one(0);
        for r in &u.schema.relations {
            assert!(u.truth.relations.contains_key(&r.name));
            for a in &r.attrs {
                assert!(
                    u.truth.concept_of(&r.name, &a.name).is_some(),
                    "{}.{} lacks ground truth",
                    r.name,
                    a.name
                );
            }
        }
    }

    #[test]
    fn data_conforms_to_schema() {
        let g = UniversityGenerator { rows_per_relation: 10, ..Default::default() };
        let u = g.generate_one(5);
        for r in &u.schema.relations {
            let rel = u.data.get(&r.name).expect("relation has data");
            assert_eq!(rel.len(), 10);
            assert_eq!(rel.schema.arity(), r.arity());
        }
    }

    #[test]
    fn correspondences_between_two_universities() {
        let g = UniversityGenerator::default();
        let a = g.generate_one(0);
        let b = g.generate_one(1);
        let corr = a.truth.correspondences(&b.truth);
        // Both always keep course.code and course.title at minimum.
        assert!(corr.len() >= 2, "only {} correspondences", corr.len());
        // Every correspondence's two sides share a concept.
        for ((ar, aa), (br, ba)) in &corr {
            assert_eq!(
                a.truth.concept_of(ar, aa),
                b.truth.concept_of(br, ba)
            );
        }
    }

    #[test]
    fn italian_universities_use_italian_names() {
        let g = UniversityGenerator { italian_fraction: 1.0, ..Default::default() };
        let u = g.generate_one(0);
        assert!(u.name.starts_with("It"));
        // Relation names come from the Italian dictionaries.
        let ontology = Ontology::university();
        for r in &u.schema.relations {
            let concept = concept_for(&ontology, &u.truth, &r.name).unwrap();
            assert!(
                concept.italian.contains(&r.name.as_str()),
                "{} not an Italian name for {}",
                r.name,
                concept.canonical
            );
        }
    }

    #[test]
    fn zero_rename_keeps_canonical_names() {
        let g = UniversityGenerator {
            rename_prob: 0.0,
            drop_prob: 0.0,
            italian_fraction: 0.0,
            ..Default::default()
        };
        let u = g.generate_one(0);
        assert!(u.schema.relation("course").is_some());
        let course = u.schema.relation("course").unwrap();
        assert!(course.position("title").is_some());
        assert!(course.position("instructor").is_some());
    }
}
