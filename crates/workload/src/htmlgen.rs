//! Generator of annotated HTML pages for the MANGROVE experiments.
//!
//! The paper's MANGROVE data — UW course and personal home pages, annotated
//! by their authors — is not available, so this generator produces the
//! closest synthetic equivalent (DESIGN.md §3): pages in several layouts
//! whose fact-bearing fragments carry MANGROVE annotations (`mg:` HTML
//! attributes, the "syntactic sugar for basic RDF" of §2.1), plus
//! unannotated noise, plus *controlled dirty data* — §2.3's "inconsistent
//! ... multiple values, where there should be only one ... even wrong data"
//! — so the cleaning-policy experiment (E5) has a known ground truth.

use crate::ontology::{generate_value, ValueKind};
use revere_util::rngs::StdRng;
use revere_util::{RngExt, SeedableRng};
use revere_storage::Value;

/// How much dirt to inject.
#[derive(Debug, Clone, Copy)]
pub struct DirtSpec {
    /// Probability that a secondary page re-states a fact with a *wrong*
    /// value (a stale directory entry, a malicious edit).
    pub conflict_prob: f64,
    /// Number of secondary pages (directories, group pages) that re-state
    /// facts about people.
    pub secondary_pages: usize,
}

impl Default for DirtSpec {
    fn default() -> Self {
        DirtSpec { conflict_prob: 0.15, secondary_pages: 2 }
    }
}

/// One generated page plus its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedPage {
    /// Source URL.
    pub url: String,
    /// Annotated HTML text.
    pub html: String,
    /// The *correct* facts this page is authoritative for
    /// (subject, predicate, value).
    pub truth: Vec<(String, String, Value)>,
    /// Facts this page states that are wrong (injected dirt).
    pub lies: Vec<(String, String, Value)>,
}

/// Page generator configuration.
#[derive(Debug, Clone)]
pub struct PageGenerator {
    /// RNG seed.
    pub seed: u64,
    /// How many course pages.
    pub courses: usize,
    /// How many personal home pages.
    pub people: usize,
    /// Dirt injection.
    pub dirt: DirtSpec,
}

impl Default for PageGenerator {
    fn default() -> Self {
        PageGenerator { seed: 7, courses: 10, people: 10, dirt: DirtSpec::default() }
    }
}

struct Person {
    id: String,
    name: String,
    phone: Value,
    email: Value,
    office: Value,
}

impl PageGenerator {
    /// Generate the whole site: personal pages, course pages, and
    /// secondary (directory/group) pages that may contain stale facts.
    pub fn generate(&self) -> Vec<GeneratedPage> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pages = Vec::new();

        // People first (their facts are re-stated by secondary pages).
        let people: Vec<Person> = (0..self.people)
            .map(|i| {
                let name = generate_value(ValueKind::PersonName, &mut rng).to_string();
                Person {
                    id: format!("person/p{i:03}"),
                    name,
                    phone: generate_value(ValueKind::Phone, &mut rng),
                    email: generate_value(ValueKind::Email, &mut rng),
                    office: generate_value(ValueKind::Room, &mut rng),
                }
            })
            .collect();

        for (i, p) in people.iter().enumerate() {
            pages.push(self.person_page(i, p, &mut rng));
        }
        for i in 0..self.courses {
            let instructor = &people[i % people.len()];
            pages.push(self.course_page(i, instructor, &mut rng));
        }
        for s in 0..self.dirt.secondary_pages {
            pages.push(self.directory_page(s, &people, &mut rng));
        }
        pages
    }

    fn person_page(&self, i: usize, p: &Person, rng: &mut StdRng) -> GeneratedPage {
        let url = format!("http://univ.edu/~p{i:03}/index.html");
        let truth = vec![
            (p.id.clone(), "person.name".to_string(), Value::str(&p.name)),
            (p.id.clone(), "person.phone".to_string(), p.phone.clone()),
            (p.id.clone(), "person.email".to_string(), p.email.clone()),
            (p.id.clone(), "person.office".to_string(), p.office.clone()),
        ];
        // Two page layouts, chosen per person.
        let html = if rng.random_bool(0.5) {
            format!(
                "<html><body mg:about=\"{id}\">\n\
                 <h1><span mg:tag=\"person.name\">{name}</span></h1>\n\
                 <p>Welcome to my home page. I study interesting things.</p>\n\
                 <ul>\n\
                 <li>Phone: <span mg:tag=\"person.phone\">{phone}</span></li>\n\
                 <li>Email: <span mg:tag=\"person.email\">{email}</span></li>\n\
                 <li>Office: <span mg:tag=\"person.office\">{office}</span></li>\n\
                 </ul>\n\
                 <p>Last updated recently.</p>\n\
                 </body></html>",
                id = p.id, name = p.name, phone = p.phone, email = p.email, office = p.office
            )
        } else {
            format!(
                "<html><body>\n\
                 <div mg:about=\"{id}\">\n\
                 <table>\n\
                 <tr><td>Name</td><td mg:tag=\"person.name\">{name}</td></tr>\n\
                 <tr><td>Tel</td><td mg:tag=\"person.phone\">{phone}</td></tr>\n\
                 <tr><td>Mail</td><td mg:tag=\"person.email\">{email}</td></tr>\n\
                 <tr><td>Room</td><td mg:tag=\"person.office\">{office}</td></tr>\n\
                 </table>\n\
                 </div>\n\
                 <p>Unrelated footer text about the weather.</p>\n\
                 </body></html>",
                id = p.id, name = p.name, phone = p.phone, email = p.email, office = p.office
            )
        };
        GeneratedPage { url, html, truth, lies: Vec::new() }
    }

    fn course_page(&self, i: usize, instructor: &Person, rng: &mut StdRng) -> GeneratedPage {
        let id = format!("course/c{i:03}");
        let url = format!("http://univ.edu/courses/c{i:03}.html");
        let title = generate_value(ValueKind::CourseTitle, rng);
        let time = generate_value(ValueKind::MeetingTime, rng);
        let room = generate_value(ValueKind::Room, rng);
        let truth = vec![
            (id.clone(), "course.title".to_string(), title.clone()),
            (id.clone(), "course.instructor".to_string(), Value::str(&instructor.name)),
            (id.clone(), "course.time".to_string(), time.clone()),
            (id.clone(), "course.room".to_string(), room.clone()),
        ];
        let html = format!(
            "<html><body mg:about=\"{id}\">\n\
             <h1><span mg:tag=\"course.title\">{title}</span></h1>\n\
             <p>Taught by <span mg:tag=\"course.instructor\">{inst}</span>.</p>\n\
             <p>Meets <span mg:tag=\"course.time\">{time}</span> in \
             <span mg:tag=\"course.room\">{room}</span>.</p>\n\
             <h2>Syllabus</h2>\n\
             <p>Week 1: introductions. Week 2: the hard part. Week 10: the exam.</p>\n\
             </body></html>",
            id = id, title = title, inst = instructor.name, time = time, room = room
        );
        GeneratedPage { url, html, truth, lies: Vec::new() }
    }

    /// A hand-maintained directory that re-states people's phones — and,
    /// with probability [`DirtSpec::conflict_prob`] per entry, is stale.
    fn directory_page(&self, s: usize, people: &[Person], rng: &mut StdRng) -> GeneratedPage {
        let url = format!("http://univ.edu/directory{s}.html");
        let mut rows = String::new();
        let mut truth = Vec::new();
        let mut lies = Vec::new();
        for p in people {
            let (phone, is_lie) = if rng.random_bool(self.dirt.conflict_prob.clamp(0.0, 1.0)) {
                (generate_value(ValueKind::Phone, rng), true)
            } else {
                (p.phone.clone(), false)
            };
            let fact = (p.id.clone(), "person.phone".to_string(), phone.clone());
            if is_lie {
                lies.push(fact);
            } else {
                truth.push(fact);
            }
            rows.push_str(&format!(
                "<tr mg:about=\"{id}\"><td mg:tag=\"person.name\">{name}</td>\
                 <td mg:tag=\"person.phone\">{phone}</td></tr>\n",
                id = p.id, name = p.name, phone = phone
            ));
        }
        let html = format!(
            "<html><body>\n<h1>Departmental directory {s}</h1>\n<table>\n{rows}</table>\n</body></html>"
        );
        GeneratedPage { url, html, truth, lies }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = PageGenerator::default();
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].html, b[0].html);
    }

    #[test]
    fn page_counts() {
        let g = PageGenerator { courses: 4, people: 3, ..Default::default() };
        let pages = g.generate();
        assert_eq!(pages.len(), 3 + 4 + g.dirt.secondary_pages);
    }

    #[test]
    fn every_truth_value_appears_in_the_html() {
        for page in PageGenerator::default().generate() {
            for (_, _, v) in &page.truth {
                assert!(
                    page.html.contains(&v.to_string()),
                    "{} missing value {} in html",
                    page.url,
                    v
                );
            }
        }
    }

    #[test]
    fn annotations_present() {
        for page in PageGenerator::default().generate() {
            assert!(page.html.contains("mg:about"), "{}", page.url);
            assert!(page.html.contains("mg:tag"), "{}", page.url);
        }
    }

    #[test]
    fn dirt_respects_probability_extremes() {
        let clean = PageGenerator {
            dirt: DirtSpec { conflict_prob: 0.0, secondary_pages: 3 },
            ..Default::default()
        };
        assert!(clean.generate().iter().all(|p| p.lies.is_empty()));
        let filthy = PageGenerator {
            dirt: DirtSpec { conflict_prob: 1.0, secondary_pages: 1 },
            ..Default::default()
        };
        let pages = filthy.generate();
        let dir = pages.iter().find(|p| p.url.contains("directory")).unwrap();
        assert_eq!(dir.lies.len(), filthy.people);
        assert!(dir.truth.is_empty());
    }

    #[test]
    fn urls_are_unique() {
        let pages = PageGenerator::default().generate();
        let mut urls: Vec<&str> = pages.iter().map(|p| p.url.as_str()).collect();
        urls.sort();
        let before = urls.len();
        urls.dedup();
        assert_eq!(urls.len(), before);
    }
}
