//! Workload substrate: the simulated inputs of the REVERE evaluation.
//!
//! The paper evaluates REVERE on inputs we do not have: real university
//! course pages, real peer schemas, and the Internet. Per the reproduction
//! plan (DESIGN.md §3), this crate generates the closest synthetic
//! equivalents, all deterministically seeded:
//!
//! * [`ontology`] — a shared university-domain ontology: concepts, their
//!   canonical attributes, synonym/abbreviation/language variants, and
//!   value generators per attribute.
//! * [`univ`] — per-university schema derivation (rename / restructure /
//!   drop, with ground-truth correspondences retained) and data generation.
//! * [`topology`] — PDMS mapping-graph topologies (chain, star, balanced
//!   tree, connected random) for the Figure 2 experiments.
//! * [`htmlgen`] — annotated course / people HTML pages with controlled
//!   heterogeneity and dirty-data injection for the MANGROVE experiments.
//! * [`querymix`] — Zipf-skewed repeated-query traces for the caching
//!   experiments ("plan once, run many").

pub mod htmlgen;
pub mod ontology;
pub mod querymix;
pub mod topology;
pub mod univ;

pub use htmlgen::{DirtSpec, GeneratedPage, PageGenerator};
pub use ontology::{Concept, Ontology};
pub use querymix::{course_templates, QueryMix};
pub use topology::{Topology, TopologyKind};
pub use univ::{GroundTruth, University, UniversityGenerator};
