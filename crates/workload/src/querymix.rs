//! Skewed repeated-query workloads.
//!
//! Real query traffic repeats: a few information needs dominate while a
//! long tail is asked once. That repetition is exactly what the PDMS's
//! reformulation/plan caches exploit, so the E13 experiment needs a
//! workload whose repetition is controlled. [`QueryMix`] draws query
//! *templates* under a Zipf(s) distribution over their rank —
//! `P(rank i) ∝ 1/(i+1)^s` — deterministically from a seed, like every
//! other generator in this crate.

use revere_util::{RngExt, SeedableRng, StdRng};

/// A seeded Zipf-skewed sampler over query template strings.
#[derive(Debug, Clone)]
pub struct QueryMix {
    templates: Vec<String>,
    /// Cumulative (unnormalized) Zipf weights, parallel to `templates`.
    cumulative: Vec<f64>,
    rng: StdRng,
}

impl QueryMix {
    /// A mix over `templates` where the template at rank `i` is drawn
    /// with probability proportional to `1/(i+1)^s`. `s = 0.0` is the
    /// uniform mix; `s ≥ 1.0` concentrates most draws on the head.
    ///
    /// # Panics
    /// Panics when `templates` is empty.
    pub fn zipf(templates: Vec<String>, s: f64, seed: u64) -> Self {
        assert!(!templates.is_empty(), "QueryMix needs at least one template");
        let mut acc = 0.0;
        let cumulative = (0..templates.len())
            .map(|i| {
                acc += 1.0 / ((i + 1) as f64).powf(s);
                acc
            })
            .collect();
        QueryMix { templates, cumulative, rng: StdRng::seed_from_u64(seed) }
    }

    /// The templates, in rank order.
    pub fn templates(&self) -> &[String] {
        &self.templates
    }

    /// Draw the rank of the next query.
    pub fn next_rank(&mut self) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = self.rng.random_f64() * total;
        self.cumulative.partition_point(|&c| c <= x).min(self.templates.len() - 1)
    }

    /// Draw the next query.
    pub fn next_query(&mut self) -> &str {
        let rank = self.next_rank();
        &self.templates[rank]
    }

    /// Draw a trace of `n` queries.
    pub fn sample(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.next_query().to_string()).collect()
    }
}

/// `n` distinct course-network query templates posed at `peer` (for the
/// fixtures' `course(title, enrollment)` relations): a rotation of scans,
/// selections with varying thresholds, enrollment self-joins, and
/// constant-title probes (the shape where a cost-based join order beats
/// the greedy one — the constant atom should lead, however it is written).
pub fn course_templates(peer: &str, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let threshold = 10 + (i * 290) / n.max(1);
            match i % 4 {
                0 => format!("q(T, E) :- {peer}.course(T, E), E > {threshold}"),
                1 => format!("q(T) :- {peer}.course(T, E), E < {threshold}"),
                2 => format!(
                    "q(T, U) :- {peer}.course(T, E), {peer}.course(U, E), E > {threshold}"
                ),
                _ => format!(
                    "q(U, E) :- {peer}.course(U, E), {peer}.course('Course 0 at {peer}', E), \
                     E < {threshold}"
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(s: f64, seed: u64) -> QueryMix {
        QueryMix::zipf(course_templates("P0", 10), s, seed)
    }

    #[test]
    fn same_seed_same_trace() {
        let a = mix(1.2, 7).sample(100);
        let b = mix(1.2, 7).sample(100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        assert_ne!(mix(1.2, 1).sample(100), mix(1.2, 2).sample(100));
    }

    #[test]
    fn zipf_concentrates_on_the_head() {
        let mut m = mix(1.5, 3);
        let mut counts = vec![0usize; m.templates().len()];
        for _ in 0..2000 {
            counts[m.next_rank()] += 1;
        }
        assert!(counts[0] > counts[9] * 4, "{counts:?}");
        // The head template dominates but the tail is still sampled.
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 5, "{counts:?}");
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let mut m = mix(0.0, 11);
        let mut counts = vec![0usize; m.templates().len()];
        for _ in 0..5000 {
            counts[m.next_rank()] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min < 300, "{counts:?}");
    }

    #[test]
    fn templates_are_distinct_and_parse_shaped() {
        let ts = course_templates("P3", 12);
        let set: std::collections::BTreeSet<_> = ts.iter().collect();
        assert_eq!(set.len(), ts.len());
        assert!(ts.iter().all(|t| t.contains("P3.course")));
    }
}
