//! PDMS mapping-graph topologies.
//!
//! Figure 2 of the paper shows six universities connected by a sparse graph
//! of pairwise schema mappings: "As long as the mapping graph is connected,
//! any peer can access data at any other peer by following schema mapping
//! 'links'." These generators produce the topologies the E1/E2 experiments
//! sweep, plus helpers for the mapping-count comparison against mediated
//! and pairwise architectures.

use revere_util::rngs::StdRng;
use revere_util::{RngExt, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

/// Shape of the mapping graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A simple path `0 - 1 - ... - n-1` (worst-case reformulation depth).
    Chain,
    /// One hub, everyone maps to peer 0 (the degenerate "mediated-like"
    /// shape a PDMS also supports, §3: "a PDMS allows for building
    /// data-integration ... like applications locally where needed").
    Star,
    /// A balanced binary tree.
    Tree,
    /// A connected random graph: a random spanning tree plus `extra`
    /// random edges.
    Random {
        /// Extra non-tree edges to add.
        extra: usize,
    },
}

/// An undirected mapping graph over peers `0..n`.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of peers.
    pub n: usize,
    /// Undirected edges `(a, b)` with `a < b`; one schema mapping each.
    pub edges: Vec<(usize, usize)>,
}

impl Topology {
    /// Generate a topology of the given kind.
    pub fn generate(kind: TopologyKind, n: usize, seed: u64) -> Topology {
        assert!(n >= 1, "need at least one peer");
        let mut edges = Vec::new();
        match kind {
            TopologyKind::Chain => {
                for i in 1..n {
                    edges.push((i - 1, i));
                }
            }
            TopologyKind::Star => {
                for i in 1..n {
                    edges.push((0, i));
                }
            }
            TopologyKind::Tree => {
                for i in 1..n {
                    edges.push(((i - 1) / 2, i));
                }
            }
            TopologyKind::Random { extra } => {
                let mut rng = StdRng::seed_from_u64(seed);
                // Random spanning tree: attach each node to a random
                // earlier node (uniform attachment).
                for i in 1..n {
                    let parent = rng.random_range(0..i);
                    edges.push((parent, i));
                }
                let mut added = 0;
                let mut guard = 0;
                while added < extra && n >= 2 && guard < extra * 50 + 100 {
                    guard += 1;
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    let (a, b) = (a.min(b), a.max(b));
                    if a == b || edges.contains(&(a, b)) {
                        continue;
                    }
                    edges.push((a, b));
                    added += 1;
                }
            }
        }
        Topology { n, edges }
    }

    /// Number of mappings this topology requires (one per edge) — linear in
    /// peers for all generated kinds, the property §3 emphasizes.
    pub fn mapping_count(&self) -> usize {
        self.edges.len()
    }

    /// Mappings a fully pairwise design would need: `n·(n−1)/2`.
    pub fn pairwise_mapping_count(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// Mappings a single mediated schema needs: one per source — but also
    /// the up-front cost of designing the mediated schema itself, which the
    /// paper calls "simply too heavyweight".
    pub fn mediated_mapping_count(&self) -> usize {
        self.n
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// BFS hop distance from `from` to every peer (`None` = unreachable).
    pub fn distances(&self, from: usize) -> Vec<Option<usize>> {
        self.distances_avoiding(from, &BTreeSet::new())
    }

    /// BFS hop distances with the peers in `down` treated as absent —
    /// the structural reachability bound a chaos run degrades toward.
    /// A `down` source reaches nothing (not even itself).
    pub fn distances_avoiding(&self, from: usize, down: &BTreeSet<usize>) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.n];
        if down.contains(&from) {
            return dist;
        }
        let adj = self.adjacency();
        dist[from] = Some(0);
        let mut q = VecDeque::from([from]);
        while let Some(u) = q.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in &adj[u] {
                if dist[v].is_none() && !down.contains(&v) {
                    dist[v] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// How many peers `from` can still reach (itself included) when the
    /// peers in `down` have left.
    pub fn reachable_avoiding(&self, from: usize, down: &BTreeSet<usize>) -> usize {
        self.distances_avoiding(from, down)
            .iter()
            .filter(|d| d.is_some())
            .count()
    }

    /// True when every peer can reach every other.
    pub fn is_connected(&self) -> bool {
        self.distances(0).iter().all(Option::is_some)
    }

    /// The longest shortest path (graph diameter); `None` if disconnected.
    pub fn diameter(&self) -> Option<usize> {
        let mut best = 0;
        for s in 0..self.n {
            for d in self.distances(s) {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// Remove the given edge (simulating a peer dropping a mapping —
    /// "every member can join or leave at will").
    pub fn without_edge(&self, a: usize, b: usize) -> Topology {
        let key = (a.min(b), a.max(b));
        Topology {
            n: self.n,
            edges: self.edges.iter().copied().filter(|&e| e != key).collect(),
        }
    }

    /// The Figure 2 example: Stanford, Oxford, MIT, Tsinghua, Roma,
    /// Berkeley with the arrows shown in the figure.
    pub fn figure2() -> (Topology, Vec<&'static str>) {
        let names = vec!["Stanford", "Oxford", "MIT", "Tsinghua", "Roma", "Berkeley"];
        // Edges per the figure's arrows (as an undirected mapping graph).
        let edges = vec![(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (2, 5)];
        (Topology { n: 6, edges }, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let t = Topology::generate(TopologyKind::Chain, 5, 0);
        assert_eq!(t.mapping_count(), 4);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(4));
    }

    #[test]
    fn star_shape() {
        let t = Topology::generate(TopologyKind::Star, 6, 0);
        assert_eq!(t.mapping_count(), 5);
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn tree_shape() {
        let t = Topology::generate(TopologyKind::Tree, 7, 0);
        assert_eq!(t.mapping_count(), 6);
        assert!(t.is_connected());
        assert!(t.diameter().unwrap() <= 4);
    }

    #[test]
    fn random_is_connected_and_deterministic() {
        let a = Topology::generate(TopologyKind::Random { extra: 3 }, 20, 9);
        let b = Topology::generate(TopologyKind::Random { extra: 3 }, 20, 9);
        assert_eq!(a.edges, b.edges);
        assert!(a.is_connected());
        assert_eq!(a.mapping_count(), 19 + 3);
    }

    #[test]
    fn mapping_counts_scale_linearly_vs_quadratic() {
        let t = Topology::generate(TopologyKind::Chain, 50, 0);
        assert_eq!(t.mapping_count(), 49);
        assert_eq!(t.pairwise_mapping_count(), 50 * 49 / 2);
        assert_eq!(t.mediated_mapping_count(), 50);
    }

    #[test]
    fn down_peers_partition_reachability() {
        // Chain 0-1-2-3-4 with peer 2 down: 0 reaches {0, 1} only.
        let t = Topology::generate(TopologyKind::Chain, 5, 0);
        let down = BTreeSet::from([2]);
        assert_eq!(t.reachable_avoiding(0, &down), 2);
        assert_eq!(t.distances_avoiding(0, &down)[1], Some(1));
        assert_eq!(t.distances_avoiding(0, &down)[3], None);
        // A down source reaches nothing.
        assert_eq!(t.reachable_avoiding(2, &down), 0);
        // No down peers: identical to plain distances.
        assert_eq!(t.distances_avoiding(0, &BTreeSet::new()), t.distances(0));
    }

    #[test]
    fn removing_a_bridge_disconnects() {
        let t = Topology::generate(TopologyKind::Chain, 4, 0);
        let cut = t.without_edge(1, 2);
        assert!(!cut.is_connected());
        assert!(cut.distances(0)[3].is_none());
    }

    #[test]
    fn figure2_matches_paper() {
        let (t, names) = Topology::figure2();
        assert_eq!(names.len(), 6);
        assert!(t.is_connected());
        // Trento-style joining: adding one edge to Roma connects a 7th peer.
        let mut bigger = t.clone();
        bigger.n = 7;
        bigger.edges.push((4, 6));
        assert!(bigger.is_connected());
    }

    #[test]
    fn single_peer_topology() {
        let t = Topology::generate(TopologyKind::Chain, 1, 0);
        assert!(t.is_connected());
        assert_eq!(t.diameter(), Some(0));
        assert_eq!(t.mapping_count(), 0);
    }
}
