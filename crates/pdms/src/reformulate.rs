//! Query reformulation over the transitive closure of peer mappings.
//!
//! §3.1.1: "a query should be rewritten using sources reachable through the
//! transitive closure of all mappings. However, mappings are defined
//! 'directionally' with query expressions (using the GLAV formalism \[19\]),
//! and a given user query may have to be evaluated against the mapping in
//! either the 'forward' or 'backward' direction. This means that our query
//! answering algorithm has aspects of both global-as-view and
//! local-as-view: it performs query unfolding and query reformulation using
//! views. In addition, our query answering algorithm is aided by heuristics
//! that prune redundant and irrelevant paths through the space of
//! mappings."
//!
//! The algorithm here is the rule-goal expansion of Halevy et al.
//! (ICDE'03) \[25\], phrased at query granularity:
//!
//! 1. Start from the user query (peer-qualified relations). It is itself
//!    the first answer node (local data answers it).
//! 2. To expand a query node, run MiniCon with (a) one *identity view* per
//!    concrete relation in the node (so goals may stay put) and (b) the
//!    LAV side of every candidate mapping — forward mappings into the
//!    node's peers and, because mappings are traversed in both directions,
//!    the reversed mappings too. Each resulting rewriting's virtual
//!    mapping atoms are then unfolded through the corresponding GAV side,
//!    yielding a new concrete query over *other* peers' vocabularies.
//! 3. Every distinct node is a disjunct of the answer (the union over all
//!    reachable peers); expansion continues breadth-first to a depth bound.
//!
//! Pruning heuristics (ablatable — experiment E2):
//! * **relevance** — only mappings whose LAV body shares a relation with
//!   the node are offered to MiniCon;
//! * **containment** — a new node contained in an already-accepted node is
//!   redundant (adds no answers) and is dropped along with its subtree;
//! * **minimization** — nodes are minimized before dedup, collapsing
//!   isomorphic variants that differ only by redundant atoms.
//!
//! The visited-set on canonical forms is always on: it is what guarantees
//! termination on cyclic mapping graphs, not a heuristic.

use revere_query::glav::GlavMapping;
use revere_query::unfold::{unfold_with, ViewDef};
use revere_query::{contained_in, minimize, rewrite_using_views, ConjunctiveQuery, UnionQuery};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Tuning knobs for reformulation.
#[derive(Debug, Clone)]
pub struct ReformulateOptions {
    /// Maximum mapping-graph hops from the querying peer.
    pub max_depth: usize,
    /// Cap on produced disjuncts (safety valve; `usize::MAX` = unbounded).
    pub max_rewritings: usize,
    /// Traverse mappings backwards too (the paper's "forward or backward
    /// direction"). On by default.
    pub bidirectional: bool,
    /// Enable the relevance / containment / minimization heuristics.
    pub pruning: bool,
}

impl Default for ReformulateOptions {
    fn default() -> Self {
        ReformulateOptions {
            max_depth: 8,
            max_rewritings: 4096,
            bidirectional: true,
            pruning: true,
        }
    }
}

/// Statistics and output of one reformulation.
#[derive(Debug, Clone)]
pub struct ReformulationResult {
    /// The reformulated query: a union over every reachable peer's
    /// vocabulary (the original query is always the first disjunct).
    pub union: UnionQuery,
    /// Query nodes expanded (MiniCon invocations).
    pub nodes_expanded: usize,
    /// Candidate nodes generated before dedup/pruning.
    pub candidates_generated: usize,
    /// Candidates dropped by the containment heuristic.
    pub pruned_by_containment: usize,
    /// Candidates dropped by the visited set.
    pub pruned_by_visited: usize,
    /// Peers whose vocabulary appears in the final union.
    pub peers_reached: BTreeSet<String>,
}

/// A reformulation engine over a fixed mapping graph.
#[derive(Debug, Clone)]
pub struct Reformulator {
    mappings: Vec<GlavMapping>,
    options: ReformulateOptions,
}

impl Reformulator {
    /// Build from the network's mappings.
    pub fn new(mappings: Vec<GlavMapping>, options: ReformulateOptions) -> Self {
        Reformulator { mappings, options }
    }

    /// All mappings including reversals (if enabled).
    fn edge_set(&self) -> Vec<GlavMapping> {
        let mut edges = self.mappings.clone();
        if self.options.bidirectional {
            edges.extend(self.mappings.iter().map(GlavMapping::reversed));
        }
        edges
    }

    /// Reformulate `query` (posed in some peer's vocabulary) into a union
    /// over every vocabulary reachable through the mapping graph.
    pub fn reformulate(&self, query: &ConjunctiveQuery) -> ReformulationResult {
        let edges = self.edge_set();
        let mut result = ReformulationResult {
            union: UnionQuery::default(),
            nodes_expanded: 0,
            candidates_generated: 0,
            pruned_by_containment: 0,
            pruned_by_visited: 0,
            peers_reached: BTreeSet::new(),
        };
        let mut visited: HashSet<String> = HashSet::new();
        let mut accepted: Vec<ConjunctiveQuery> = Vec::new();

        let root = if self.options.pruning { minimize(query) } else { query.clone() };
        visited.insert(root.canonical_key());
        accepted.push(root.clone());
        result.union.push_dedup(root.clone());

        let mut frontier: VecDeque<(ConjunctiveQuery, usize)> = VecDeque::from([(root, 0)]);
        while let Some((node, depth)) = frontier.pop_front() {
            if depth >= self.options.max_depth
                || result.union.len() >= self.options.max_rewritings
            {
                continue;
            }
            result.nodes_expanded += 1;
            for candidate in self.expand(&node, &edges) {
                result.candidates_generated += 1;
                let candidate = if self.options.pruning {
                    minimize(&candidate)
                } else {
                    candidate
                };
                let key = candidate.canonical_key();
                if !visited.insert(key) {
                    result.pruned_by_visited += 1;
                    continue;
                }
                if self.options.pruning
                    && accepted.iter().any(|a| contained_in(&candidate, a))
                {
                    result.pruned_by_containment += 1;
                    continue;
                }
                accepted.push(candidate.clone());
                result.union.push_dedup(candidate.clone());
                frontier.push_back((candidate, depth + 1));
                if result.union.len() >= self.options.max_rewritings {
                    break;
                }
            }
        }

        for d in &result.union.disjuncts {
            for a in &d.body {
                if let Some((peer, _)) = crate::peer::split_qualified(&a.relation) {
                    result.peers_reached.insert(peer.to_string());
                }
            }
        }
        result
    }

    /// One expansion step: rewrite `node` through each single mapping edge,
    /// letting un-mapped goals pass through identity views.
    fn expand(&self, node: &ConjunctiveQuery, edges: &[GlavMapping]) -> Vec<ConjunctiveQuery> {
        // Identity views: id__rel(vars) :- rel(vars) for each relation used
        // by the node, so MiniCon can leave goals in place.
        let node_relations: BTreeSet<&str> =
            node.body.iter().map(|a| a.relation.as_str()).collect();
        let mut identity_views: Vec<ViewDef> = Vec::new();
        let mut identity_defs: Vec<ViewDef> = Vec::new();
        for (i, a) in node.body.iter().enumerate() {
            let rel = &a.relation;
            let vars: Vec<revere_query::Term> = (0..a.terms.len())
                .map(|k| revere_query::Term::var(format!("Id{i}_{k}")))
                .collect();
            let id_name = format!("id__{i}__{rel}");
            let head = revere_query::Atom::new(id_name, vars.clone());
            let body = vec![revere_query::Atom::new(rel.clone(), vars)];
            identity_views.push(ViewDef { head: head.clone(), body: body.clone() });
            identity_defs.push(ViewDef { head, body });
        }

        let mut out = Vec::new();
        for m in edges {
            if self.options.pruning {
                // Relevance: the mapping's LAV body must mention one of the
                // node's relations.
                let relevant = m
                    .target_body
                    .iter()
                    .any(|a| node_relations.contains(a.relation.as_str()));
                if !relevant {
                    continue;
                }
            }
            let mut views = identity_views.clone();
            views.push(m.lav_view());
            for rw in rewrite_using_views(node, &views) {
                // Did the mapping actually participate? Pure-identity
                // rewritings reproduce the node.
                let uses_mapping = rw.body.iter().any(|a| a.relation == m.name);
                if !uses_mapping {
                    continue;
                }
                // Unfold: mapping atoms via the GAV rule, identity atoms
                // back to their base relations.
                let mut defs = identity_defs.clone();
                defs.push(m.gav_rule());
                for expanded in unfold_with(&rw, &defs, 16) {
                    if expanded.is_safe() {
                        out.push(expanded);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_query::parse_query;

    fn mapping(name: &str, src: &str, tgt: &str, body: &str) -> GlavMapping {
        GlavMapping::parse(name, src, tgt, body).unwrap()
    }

    /// Berkeley -> MIT mapping over simplified relational peer schemas.
    fn berkeley_mit() -> GlavMapping {
        mapping(
            "m_bm",
            "Berkeley",
            "MIT",
            "m(T, E) :- Berkeley.course(T, E) ==> m(T, E) :- MIT.subject(T, E)",
        )
    }

    #[test]
    fn single_hop_translation() {
        let r = Reformulator::new(vec![berkeley_mit()], ReformulateOptions::default());
        let q = parse_query("q(T) :- MIT.subject(T, E)").unwrap();
        let res = r.reformulate(&q);
        assert_eq!(res.union.len(), 2, "{}", res.union);
        assert!(res.peers_reached.contains("Berkeley"));
        assert!(res.peers_reached.contains("MIT"));
    }

    #[test]
    fn transitive_two_hops() {
        // Tsinghua -> Berkeley -> MIT; query at MIT reaches Tsinghua.
        let m1 = berkeley_mit();
        let m2 = mapping(
            "m_tb",
            "Tsinghua",
            "Berkeley",
            "m(T, E) :- Tsinghua.kecheng(T, E) ==> m(T, E) :- Berkeley.course(T, E)",
        );
        let r = Reformulator::new(vec![m1, m2], ReformulateOptions::default());
        let q = parse_query("q(T) :- MIT.subject(T, E)").unwrap();
        let res = r.reformulate(&q);
        assert_eq!(res.union.len(), 3, "{}", res.union);
        assert!(res.peers_reached.contains("Tsinghua"));
    }

    #[test]
    fn backward_traversal_reaches_target_side() {
        // Query at Berkeley (the mapping's SOURCE side): only reachable
        // via the reversed mapping.
        let r = Reformulator::new(vec![berkeley_mit()], ReformulateOptions::default());
        let q = parse_query("q(T) :- Berkeley.course(T, E)").unwrap();
        let res = r.reformulate(&q);
        assert_eq!(res.union.len(), 2);
        assert!(res.peers_reached.contains("MIT"));
        // With bidirectional off, the query stays local.
        let uni = Reformulator::new(
            vec![berkeley_mit()],
            ReformulateOptions { bidirectional: false, ..Default::default() },
        );
        let res2 = uni.reformulate(&q);
        assert_eq!(res2.union.len(), 1);
    }

    #[test]
    fn depth_limit_bounds_reach() {
        let m1 = berkeley_mit();
        let m2 = mapping(
            "m_tb",
            "Tsinghua",
            "Berkeley",
            "m(T, E) :- Tsinghua.kecheng(T, E) ==> m(T, E) :- Berkeley.course(T, E)",
        );
        let r = Reformulator::new(
            vec![m1, m2],
            ReformulateOptions { max_depth: 1, ..Default::default() },
        );
        let q = parse_query("q(T) :- MIT.subject(T, E)").unwrap();
        let res = r.reformulate(&q);
        assert_eq!(res.union.len(), 2, "depth 1 must stop at Berkeley");
    }

    #[test]
    fn cyclic_mapping_graph_terminates() {
        // A <-> B <-> C <-> A cycle.
        let ms = vec![
            mapping("ab", "A", "B", "m(X) :- A.r(X) ==> m(X) :- B.r(X)"),
            mapping("bc", "B", "C", "m(X) :- B.r(X) ==> m(X) :- C.r(X)"),
            mapping("ca", "C", "A", "m(X) :- C.r(X) ==> m(X) :- A.r(X)"),
        ];
        let r = Reformulator::new(ms, ReformulateOptions::default());
        let q = parse_query("q(X) :- A.r(X)").unwrap();
        let res = r.reformulate(&q);
        assert_eq!(res.union.len(), 3);
        assert_eq!(res.peers_reached.len(), 3);
    }

    #[test]
    fn join_query_translates_atom_wise() {
        // Two-atom query; mapping only covers one relation. The other goal
        // passes through the identity view.
        let m = mapping(
            "m1",
            "A",
            "B",
            "m(X, Y) :- A.r(X, Y) ==> m(X, Y) :- B.r(X, Y)",
        );
        let r = Reformulator::new(vec![m], ReformulateOptions::default());
        let q = parse_query("q(X, Z) :- B.r(X, Y), B.s(Y, Z)").unwrap();
        let res = r.reformulate(&q);
        // Local + (A.r ⋈ B.s) hybrid.
        assert!(res.union.len() >= 2, "{}", res.union);
        assert!(res
            .union
            .disjuncts
            .iter()
            .any(|d| d.body.iter().any(|a| a.relation == "A.r")
                && d.body.iter().any(|a| a.relation == "B.s")));
    }

    #[test]
    fn complex_mapping_bodies() {
        // Mapping whose source side is a join (GAV direction splits into
        // two source atoms).
        let m = mapping(
            "m1",
            "A",
            "B",
            "m(T, P) :- A.course(C, T), A.teaches(P, C) ==> m(T, P) :- B.offering(T, P)",
        );
        let r = Reformulator::new(vec![m], ReformulateOptions::default());
        let q = parse_query("q(T) :- B.offering(T, P)").unwrap();
        let res = r.reformulate(&q);
        assert_eq!(res.union.len(), 2);
        let translated = &res.union.disjuncts[1];
        assert_eq!(translated.body.len(), 2);
    }

    #[test]
    fn pruning_reduces_candidates_without_losing_peers() {
        // Chain of 5 peers; compare pruned vs unpruned.
        let ms: Vec<GlavMapping> = (0..4)
            .map(|i| {
                mapping(
                    &format!("m{i}"),
                    &format!("P{i}"),
                    &format!("P{}", i + 1),
                    &format!("m(X, Y) :- P{i}.r(X, Y) ==> m(X, Y) :- P{}.r(X, Y)", i + 1),
                )
            })
            .collect();
        let q = parse_query("q(X) :- P4.r(X, Y)").unwrap();
        let pruned = Reformulator::new(ms.clone(), ReformulateOptions::default()).reformulate(&q);
        let unpruned = Reformulator::new(
            ms,
            ReformulateOptions { pruning: false, ..Default::default() },
        )
        .reformulate(&q);
        assert_eq!(pruned.peers_reached.len(), 5);
        assert_eq!(unpruned.peers_reached.len(), 5);
        assert!(
            pruned.nodes_expanded <= unpruned.nodes_expanded,
            "pruned {} > unpruned {}",
            pruned.nodes_expanded,
            unpruned.nodes_expanded
        );
    }

    #[test]
    fn irrelevant_mappings_do_not_expand_the_search() {
        let relevant = berkeley_mit();
        let mut ms = vec![relevant];
        for i in 0..10 {
            ms.push(mapping(
                &format!("noise{i}"),
                &format!("X{i}"),
                &format!("Y{i}"),
                &format!("m(A) :- X{i}.foo(A) ==> m(A) :- Y{i}.bar(A)"),
            ));
        }
        let r = Reformulator::new(ms, ReformulateOptions::default());
        let q = parse_query("q(T) :- MIT.subject(T, E)").unwrap();
        let res = r.reformulate(&q);
        assert_eq!(res.union.len(), 2);
        assert_eq!(res.peers_reached.len(), 2);
    }

    #[test]
    fn max_rewritings_caps_output() {
        let ms: Vec<GlavMapping> = (0..6)
            .map(|i| {
                mapping(
                    &format!("m{i}"),
                    &format!("P{i}"),
                    "Hub",
                    &format!("m(X) :- P{i}.r(X) ==> m(X) :- Hub.r(X)"),
                )
            })
            .collect();
        let q = parse_query("q(X) :- Hub.r(X)").unwrap();
        let r = Reformulator::new(
            ms,
            ReformulateOptions { max_rewritings: 3, ..Default::default() },
        );
        let res = r.reformulate(&q);
        assert!(res.union.len() <= 3);
    }
}
