//! Materialized views at peers (data placement).
//!
//! §3.1.2: "Our ultimate goal is to materialize the best views at each peer
//! to allow answering queries most efficiently ... in an environment where
//! the data sources are subject to update at any point, and hence view
//! updates can become expensive." A [`MaterializedView`] keeps derivation
//! *counts* per tuple (the counting algorithm for non-recursive views) so
//! the updategram machinery can maintain it incrementally under both
//! inserts and deletes.
//!
//! Counts are true Z-set weights: a retraction arriving before its
//! matching insert (out-of-order propagation, or a delta computed against
//! a slightly stale base) drives a tuple's count *negative*, and a later
//! insert cancels it back to zero — the tuple never spuriously appears.
//! Only tuples with **positive** count are visible through
//! [`MaterializedView::as_relation`] / [`MaterializedView::len`].
//!
//! [`DataflowView`] is the circuit-backed successor (see
//! [`revere_query::dataflow`]): same maintenance contract, but updates
//! flow through arranged per-operator state in O(|Δ|) instead of
//! re-evaluating delta queries against the base relations.
//! [`IvmStrategy`] selects between the two; the counting path remains as
//! an ablation until E17 retires it.

use crate::updategram::{gram_to_batch, Updategram};
use revere_query::dataflow::Circuit;
use revere_query::eval::{eval_cq_bag, EvalError, Source};
use revere_query::plan::plan_cq;
use revere_query::ConjunctiveQuery;
use revere_storage::{Catalog, RelSchema, Relation, Tuple};
use std::collections::HashMap;

/// Which incremental-maintenance implementation keeps a continuous query
/// fresh. The counting path re-derives delta queries against base
/// relations per update; the dataflow path pushes deltas through a
/// compiled [`Circuit`] with arranged state. Kept side by side as an
/// ablation (E17 measures the gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IvmStrategy {
    /// Delta-dataflow circuits: O(|Δ|) per update.
    #[default]
    Dataflow,
    /// Counting IVM: delta queries against base relations.
    Counting,
}

/// A materialized conjunctive view with derivation counts.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// View name (also the relation name of [`MaterializedView::as_relation`]).
    pub name: String,
    /// Defining query.
    pub definition: ConjunctiveQuery,
    counts: HashMap<Tuple, i64>,
    schema: RelSchema,
    /// Full refreshes performed.
    pub refresh_count: usize,
    /// Incremental maintenance rounds applied.
    pub incremental_count: usize,
}

impl MaterializedView {
    /// Create an empty (unrefreshed) view.
    pub fn new(name: impl Into<String>, definition: ConjunctiveQuery) -> Self {
        let name = name.into();
        let attr_names: Vec<String> = definition
            .head
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                revere_query::Term::Var(v) => v.clone(),
                revere_query::Term::Const(_) => format!("c{i}"),
            })
            .collect();
        let schema = RelSchema::text(
            name.clone(),
            &attr_names.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        MaterializedView {
            name,
            definition,
            counts: HashMap::new(),
            schema,
            refresh_count: 0,
            incremental_count: 0,
        }
    }

    /// Recompute from scratch ("simply invalidating views and re-reading
    /// data" — the baseline the paper wants to avoid).
    pub fn refresh_full<S: Source>(&mut self, source: &S) -> Result<(), EvalError> {
        let bag = eval_cq_bag(&self.definition, source)?;
        self.counts.clear();
        for row in bag.into_rows() {
            *self.counts.entry(row).or_insert(0) += 1;
        }
        self.refresh_count += 1;
        Ok(())
    }

    /// Apply a signed delta of derivations (from the updategram machinery).
    /// Tuples whose count reaches zero vanish. Counts may go transiently
    /// *negative* (a retraction ahead of its insert); such tuples are kept
    /// invisibly so the matching insert cancels them instead of making the
    /// tuple appear with a net count of zero.
    pub fn apply_derivation_delta(&mut self, rows: impl IntoIterator<Item = (Tuple, i64)>) {
        let _ = self.apply_derivation_delta_diff(rows);
    }

    /// Like [`MaterializedView::apply_derivation_delta`], but also report
    /// the *set-level* change: tuples that newly appeared and tuples that
    /// vanished. This is the view-side half of updategram propagation —
    /// the returned pair is exactly the updategram the view's consumers
    /// need.
    pub fn apply_derivation_delta_diff(
        &mut self,
        rows: impl IntoIterator<Item = (Tuple, i64)>,
    ) -> (Vec<Tuple>, Vec<Tuple>) {
        let mut appeared = Vec::new();
        let mut vanished = Vec::new();
        for (row, sign) in rows {
            let entry = self.counts.entry(row.clone()).or_insert(0);
            let before = *entry;
            *entry += sign;
            if before <= 0 && *entry > 0 {
                appeared.push(row);
            } else if before > 0 && *entry <= 0 {
                vanished.push(row);
            }
        }
        // Z-set consolidation: drop exact zeros, KEEP negatives — clamping
        // them would turn a later matching insert into a phantom appearance
        // (the delete-below-zero asymmetry the differential harness caught).
        self.counts.retain(|_, c| *c != 0);
        self.incremental_count += 1;
        // A tuple may transiently vanish then reappear within one batch;
        // cancel such pairs.
        appeared.sort();
        vanished.sort();
        let mut final_appeared = Vec::new();
        for a in appeared {
            if let Ok(pos) = vanished.binary_search(&a) {
                vanished.remove(pos);
            } else {
                final_appeared.push(a);
            }
        }
        (final_appeared, vanished)
    }

    /// The view's current contents: tuples with *positive* derivation
    /// count (set semantics, sorted for determinism).
    pub fn as_relation(&self) -> Relation {
        let mut rows: Vec<Tuple> = self
            .counts
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(t, _)| t.clone())
            .collect();
        rows.sort();
        Relation::with_rows(self.schema.clone(), rows)
    }

    /// Number of distinct tuples with positive derivation count.
    pub fn len(&self) -> usize {
        self.counts.values().filter(|c| **c > 0).count()
    }

    /// True when the view holds no (positively derived) tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Derivation count of one tuple (0 if absent).
    pub fn derivations(&self, row: &Tuple) -> i64 {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Total derivations across tuples (net — transiently negative counts
    /// subtract).
    pub fn total_derivations(&self) -> i64 {
        self.counts.values().sum()
    }
}

/// A continuous query maintained by a delta-dataflow [`Circuit`] instead
/// of counting-IVM delta queries: the planned body is compiled once into
/// a chain of bilinear incremental joins with arranged per-side state, and
/// each updategram becomes a [`revere_query::dataflow::DeltaBatch`] pushed
/// through in O(|Δ|) — no base-relation rescan per update.
///
/// The maintenance contract matches [`MaterializedView`]: same derivation
/// counts, same set-level appeared/vanished diffs, byte-identical
/// [`DataflowView::as_relation`]. `tests/differential_ivm.rs` holds both
/// implementations to the from-scratch recompute oracle after every delta.
#[derive(Debug, Clone)]
pub struct DataflowView {
    /// View name (also the relation name of [`DataflowView::as_relation`]).
    pub name: String,
    /// Defining query.
    pub definition: ConjunctiveQuery,
    circuit: Circuit,
    /// Incremental maintenance rounds applied (updategrams pushed).
    pub incremental_count: usize,
}

impl DataflowView {
    /// Compile `definition` against `catalog` (planning its body, building
    /// the circuit, seeding it with the current contents).
    pub fn new(
        name: impl Into<String>,
        definition: ConjunctiveQuery,
        catalog: &Catalog,
    ) -> Result<Self, EvalError> {
        let plan = plan_cq(&definition, catalog);
        let mut circuit = Circuit::new(&definition, &plan)?;
        circuit.init_full(catalog)?;
        Ok(DataflowView {
            name: name.into(),
            definition,
            circuit,
            incremental_count: 0,
        })
    }

    /// Push one updategram through the circuit **and** apply it to the
    /// catalog (deltas are computed against the pre-gram state, mirroring
    /// [`crate::updategram::maintain`]). Returns the set-level
    /// `(appeared, vanished)` diff — the updategram the view's own
    /// consumers need.
    pub fn apply_gram(
        &mut self,
        catalog: &mut Catalog,
        gram: &Updategram,
    ) -> (Vec<Tuple>, Vec<Tuple>) {
        let batch = gram_to_batch(catalog, gram);
        let diff = self.push_batch(&batch);
        crate::updategram::apply_updategrams(catalog, std::slice::from_ref(gram));
        diff
    }

    /// Push a pre-built delta batch (already signed against the circuit's
    /// current base state) and return the set-level diff.
    pub fn push_batch(
        &mut self,
        batch: &revere_query::dataflow::DeltaBatch,
    ) -> (Vec<Tuple>, Vec<Tuple>) {
        let out = self.circuit.push(batch);
        self.incremental_count += 1;
        let mut appeared = Vec::new();
        let mut vanished = Vec::new();
        for (t, w) in out.iter() {
            let after = self.circuit.derivations().weight(t);
            let before = after - w;
            if before <= 0 && after > 0 {
                appeared.push(t.clone());
            } else if before > 0 && after <= 0 {
                vanished.push(t.clone());
            }
        }
        (appeared, vanished)
    }

    /// The view's current contents (set semantics, sorted).
    pub fn as_relation(&self) -> Relation {
        self.circuit.output_set()
    }

    /// The maintained *bag* result, sorted — what the differential harness
    /// compares byte-for-byte against `eval_cq_bag_planned(..).sorted()`.
    pub fn as_bag(&self) -> Relation {
        self.circuit.output_bag()
    }

    /// Number of distinct tuples with positive derivation count.
    pub fn len(&self) -> usize {
        self.circuit.len()
    }

    /// True when the view holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.circuit.is_empty()
    }

    /// Derivation count of one tuple (0 if absent).
    pub fn derivations(&self, row: &Tuple) -> i64 {
        self.circuit.derivations().weight(row)
    }

    /// The base relations this view listens to (the affected-set check:
    /// grams on other relations are guaranteed no-ops).
    pub fn relations(&self) -> std::collections::BTreeSet<String> {
        self.circuit.relations()
    }

    /// The underlying circuit (work counters, arranged-state footprint).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_query::parse_query;
    use revere_storage::{Catalog, Value};

    fn base() -> Catalog {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a", "b"]));
        r.insert(vec!["1".into(), "x".into()]);
        r.insert(vec!["2".into(), "x".into()]);
        r.insert(vec!["3".into(), "y".into()]);
        c.register(r);
        c
    }

    #[test]
    fn full_refresh_counts_derivations() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        v.refresh_full(&base()).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.derivations(&vec![Value::str("x")]), 2);
        assert_eq!(v.derivations(&vec![Value::str("y")]), 1);
        assert_eq!(v.total_derivations(), 3);
        assert_eq!(v.refresh_count, 1);
    }

    #[test]
    fn derivation_delta_add_and_remove() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        v.refresh_full(&base()).unwrap();
        // One derivation of "y" removed: tuple vanishes.
        v.apply_derivation_delta(vec![(vec![Value::str("y")], -1)]);
        assert_eq!(v.len(), 1);
        // One derivation of "x" removed: tuple survives (count 2 -> 1).
        v.apply_derivation_delta(vec![(vec![Value::str("x")], -1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.derivations(&vec![Value::str("x")]), 1);
        // New tuple appears.
        v.apply_derivation_delta(vec![(vec![Value::str("z")], 1)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.incremental_count, 3);
    }

    #[test]
    fn as_relation_is_sorted_and_deduped() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        v.refresh_full(&base()).unwrap();
        let rel = v.as_relation();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0], vec![Value::str("x")]);
        assert_eq!(rel.schema.name, "v");
    }

    #[test]
    fn empty_before_refresh() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let v = MaterializedView::new("v", def);
        assert!(v.is_empty());
    }

    #[test]
    fn delete_below_zero_then_insert_cancels() {
        // Regression: a retraction ahead of its insert used to be clamped
        // away, so the later insert made the tuple appear with net count
        // zero. Z-set semantics: -1 then +1 nets to nothing.
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        let (app, van) = v.apply_derivation_delta_diff(vec![(vec![Value::str("w")], -1)]);
        assert!(app.is_empty() && van.is_empty());
        assert_eq!(v.derivations(&vec![Value::str("w")]), -1);
        assert!(v.is_empty(), "negative counts are invisible");
        let (app, van) = v.apply_derivation_delta_diff(vec![(vec![Value::str("w")], 1)]);
        assert!(app.is_empty(), "net-zero tuple must not appear");
        assert!(van.is_empty());
        assert!(v.is_empty());
        assert_eq!(v.derivations(&vec![Value::str("w")]), 0);
    }

    #[test]
    fn negative_count_needs_full_repayment_to_appear() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        v.apply_derivation_delta(vec![(vec![Value::str("w")], -2)]);
        let (app, _) = v.apply_derivation_delta_diff(vec![(vec![Value::str("w")], 2)]);
        assert!(app.is_empty());
        // Only the third insert takes the count positive.
        let (app, _) = v.apply_derivation_delta_diff(vec![(vec![Value::str("w")], 1)]);
        assert_eq!(app, vec![vec![Value::str("w")]]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn duplicate_tuple_deltas_accumulate() {
        // Regression: repeated (tuple, +1) entries in one batch must sum,
        // and the set-level diff must report the tuple exactly once.
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        let (app, _) = v.apply_derivation_delta_diff(vec![
            (vec![Value::str("d")], 1),
            (vec![Value::str("d")], 1),
            (vec![Value::str("d")], 1),
        ]);
        assert_eq!(app, vec![vec![Value::str("d")]]);
        assert_eq!(v.derivations(&vec![Value::str("d")]), 3);
        // Retracting two of three copies keeps the tuple visible.
        let (_, van) = v.apply_derivation_delta_diff(vec![
            (vec![Value::str("d")], -1),
            (vec![Value::str("d")], -1),
        ]);
        assert!(van.is_empty());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn dataflow_view_matches_counting_view() {
        let mut c1 = base();
        let mut c2 = base();
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut counting = MaterializedView::new("v", def.clone());
        counting.refresh_full(&c1).unwrap();
        let mut flow = DataflowView::new("v", def, &c2).unwrap();
        assert_eq!(flow.as_relation().rows(), counting.as_relation().rows());
        let gram = Updategram {
            relation: "r".into(),
            insert: vec![vec!["4".into(), "z".into()]],
            delete: vec![vec!["3".into(), "y".into()]],
        };
        crate::updategram::maintain(
            &mut c1,
            &mut counting,
            std::slice::from_ref(&gram),
            Some(crate::updategram::MaintenanceChoice::Incremental),
        )
        .unwrap();
        let (app, van) = flow.apply_gram(&mut c2, &gram);
        assert_eq!(app, vec![vec![Value::str("z")]]);
        assert_eq!(van, vec![vec![Value::str("y")]]);
        assert_eq!(flow.as_relation().rows(), counting.as_relation().rows());
        assert_eq!(c1.get("r").unwrap().sorted().rows(), c2.get("r").unwrap().sorted().rows());
    }

    #[test]
    fn dataflow_view_ignores_unrelated_grams() {
        let mut c = base();
        c.create(RelSchema::text("t", &["z"]));
        let mut flow =
            DataflowView::new("v", parse_query("v(B) :- r(A, B)").unwrap(), &c).unwrap();
        let before = flow.as_relation();
        let work = flow.circuit().work;
        let (app, van) =
            flow.apply_gram(&mut c, &Updategram::inserts("t", vec![vec!["new".into()]]));
        assert!(app.is_empty() && van.is_empty());
        assert_eq!(flow.as_relation().rows(), before.rows());
        assert_eq!(flow.circuit().work, work, "unrelated gram must cost nothing");
        assert!(!flow.relations().contains("t"));
    }
}
