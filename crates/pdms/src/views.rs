//! Materialized views at peers (data placement).
//!
//! §3.1.2: "Our ultimate goal is to materialize the best views at each peer
//! to allow answering queries most efficiently ... in an environment where
//! the data sources are subject to update at any point, and hence view
//! updates can become expensive." A [`MaterializedView`] keeps derivation
//! *counts* per tuple (the counting algorithm for non-recursive views) so
//! the updategram machinery can maintain it incrementally under both
//! inserts and deletes.

use revere_query::eval::{eval_cq_bag, EvalError, Source};
use revere_query::ConjunctiveQuery;
use revere_storage::{RelSchema, Relation, Tuple};
use std::collections::HashMap;

/// A materialized conjunctive view with derivation counts.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// View name (also the relation name of [`MaterializedView::as_relation`]).
    pub name: String,
    /// Defining query.
    pub definition: ConjunctiveQuery,
    counts: HashMap<Tuple, i64>,
    schema: RelSchema,
    /// Full refreshes performed.
    pub refresh_count: usize,
    /// Incremental maintenance rounds applied.
    pub incremental_count: usize,
}

impl MaterializedView {
    /// Create an empty (unrefreshed) view.
    pub fn new(name: impl Into<String>, definition: ConjunctiveQuery) -> Self {
        let name = name.into();
        let attr_names: Vec<String> = definition
            .head
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                revere_query::Term::Var(v) => v.clone(),
                revere_query::Term::Const(_) => format!("c{i}"),
            })
            .collect();
        let schema = RelSchema::text(
            name.clone(),
            &attr_names.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        MaterializedView {
            name,
            definition,
            counts: HashMap::new(),
            schema,
            refresh_count: 0,
            incremental_count: 0,
        }
    }

    /// Recompute from scratch ("simply invalidating views and re-reading
    /// data" — the baseline the paper wants to avoid).
    pub fn refresh_full<S: Source>(&mut self, source: &S) -> Result<(), EvalError> {
        let bag = eval_cq_bag(&self.definition, source)?;
        self.counts.clear();
        for row in bag.into_rows() {
            *self.counts.entry(row).or_insert(0) += 1;
        }
        self.refresh_count += 1;
        Ok(())
    }

    /// Apply a signed delta of derivations (from the updategram machinery).
    /// Tuples whose count reaches zero vanish; negative counts indicate a
    /// maintenance bug and are clamped with a debug assertion.
    pub fn apply_derivation_delta(&mut self, rows: impl IntoIterator<Item = (Tuple, i64)>) {
        let _ = self.apply_derivation_delta_diff(rows);
    }

    /// Like [`MaterializedView::apply_derivation_delta`], but also report
    /// the *set-level* change: tuples that newly appeared and tuples that
    /// vanished. This is the view-side half of updategram propagation —
    /// the returned pair is exactly the updategram the view's consumers
    /// need.
    pub fn apply_derivation_delta_diff(
        &mut self,
        rows: impl IntoIterator<Item = (Tuple, i64)>,
    ) -> (Vec<Tuple>, Vec<Tuple>) {
        let mut appeared = Vec::new();
        let mut vanished = Vec::new();
        for (row, sign) in rows {
            let entry = self.counts.entry(row.clone()).or_insert(0);
            let before = *entry;
            *entry += sign;
            debug_assert!(*entry >= 0, "negative derivation count in view {}", self.name);
            if before <= 0 && *entry > 0 {
                appeared.push(row);
            } else if before > 0 && *entry <= 0 {
                vanished.push(row);
            }
        }
        self.counts.retain(|_, c| *c > 0);
        self.incremental_count += 1;
        // A tuple may transiently vanish then reappear within one batch;
        // cancel such pairs.
        appeared.sort();
        vanished.sort();
        let mut final_appeared = Vec::new();
        for a in appeared {
            if let Ok(pos) = vanished.binary_search(&a) {
                vanished.remove(pos);
            } else {
                final_appeared.push(a);
            }
        }
        (final_appeared, vanished)
    }

    /// The view's current contents (set semantics, sorted for determinism).
    pub fn as_relation(&self) -> Relation {
        let mut rows: Vec<Tuple> = self.counts.keys().cloned().collect();
        rows.sort();
        Relation::with_rows(self.schema.clone(), rows)
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the view holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Derivation count of one tuple (0 if absent).
    pub fn derivations(&self, row: &Tuple) -> i64 {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Total derivations across tuples.
    pub fn total_derivations(&self) -> i64 {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_query::parse_query;
    use revere_storage::{Catalog, Value};

    fn base() -> Catalog {
        let mut c = Catalog::new();
        let mut r = Relation::new(RelSchema::text("r", &["a", "b"]));
        r.insert(vec!["1".into(), "x".into()]);
        r.insert(vec!["2".into(), "x".into()]);
        r.insert(vec!["3".into(), "y".into()]);
        c.register(r);
        c
    }

    #[test]
    fn full_refresh_counts_derivations() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        v.refresh_full(&base()).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.derivations(&vec![Value::str("x")]), 2);
        assert_eq!(v.derivations(&vec![Value::str("y")]), 1);
        assert_eq!(v.total_derivations(), 3);
        assert_eq!(v.refresh_count, 1);
    }

    #[test]
    fn derivation_delta_add_and_remove() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        v.refresh_full(&base()).unwrap();
        // One derivation of "y" removed: tuple vanishes.
        v.apply_derivation_delta(vec![(vec![Value::str("y")], -1)]);
        assert_eq!(v.len(), 1);
        // One derivation of "x" removed: tuple survives (count 2 -> 1).
        v.apply_derivation_delta(vec![(vec![Value::str("x")], -1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.derivations(&vec![Value::str("x")]), 1);
        // New tuple appears.
        v.apply_derivation_delta(vec![(vec![Value::str("z")], 1)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.incremental_count, 3);
    }

    #[test]
    fn as_relation_is_sorted_and_deduped() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let mut v = MaterializedView::new("v", def);
        v.refresh_full(&base()).unwrap();
        let rel = v.as_relation();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.rows()[0], vec![Value::str("x")]);
        assert_eq!(rel.schema.name, "v");
    }

    #[test]
    fn empty_before_refresh() {
        let def = parse_query("v(B) :- r(A, B)").unwrap();
        let v = MaterializedView::new("v", def);
        assert!(v.is_empty());
    }
}
