//! Updategram propagation across peer mappings (§3.1.2, \[36\]).
//!
//! "Propagation of updates is also a major challenge in a PDMS: we would
//! prefer to make incremental updates versus simply invalidating views and
//! re-reading data. Piazza treats updates as first-class citizens ... in
//! the form of 'updategrams' \[36\]. Updategrams on base data can be
//! combined to create updategrams for views."
//!
//! [`propagate_through_mapping`] takes an updategram on a *source* peer's
//! base relation and translates it — through the mapping's GAV rule — into
//! an updategram on the mapping's virtual relation `m`, suitable for
//! shipping to the target side to maintain any cache of the translated
//! data there. The source catalog is updated in the process (the deltas
//! are computed incrementally, not by diffing recomputations).

use crate::updategram::{derivation_deltas, Updategram};
use crate::views::MaterializedView;
use revere_query::eval::EvalError;
use revere_query::glav::GlavMapping;
use revere_query::ConjunctiveQuery;
use revere_storage::Catalog;

/// Stateful propagator for one mapping edge: owns the materialized state
/// of the mapping's virtual relation on the source side, so successive
/// base updategrams yield *minimal* set-level updategrams for `m`.
#[derive(Debug)]
pub struct MappingPropagator {
    /// The mapping this propagator serves.
    pub mapping: GlavMapping,
    /// Materialized extension of the virtual relation (with counts).
    state: MaterializedView,
}

impl MappingPropagator {
    /// Initialize from the source peer's current data.
    pub fn new(mapping: GlavMapping, source_catalog: &Catalog) -> Result<Self, EvalError> {
        let gav = mapping.gav_rule();
        let definition = ConjunctiveQuery::new(gav.head.clone(), gav.body.clone());
        let mut state = MaterializedView::new(mapping.name.clone(), definition);
        state.refresh_full(source_catalog)?;
        Ok(MappingPropagator { mapping, state })
    }

    /// The virtual relation's current extension.
    pub fn current(&self) -> revere_storage::Relation {
        self.state.as_relation()
    }

    /// Apply a base-data updategram at the source peer and return the
    /// induced updategram on the mapping's virtual relation (empty if the
    /// change is invisible through the mapping). `source_catalog` is
    /// mutated (the gram is applied).
    pub fn propagate(
        &mut self,
        source_catalog: &mut Catalog,
        gram: &Updategram,
    ) -> Result<Updategram, EvalError> {
        let deltas = derivation_deltas(
            source_catalog,
            &self.state.definition.clone(),
            std::slice::from_ref(gram),
        )?;
        let (inserts, deletes) = self.state.apply_derivation_delta_diff(deltas);
        Ok(Updategram {
            relation: self.mapping.name.clone(),
            insert: inserts,
            delete: deletes,
        })
    }
}

/// One-shot convenience: propagate `gram` through `mapping` given the
/// source peer's catalog, returning the updategram on the virtual
/// relation. Builds a fresh propagator (O(source data)); use
/// [`MappingPropagator`] for repeated propagation.
pub fn propagate_through_mapping(
    mapping: &GlavMapping,
    source_catalog: &mut Catalog,
    gram: &Updategram,
) -> Result<Updategram, EvalError> {
    let mut p = MappingPropagator::new(mapping.clone(), source_catalog)?;
    p.propagate(source_catalog, gram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updategram::maintain;
    use revere_query::parse_query;
    use revere_storage::{RelSchema, Relation, Value};

    /// Berkeley's course data: the GAV rule joins course and teaches.
    fn source() -> Catalog {
        let mut course = Relation::new(RelSchema::text("B.course", &["id", "title"]));
        course.insert(vec!["c1".into(), "Databases".into()]);
        course.insert(vec!["c2".into(), "Rome".into()]);
        let mut teaches = Relation::new(RelSchema::text("B.teaches", &["prof", "id"]));
        teaches.insert(vec!["ada".into(), "c1".into()]);
        teaches.insert(vec!["bob".into(), "c2".into()]);
        let mut cat = Catalog::new();
        cat.register(course);
        cat.register(teaches);
        cat
    }

    fn mapping() -> GlavMapping {
        GlavMapping::parse(
            "m_bm",
            "B",
            "M",
            "m(T, P) :- B.course(C, T), B.teaches(P, C) ==> m(T, P) :- M.offering(T, P)",
        )
        .unwrap()
    }

    #[test]
    fn insert_propagates_as_virtual_insert() {
        let mut cat = source();
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        assert_eq!(p.current().len(), 2);
        // A new course + its teacher arrive at Berkeley.
        let grams = [
            Updategram::inserts("B.course", vec![vec!["c3".into(), "Greece".into()]]),
            Updategram::inserts("B.teaches", vec![vec!["eve".into(), "c3".into()]]),
        ];
        let out1 = p.propagate(&mut cat, &grams[0]).unwrap();
        // Course without teacher: nothing visible through the join yet.
        assert!(out1.insert.is_empty() && out1.delete.is_empty());
        let out2 = p.propagate(&mut cat, &grams[1]).unwrap();
        assert_eq!(out2.relation, "m_bm");
        assert_eq!(out2.insert, vec![vec![Value::str("Greece"), Value::str("eve")]]);
        assert!(out2.delete.is_empty());
        assert_eq!(p.current().len(), 3);
    }

    #[test]
    fn delete_propagates_as_virtual_delete() {
        let mut cat = source();
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        let gram = Updategram::deletes("B.teaches", vec![vec!["bob".into(), "c2".into()]]);
        let out = p.propagate(&mut cat, &gram).unwrap();
        assert_eq!(out.delete, vec![vec![Value::str("Rome"), Value::str("bob")]]);
        assert!(out.insert.is_empty());
        assert_eq!(p.current().len(), 1);
    }

    #[test]
    fn redundant_derivations_do_not_leak() {
        // Two teachers for one course: deleting one keeps the (title, prof)
        // pair for the other but only removes that teacher's pair.
        let mut cat = source();
        cat.get_mut("B.teaches")
            .unwrap()
            .insert(vec!["carol".into(), "c1".into()]);
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        assert_eq!(p.current().len(), 3);
        let gram = Updategram::deletes("B.teaches", vec![vec!["carol".into(), "c1".into()]]);
        let out = p.propagate(&mut cat, &gram).unwrap();
        assert_eq!(out.delete, vec![vec![Value::str("Databases"), Value::str("carol")]]);
        // Ada's pair survives.
        assert!(p
            .current()
            .contains(&vec![Value::str("Databases"), Value::str("ada")]));
    }

    #[test]
    fn propagated_gram_maintains_a_remote_cache() {
        // The full [36] pipeline: source update → virtual updategram →
        // incremental maintenance of a remote cached copy.
        let mut source_cat = source();
        let mut p = MappingPropagator::new(mapping(), &source_cat).unwrap();

        // Remote (target-side) cache of the virtual relation.
        let mut remote_cat = Catalog::new();
        remote_cat.register(p.current());
        let mut remote_view =
            MaterializedView::new("cache", parse_query("cache(T) :- m_bm(T, P)").unwrap());
        remote_view.refresh_full(&remote_cat).unwrap();
        assert_eq!(remote_view.len(), 2);

        // Source-side change.
        let gram = Updategram {
            relation: "B.course".into(),
            insert: vec![],
            delete: vec![vec!["c1".into(), "Databases".into()]],
        };
        let virtual_gram = p.propagate(&mut source_cat, &gram).unwrap();
        assert_eq!(virtual_gram.delete.len(), 1);

        // Ship it and maintain the remote cache incrementally.
        maintain(
            &mut remote_cat,
            &mut remote_view,
            std::slice::from_ref(&virtual_gram),
            Some(crate::updategram::MaintenanceChoice::Incremental),
        )
        .unwrap();
        assert_eq!(remote_view.len(), 1);
        assert!(remote_view
            .as_relation()
            .contains(&vec![Value::str("Rome")]));
    }

    #[test]
    fn one_shot_helper_matches_stateful() {
        let mut c1 = source();
        let mut c2 = source();
        let gram = Updategram::deletes("B.teaches", vec![vec!["bob".into(), "c2".into()]]);
        let a = propagate_through_mapping(&mapping(), &mut c1, &gram).unwrap();
        let mut p = MappingPropagator::new(mapping(), &c2).unwrap();
        let b = p.propagate(&mut c2, &gram).unwrap();
        assert_eq!(a.insert, b.insert);
        assert_eq!(a.delete, b.delete);
    }
}
