//! Updategram propagation across peer mappings (§3.1.2, \[36\]).
//!
//! "Propagation of updates is also a major challenge in a PDMS: we would
//! prefer to make incremental updates versus simply invalidating views and
//! re-reading data. Piazza treats updates as first-class citizens ... in
//! the form of 'updategrams' \[36\]. Updategrams on base data can be
//! combined to create updategrams for views."
//!
//! [`propagate_through_mapping`] takes an updategram on a *source* peer's
//! base relation and translates it — through the mapping's GAV rule — into
//! an updategram on the mapping's virtual relation `m`, suitable for
//! shipping to the target side to maintain any cache of the translated
//! data there. The source catalog is updated in the process (the deltas
//! are computed incrementally, not by diffing recomputations).
//!
//! # At-least-once shipping
//!
//! On a real network the shipped gram can be dropped, answered with a
//! transient error, or delivered twice. [`ReliableLink`] retries under a
//! [`RetryPolicy`] against a seeded [`FaultPlan`] (at-least-once), and the
//! receiver-side [`GramInbox`] deduplicates by gram id before applying
//! ([`apply_once`]) — so a dropped *or* duplicated delivery leaves the
//! remote cache exactly where a single clean delivery would.

use crate::updategram::{derivation_deltas, maintain, MaintenanceChoice, SequencedGram, Updategram};
use crate::views::{DataflowView, MaterializedView};
use revere_query::eval::EvalError;
use revere_query::glav::GlavMapping;
use revere_query::ConjunctiveQuery;
use revere_storage::wal::{Journal, Lsn, WalRecord};
use revere_storage::Catalog;
use revere_util::fault::{Fate, FaultPlan, RetryPolicy};
use revere_util::obs::{names, Obs};
use std::collections::{BTreeMap, BTreeSet};

/// Stateful propagator for one mapping edge: owns the materialized state
/// of the mapping's virtual relation on the source side, so successive
/// base updategrams yield *minimal* set-level updategrams for `m`.
#[derive(Debug)]
pub struct MappingPropagator {
    /// The mapping this propagator serves.
    pub mapping: GlavMapping,
    /// Materialized extension of the virtual relation (with counts).
    state: MaterializedView,
}

impl MappingPropagator {
    /// Initialize from the source peer's current data.
    pub fn new(mapping: GlavMapping, source_catalog: &Catalog) -> Result<Self, EvalError> {
        let gav = mapping.gav_rule();
        let definition = ConjunctiveQuery::new(gav.head.clone(), gav.body.clone());
        let mut state = MaterializedView::new(mapping.name.clone(), definition);
        state.refresh_full(source_catalog)?;
        Ok(MappingPropagator { mapping, state })
    }

    /// The virtual relation's current extension.
    pub fn current(&self) -> revere_storage::Relation {
        self.state.as_relation()
    }

    /// Apply a base-data updategram at the source peer and return the
    /// induced updategram on the mapping's virtual relation (empty if the
    /// change is invisible through the mapping). `source_catalog` is
    /// mutated (the gram is applied).
    pub fn propagate(
        &mut self,
        source_catalog: &mut Catalog,
        gram: &Updategram,
    ) -> Result<Updategram, EvalError> {
        let deltas = derivation_deltas(
            source_catalog,
            &self.state.definition.clone(),
            std::slice::from_ref(gram),
        )?;
        let (inserts, deletes) = self.state.apply_derivation_delta_diff(deltas);
        Ok(Updategram {
            relation: self.mapping.name.clone(),
            insert: inserts,
            delete: deletes,
        })
    }
}

/// Receiver-side dedup ledger: which gram ids this cache has already
/// applied. Makes delivery idempotent, so senders are free to re-deliver.
///
/// # Bounded memory
///
/// Link ids are assigned consecutively by [`ReliableLink::seal`], so the
/// ledger self-compacts: all ids below `watermark` are seen, and only the
/// (small, transient) set of out-of-order ids above it is stored. After N
/// in-order ship rounds the inbox holds a single integer, not N entries.
///
/// # Durability
///
/// An inbox built with [`GramInbox::durable`] carries the peer's
/// [`Journal`] and its link identity; [`apply_once`] then journals an
/// atomic [`WalRecord::DeltaApplied`] *before* applying, so a crash after
/// the apply replays it and a re-delivery after recovery is deduplicated
/// — exactly-once across restarts.
#[derive(Debug, Default)]
pub struct GramInbox {
    /// All ids strictly below this are seen (the compacted prefix).
    watermark: u64,
    /// Seen ids at or above the watermark (out-of-order arrivals).
    above: BTreeSet<u64>,
    /// Deliveries ignored because their id had already been applied.
    pub duplicates_ignored: usize,
    /// Distinct ids applied (monotone; survives compaction).
    applied: usize,
    /// Durable identity: (link name, journal) when restart-safe.
    durability: Option<(String, Journal)>,
}

impl GramInbox {
    /// An empty, in-memory-only inbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty inbox whose applications are journaled under `link` (use
    /// one stable name per incoming link, e.g. the source peer's name).
    pub fn durable(link: impl Into<String>, journal: Journal) -> Self {
        GramInbox { durability: Some((link.into(), journal)), ..Self::default() }
    }

    /// Rebuild an inbox from recovered state (crate-internal: used by
    /// [`crate::durable::recover`]).
    pub(crate) fn restore(
        watermark: u64,
        above: BTreeSet<u64>,
        duplicates_ignored: usize,
        applied: usize,
        durability: Option<(String, Journal)>,
    ) -> Self {
        GramInbox { watermark, above, duplicates_ignored, applied, durability }
    }

    /// True when `id` was already accepted.
    pub fn is_seen(&self, id: u64) -> bool {
        id < self.watermark || self.above.contains(&id)
    }

    /// Record `id`; returns `true` exactly the first time it is seen.
    pub fn accept(&mut self, id: u64) -> bool {
        if self.is_seen(id) {
            self.duplicates_ignored += 1;
            return false;
        }
        self.above.insert(id);
        self.applied += 1;
        // Compact: swallow the contiguous run into the watermark.
        while self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
        true
    }

    /// Distinct gram ids applied so far.
    pub fn applied_count(&self) -> usize {
        self.applied
    }

    /// The compaction watermark: every id below it is seen.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// How many ids the ledger currently stores explicitly — the memory
    /// bound the compaction maintains (0 once delivery catches up).
    pub fn tracked_ids(&self) -> usize {
        self.above.len()
    }

    /// Out-of-order seen ids at or above the watermark (for snapshots).
    pub(crate) fn above(&self) -> &BTreeSet<u64> {
        &self.above
    }

    /// The durable link identity, if any.
    pub fn link(&self) -> Option<&str> {
        self.durability.as_ref().map(|(l, _)| l.as_str())
    }
}

/// Apply a sequenced gram to a target-side cache **exactly once**: a gram
/// id the inbox has already seen is a no-op (`Ok(false)`). First-time
/// grams maintain the cached view incrementally.
///
/// For a durable inbox the gram is journaled as one atomic
/// [`WalRecord::DeltaApplied`] *before* applying; the catalog's own
/// journal is suspended for the application so the deltas are not
/// journaled twice (replaying both the `DeltaApplied` and the per-row
/// records would double-apply).
pub fn apply_once(
    inbox: &mut GramInbox,
    catalog: &mut Catalog,
    view: &mut MaterializedView,
    gram: &SequencedGram,
) -> Result<bool, EvalError> {
    if inbox.is_seen(gram.id) {
        inbox.duplicates_ignored += 1;
        return Ok(false);
    }
    if let Some((link, journal)) = &inbox.durability {
        journal.append(&WalRecord::DeltaApplied {
            link: link.clone(),
            id: gram.id,
            relation: gram.gram.relation.clone(),
            insert: gram.gram.insert.clone(),
            delete: gram.gram.delete.clone(),
        });
        let suspended = catalog.detach_journal();
        let result = maintain(
            catalog,
            view,
            std::slice::from_ref(&gram.gram),
            Some(MaintenanceChoice::Incremental),
        );
        if let Some(j) = suspended {
            catalog.attach_journal(j);
        }
        result?;
    } else {
        maintain(
            catalog,
            view,
            std::slice::from_ref(&gram.gram),
            Some(MaintenanceChoice::Incremental),
        )?;
    }
    let accepted = inbox.accept(gram.id);
    debug_assert!(accepted);
    Ok(true)
}

/// [`apply_once`] for a circuit-backed [`DataflowView`]: identical
/// exactly-once structure — dedup by inbox, atomic
/// [`WalRecord::DeltaApplied`] journaled *before* applying on durable
/// inboxes, catalog journal suspended during the apply — but the view is
/// maintained by pushing the gram's delta batch through the circuit
/// instead of re-evaluating delta queries. Subscriptions inherit the
/// E12/E16 delivery guarantees by construction.
pub fn apply_once_dataflow(
    inbox: &mut GramInbox,
    catalog: &mut Catalog,
    view: &mut DataflowView,
    gram: &SequencedGram,
) -> Result<bool, EvalError> {
    if inbox.is_seen(gram.id) {
        inbox.duplicates_ignored += 1;
        return Ok(false);
    }
    if let Some((link, journal)) = &inbox.durability {
        journal.append(&WalRecord::DeltaApplied {
            link: link.clone(),
            id: gram.id,
            relation: gram.gram.relation.clone(),
            insert: gram.gram.insert.clone(),
            delete: gram.gram.delete.clone(),
        });
        let suspended = catalog.detach_journal();
        view.apply_gram(catalog, &gram.gram);
        if let Some(j) = suspended {
            catalog.attach_journal(j);
        }
    } else {
        view.apply_gram(catalog, &gram.gram);
    }
    let accepted = inbox.accept(gram.id);
    debug_assert!(accepted);
    Ok(true)
}

/// Delivery accounting for one [`ReliableLink`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Grams handed to the link.
    pub shipped: usize,
    /// Grams whose delivery was acknowledged within the retry budget.
    pub delivered: usize,
    /// Grams still unacknowledged after the retry budget (re-ship later).
    pub unacknowledged: usize,
    /// Messages sent (requests + responses, including lost ones).
    pub messages: usize,
    /// Send attempts beyond each first try.
    pub retries: usize,
    /// Requests lost in flight.
    pub dropped: usize,
    /// Extra copies the network delivered (then deduped by the inbox).
    pub duplicated: usize,
}

/// Result of one [`ReliableLink::ship`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The gram's id on this link.
    pub id: u64,
    /// True when an acknowledgement came back (the sender may stop).
    pub acknowledged: bool,
    /// True when the receiver applied the gram this round (false for
    /// pure duplicates of an earlier round).
    pub applied: bool,
}

/// Sender side of at-least-once updategram shipping over a faulty
/// channel: retries each gram until acknowledged or the retry budget is
/// spent, and leans on the receiver's [`GramInbox`] to make the inevitable
/// duplicates harmless.
#[derive(Debug)]
pub struct ReliableLink {
    /// The network weather this link ships through.
    pub plan: FaultPlan,
    /// Retry budget per [`ReliableLink::ship`] call.
    pub retry: RetryPolicy,
    /// Name of the receiving peer (keys the fault plan).
    pub target: String,
    /// Delivery accounting.
    pub stats: LinkStats,
    /// Observability handle: one `pdms.ship` span per [`ReliableLink::ship`]
    /// round plus `pdms.ship.*` counters when enabled (default disabled).
    /// Enabling it never changes delivery behavior.
    pub obs: Obs,
    next_id: u64,
    epoch: u64,
    /// Sender-side journal: seals and acks are logged so unacknowledged
    /// grams survive a sender restart. `None` for in-memory links.
    journal: Option<Journal>,
    /// Sealed-but-unacknowledged grams: id → LSN of the seal record. The
    /// minimum LSN here is the link's truncation floor (an unacked gram's
    /// seal record must survive checkpoints; it is the only copy).
    unacked: BTreeMap<u64, Lsn>,
}

impl ReliableLink {
    /// A link to `target` under `plan`, with the default retry policy.
    pub fn new(target: impl Into<String>, plan: FaultPlan) -> Self {
        ReliableLink {
            plan,
            retry: RetryPolicy::default(),
            target: target.into(),
            stats: LinkStats::default(),
            obs: Obs::disabled(),
            next_id: 0,
            epoch: 0,
            journal: None,
            unacked: BTreeMap::new(),
        }
    }

    /// A restart-safe link: every seal and ack is journaled, so the
    /// sender recovers its unacknowledged grams after a crash.
    pub fn durable(target: impl Into<String>, plan: FaultPlan, journal: Journal) -> Self {
        ReliableLink { journal: Some(journal), ..Self::new(target, plan) }
    }

    /// Rebuild a link from recovered outbox state (crate-internal: used
    /// by [`crate::durable::recover`] consumers). Does not re-journal.
    pub(crate) fn restore(
        target: impl Into<String>,
        plan: FaultPlan,
        journal: Journal,
        next_id: u64,
        unacked: BTreeMap<u64, Lsn>,
    ) -> Self {
        ReliableLink { journal: Some(journal), next_id, unacked, ..Self::new(target, plan) }
    }

    /// Stamp a gram with this link's next delivery id. Sealing is
    /// separate from shipping so an unacknowledged gram can be re-shipped
    /// *under the same id* — the at-least-once contract. On a durable
    /// link the seal is journaled before it is handed back: a sealed gram
    /// is *owed* to the target until acknowledged, even across a crash.
    pub fn seal(&mut self, gram: Updategram) -> SequencedGram {
        let id = self.next_id;
        self.next_id += 1;
        if let Some(j) = &self.journal {
            let lsn = j.append(&WalRecord::DeltaSealed {
                link: self.target.clone(),
                id,
                relation: gram.relation.clone(),
                insert: gram.insert.clone(),
                delete: gram.delete.clone(),
            });
            self.unacked.insert(id, lsn);
        }
        gram.sequenced(id)
    }

    /// The smallest LSN this link still needs retained in the log (the
    /// oldest unacknowledged seal record). `None` when fully acknowledged.
    pub fn truncation_floor(&self) -> Option<Lsn> {
        self.unacked.values().min().copied()
    }

    /// Ids sealed but not yet acknowledged, in order.
    pub fn pending_ids(&self) -> Vec<u64> {
        self.unacked.keys().copied().collect()
    }

    /// The id the next [`ReliableLink::seal`] will assign (checkpointed
    /// so a restarted sender never reuses a delivery id).
    pub fn next_seal_id(&self) -> u64 {
        self.next_id
    }

    /// Ship one sealed gram: up to `retry.attempts()` sends, each with an
    /// independently drawn fate. A `Flaky` fate models a lost
    /// acknowledgement — the receiver applies, the sender keeps retrying,
    /// and the duplicate is absorbed by the inbox. Returns whether an ack
    /// arrived; call again with the same gram to keep trying.
    pub fn ship(
        &mut self,
        gram: &SequencedGram,
        inbox: &mut GramInbox,
        catalog: &mut Catalog,
        view: &mut MaterializedView,
    ) -> Result<Delivery, EvalError> {
        self.ship_with(gram, |g| apply_once(inbox, catalog, view, g))
    }

    /// [`ReliableLink::ship`] for a circuit-backed [`DataflowView`]
    /// receiver: same weather, same accounting, deliveries routed through
    /// [`apply_once_dataflow`].
    pub fn ship_dataflow(
        &mut self,
        gram: &SequencedGram,
        inbox: &mut GramInbox,
        catalog: &mut Catalog,
        view: &mut DataflowView,
    ) -> Result<Delivery, EvalError> {
        self.ship_with(gram, |g| apply_once_dataflow(inbox, catalog, view, g))
    }

    /// The fate-draw core of shipping, generic over the receiver:
    /// `deliver` is invoked once per copy the network actually lands (it
    /// must be idempotent — both [`apply_once`] flavors are, via the
    /// inbox) and returns whether this copy was applied (vs deduplicated).
    pub fn ship_with(
        &mut self,
        gram: &SequencedGram,
        mut deliver: impl FnMut(&SequencedGram) -> Result<bool, EvalError>,
    ) -> Result<Delivery, EvalError> {
        self.stats.shipped += 1;
        self.epoch += 1;
        let key = format!("gram:{}:epoch:{}", gram.id, self.epoch);
        let span = self.obs.span("pdms.ship");
        if span.is_recording() {
            span.set("gram", gram.id.to_string());
            span.set("target", self.target.clone());
        }
        // Baselines so the span reports this round's cost, not lifetime
        // totals (the `LinkStats` fields are cumulative).
        let (messages0, dropped0, retries0, duplicated0) = (
            self.stats.messages,
            self.stats.dropped,
            self.stats.retries,
            self.stats.duplicated,
        );
        let mut attempts_used: u32 = 0;
        let mut applied = false;
        let mut acknowledged = false;
        for attempt in 0..self.retry.attempts() {
            attempts_used += 1;
            if attempt > 0 {
                self.stats.retries += 1;
            }
            if self.plan.is_down(&self.target) {
                self.stats.messages += 1;
                self.stats.dropped += 1;
                continue;
            }
            match self.plan.fate(&self.target, &key, attempt) {
                Fate::Dropped => {
                    self.stats.messages += 1;
                    self.stats.dropped += 1;
                }
                Fate::Flaky => {
                    // Delivered, but the ack is lost: the receiver applies
                    // (idempotently), the sender cannot tell and retries.
                    self.stats.messages += 2;
                    if deliver(gram)? {
                        applied = true;
                    } else {
                        self.stats.duplicated += 1;
                    }
                }
                Fate::Delivered { .. } => {
                    self.stats.messages += 2;
                    if deliver(gram)? {
                        applied = true;
                    } else {
                        self.stats.duplicated += 1;
                    }
                    if self.plan.duplicates(&self.target, &key) {
                        // The network hiccups a second copy; the inbox
                        // swallows it.
                        self.stats.messages += 1;
                        self.stats.duplicated += 1;
                        deliver(gram)?;
                    }
                    acknowledged = true;
                    break;
                }
            }
        }
        if acknowledged {
            self.stats.delivered += 1;
            // Journal the ack (once): the seal record becomes truncatable
            // at the next checkpoint.
            if self.journal.is_some() && self.unacked.remove(&gram.id).is_some() {
                if let Some(j) = &self.journal {
                    j.append(&WalRecord::DeltaAcked {
                        link: self.target.clone(),
                        id: gram.id,
                    });
                }
            }
        } else {
            self.stats.unacknowledged += 1;
        }
        if span.is_recording() {
            span.set("attempts", attempts_used.to_string());
            span.set("messages", (self.stats.messages - messages0).to_string());
            span.set("dropped", (self.stats.dropped - dropped0).to_string());
            span.set("retries", (self.stats.retries - retries0).to_string());
            span.set("duplicated", (self.stats.duplicated - duplicated0).to_string());
            span.set("acknowledged", acknowledged.to_string());
            span.set("applied", applied.to_string());
        }
        self.obs.inc(names::PDMS_SHIP_MESSAGES_SENT, (self.stats.messages - messages0) as u64);
        self.obs.inc(names::PDMS_SHIP_MESSAGES_DROPPED, (self.stats.dropped - dropped0) as u64);
        self.obs.inc(names::PDMS_SHIP_RETRIES_SPENT, (self.stats.retries - retries0) as u64);
        self.obs.inc(names::PDMS_SHIP_MESSAGES_DUPLICATED, (self.stats.duplicated - duplicated0) as u64);
        self.obs.observe(names::PDMS_SHIP_ATTEMPTS_SPENT, attempts_used as u64);
        Ok(Delivery { id: gram.id, acknowledged, applied })
    }

    /// Ship and keep re-shipping (fresh fate draws each round) until
    /// acknowledged or `max_rounds` is exhausted. At-least-once: under any
    /// plan with a nonzero delivery probability this converges.
    pub fn ship_until_acknowledged(
        &mut self,
        gram: &SequencedGram,
        inbox: &mut GramInbox,
        catalog: &mut Catalog,
        view: &mut MaterializedView,
        max_rounds: u32,
    ) -> Result<Delivery, EvalError> {
        let mut last = Delivery { id: gram.id, acknowledged: false, applied: false };
        for _ in 0..max_rounds.max(1) {
            let d = self.ship(gram, inbox, catalog, view)?;
            last.applied |= d.applied;
            last.acknowledged = d.acknowledged;
            if d.acknowledged {
                break;
            }
        }
        Ok(last)
    }
}

/// One-shot convenience: propagate `gram` through `mapping` given the
/// source peer's catalog, returning the updategram on the virtual
/// relation. Builds a fresh propagator (O(source data)); use
/// [`MappingPropagator`] for repeated propagation.
pub fn propagate_through_mapping(
    mapping: &GlavMapping,
    source_catalog: &mut Catalog,
    gram: &Updategram,
) -> Result<Updategram, EvalError> {
    let mut p = MappingPropagator::new(mapping.clone(), source_catalog)?;
    p.propagate(source_catalog, gram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updategram::maintain;
    use revere_query::parse_query;
    use revere_storage::{RelSchema, Relation, Value};

    /// Berkeley's course data: the GAV rule joins course and teaches.
    fn source() -> Catalog {
        let mut course = Relation::new(RelSchema::text("B.course", &["id", "title"]));
        course.insert(vec!["c1".into(), "Databases".into()]);
        course.insert(vec!["c2".into(), "Rome".into()]);
        let mut teaches = Relation::new(RelSchema::text("B.teaches", &["prof", "id"]));
        teaches.insert(vec!["ada".into(), "c1".into()]);
        teaches.insert(vec!["bob".into(), "c2".into()]);
        let mut cat = Catalog::new();
        cat.register(course);
        cat.register(teaches);
        cat
    }

    fn mapping() -> GlavMapping {
        GlavMapping::parse(
            "m_bm",
            "B",
            "M",
            "m(T, P) :- B.course(C, T), B.teaches(P, C) ==> m(T, P) :- M.offering(T, P)",
        )
        .unwrap()
    }

    #[test]
    fn insert_propagates_as_virtual_insert() {
        let mut cat = source();
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        assert_eq!(p.current().len(), 2);
        // A new course + its teacher arrive at Berkeley.
        let grams = [
            Updategram::inserts("B.course", vec![vec!["c3".into(), "Greece".into()]]),
            Updategram::inserts("B.teaches", vec![vec!["eve".into(), "c3".into()]]),
        ];
        let out1 = p.propagate(&mut cat, &grams[0]).unwrap();
        // Course without teacher: nothing visible through the join yet.
        assert!(out1.insert.is_empty() && out1.delete.is_empty());
        let out2 = p.propagate(&mut cat, &grams[1]).unwrap();
        assert_eq!(out2.relation, "m_bm");
        assert_eq!(out2.insert, vec![vec![Value::str("Greece"), Value::str("eve")]]);
        assert!(out2.delete.is_empty());
        assert_eq!(p.current().len(), 3);
    }

    #[test]
    fn delete_propagates_as_virtual_delete() {
        let mut cat = source();
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        let gram = Updategram::deletes("B.teaches", vec![vec!["bob".into(), "c2".into()]]);
        let out = p.propagate(&mut cat, &gram).unwrap();
        assert_eq!(out.delete, vec![vec![Value::str("Rome"), Value::str("bob")]]);
        assert!(out.insert.is_empty());
        assert_eq!(p.current().len(), 1);
    }

    #[test]
    fn redundant_derivations_do_not_leak() {
        // Two teachers for one course: deleting one keeps the (title, prof)
        // pair for the other but only removes that teacher's pair.
        let mut cat = source();
        cat.get_mut("B.teaches")
            .unwrap()
            .insert(vec!["carol".into(), "c1".into()]);
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        assert_eq!(p.current().len(), 3);
        let gram = Updategram::deletes("B.teaches", vec![vec!["carol".into(), "c1".into()]]);
        let out = p.propagate(&mut cat, &gram).unwrap();
        assert_eq!(out.delete, vec![vec![Value::str("Databases"), Value::str("carol")]]);
        // Ada's pair survives.
        assert!(p
            .current()
            .contains(&vec![Value::str("Databases"), Value::str("ada")]));
    }

    #[test]
    fn propagated_gram_maintains_a_remote_cache() {
        // The full [36] pipeline: source update → virtual updategram →
        // incremental maintenance of a remote cached copy.
        let mut source_cat = source();
        let mut p = MappingPropagator::new(mapping(), &source_cat).unwrap();

        // Remote (target-side) cache of the virtual relation.
        let mut remote_cat = Catalog::new();
        remote_cat.register(p.current());
        let mut remote_view =
            MaterializedView::new("cache", parse_query("cache(T) :- m_bm(T, P)").unwrap());
        remote_view.refresh_full(&remote_cat).unwrap();
        assert_eq!(remote_view.len(), 2);

        // Source-side change.
        let gram = Updategram {
            relation: "B.course".into(),
            insert: vec![],
            delete: vec![vec!["c1".into(), "Databases".into()]],
        };
        let virtual_gram = p.propagate(&mut source_cat, &gram).unwrap();
        assert_eq!(virtual_gram.delete.len(), 1);

        // Ship it and maintain the remote cache incrementally.
        maintain(
            &mut remote_cat,
            &mut remote_view,
            std::slice::from_ref(&virtual_gram),
            Some(crate::updategram::MaintenanceChoice::Incremental),
        )
        .unwrap();
        assert_eq!(remote_view.len(), 1);
        assert!(remote_view
            .as_relation()
            .contains(&vec![Value::str("Rome")]));
    }

    /// Target-side cache of the virtual relation, as in the [36] pipeline.
    fn remote_cache(p: &MappingPropagator) -> (Catalog, MaterializedView) {
        let mut remote_cat = Catalog::new();
        remote_cat.register(p.current());
        let mut remote_view =
            MaterializedView::new("cache", parse_query("cache(T, P) :- m_bm(T, P)").unwrap());
        remote_view.refresh_full(&remote_cat).unwrap();
        (remote_cat, remote_view)
    }

    #[test]
    fn duplicated_delivery_applies_exactly_once() {
        let mut cat = source();
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        let (mut remote_cat, mut remote_view) = remote_cache(&p);
        assert_eq!(remote_view.len(), 2);

        // New course + teacher at the source: the second base gram makes
        // one row visible through the mapping's join.
        p.propagate(&mut cat, &Updategram::inserts("B.course", vec![vec!["c3".into(), "Greece".into()]]))
            .unwrap();
        let virtual_gram = p
            .propagate(&mut cat, &Updategram::inserts("B.teaches", vec![vec!["eve".into(), "c3".into()]]))
            .unwrap();
        assert_eq!(virtual_gram.insert.len(), 1);
        let mut link = ReliableLink::new("M", FaultPlan::zero());
        let mut inbox = GramInbox::new();
        let sealed = link.seal(virtual_gram);

        // Deliver the SAME sealed gram twice: second copy is a no-op.
        let first = link.ship(&sealed, &mut inbox, &mut remote_cat, &mut remote_view).unwrap();
        let second = link.ship(&sealed, &mut inbox, &mut remote_cat, &mut remote_view).unwrap();
        assert!(first.acknowledged && first.applied);
        assert!(second.acknowledged && !second.applied);
        assert_eq!(inbox.duplicates_ignored, 1);
        assert_eq!(inbox.applied_count(), 1);
        assert_eq!(link.stats.duplicated, 1);
        // Cache state is what ONE application produces.
        let mut fresh = MaterializedView::new("chk", remote_view.definition.clone());
        fresh.refresh_full(&remote_cat).unwrap();
        assert_eq!(remote_view.as_relation().rows(), fresh.as_relation().rows());
    }

    #[test]
    fn lossy_link_converges_to_the_clean_state() {
        // Ship every virtual gram over a very lossy, duplicating link; the
        // remote cache must end up exactly where clean delivery ends up.
        let mut cat = source();
        let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
        let (mut remote_cat, mut remote_view) = remote_cache(&p);

        let plan = FaultPlan::new(revere_util::fault::FaultSpec {
            seed: 1003,
            drop_prob: 0.5,
            flaky_prob: 0.3,
            duplicate_prob: 0.5,
            ..Default::default()
        });
        let mut link = ReliableLink::new("M", plan);
        let mut inbox = GramInbox::new();

        let base_grams = [
            Updategram::inserts("B.course", vec![vec!["c3".into(), "Greece".into()]]),
            Updategram::inserts("B.teaches", vec![vec!["eve".into(), "c3".into()]]),
            Updategram::deletes("B.teaches", vec![vec!["bob".into(), "c2".into()]]),
        ];
        for g in base_grams {
            let virtual_gram = p.propagate(&mut cat, &g).unwrap();
            let sealed = link.seal(virtual_gram);
            let d = link
                .ship_until_acknowledged(&sealed, &mut inbox, &mut remote_cat, &mut remote_view, 64)
                .unwrap();
            assert!(d.acknowledged, "lossy link failed to deliver in 64 rounds");
        }
        // Converged: remote cache == current virtual extension.
        let mut want = Catalog::new();
        want.register(p.current());
        let mut fresh = MaterializedView::new("chk", remote_view.definition.clone());
        fresh.refresh_full(&want).unwrap();
        assert_eq!(remote_view.as_relation().rows(), fresh.as_relation().rows());
        // The weather actually did something, and we rode it out.
        assert!(link.stats.dropped > 0 || link.stats.duplicated > 0, "{:?}", link.stats);
        assert_eq!(link.stats.delivered, 3);
    }

    #[test]
    fn link_replay_is_deterministic_per_seed() {
        let run = || {
            let mut cat = source();
            let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
            let (mut remote_cat, mut remote_view) = remote_cache(&p);
            let plan = FaultPlan::new(revere_util::fault::FaultSpec {
                seed: 7,
                drop_prob: 0.4,
                duplicate_prob: 0.4,
                ..Default::default()
            });
            let mut link = ReliableLink::new("M", plan);
            let mut inbox = GramInbox::new();
            let vg = p
                .propagate(&mut cat, &Updategram::deletes("B.teaches", vec![vec!["bob".into(), "c2".into()]]))
                .unwrap();
            let sealed = link.seal(vg);
            link.ship_until_acknowledged(&sealed, &mut inbox, &mut remote_cat, &mut remote_view, 32)
                .unwrap();
            (link.stats.clone(), remote_view.as_relation().rows().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn instrumented_link_ships_identically_and_records_spans() {
        let run = |obs: Obs| {
            let mut cat = source();
            let mut p = MappingPropagator::new(mapping(), &cat).unwrap();
            let (mut remote_cat, mut remote_view) = remote_cache(&p);
            let plan = FaultPlan::new(revere_util::fault::FaultSpec {
                seed: 7,
                drop_prob: 0.4,
                duplicate_prob: 0.4,
                ..Default::default()
            });
            let mut link = ReliableLink::new("M", plan);
            link.obs = obs;
            let mut inbox = GramInbox::new();
            let vg = p
                .propagate(&mut cat, &Updategram::deletes("B.teaches", vec![vec!["bob".into(), "c2".into()]]))
                .unwrap();
            let sealed = link.seal(vg);
            link.ship_until_acknowledged(&sealed, &mut inbox, &mut remote_cat, &mut remote_view, 32)
                .unwrap();
            (link.stats.clone(), remote_view.as_relation().rows().to_vec())
        };
        let plain = run(Obs::disabled());
        let obs = Obs::enabled();
        let traced = run(obs.clone());
        // The contract: observability never changes delivery behavior.
        assert_eq!(plain, traced);

        let spans = obs.tracer().unwrap().spans();
        assert!(!spans.is_empty(), "no pdms.ship spans recorded");
        assert!(spans.iter().all(|s| s.name == "pdms.ship"));
        // Per-round message accounting in span args sums to the link total.
        let messages: usize = spans
            .iter()
            .map(|s| s.arg("messages").unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(messages, traced.0.messages);
        let last = spans.last().unwrap();
        assert_eq!(last.arg("acknowledged").as_deref(), Some("true"));
        assert_eq!(last.arg("target").as_deref(), Some("M"));
        let metrics = obs.metrics().unwrap();
        assert_eq!(metrics.counter(names::PDMS_SHIP_MESSAGES_SENT), traced.0.messages as u64);
        assert_eq!(metrics.counter(names::PDMS_SHIP_MESSAGES_DROPPED), traced.0.dropped as u64);
    }

    #[test]
    fn one_shot_helper_matches_stateful() {
        let mut c1 = source();
        let mut c2 = source();
        let gram = Updategram::deletes("B.teaches", vec![vec!["bob".into(), "c2".into()]]);
        let a = propagate_through_mapping(&mapping(), &mut c1, &gram).unwrap();
        let mut p = MappingPropagator::new(mapping(), &c2).unwrap();
        let b = p.propagate(&mut c2, &gram).unwrap();
        assert_eq!(a.insert, b.insert);
        assert_eq!(a.delete, b.delete);
    }
}
