//! Peer-level durability: checkpoint a peer's state to simulated stable
//! storage and recover it after a crash.
//!
//! The paper's peers "can join or leave at will" (§3.1). The
//! [`crate::propagation`] layer already makes *transient* faults
//! survivable (retry + dedup); this module makes *restarts* survivable.
//! A peer's stable storage is a [`PeerDisk`]: a [`Journal`] (the
//! append-only WAL from `revere_storage::wal`) plus at most one *peer
//! image* — a snapshot of catalog, inbox watermarks, and outbox
//! sequence counters taken at a known LSN. Recovery is image + replay of
//! the LSN suffix, never a full-history replay.
//!
//! # Exactly-once across restarts
//!
//! Three records make updategram delivery exactly-once across crashes on
//! either end of a link:
//!
//! * the **receiver** journals [`WalRecord::DeltaApplied`] *before*
//!   applying (see [`crate::propagation::apply_once`]): a crash after the
//!   apply replays it; a re-delivery after recovery hits the restored
//!   inbox watermark and is ignored;
//! * the **sender** journals [`WalRecord::DeltaSealed`] when it stamps a
//!   gram: the gram is *owed* until acknowledged, and a restarted sender
//!   re-ships it under the same id (the receiver dedups);
//! * the sender journals [`WalRecord::DeltaAcked`] when the ack arrives,
//!   which releases the seal record for truncation.
//!
//! # Truncation protocol
//!
//! [`checkpoint`] writes a fresh image at `as_of = next LSN`, then
//! truncates the log below `min(as_of, every link's truncation floor)`.
//! The floor of a link is the LSN of its oldest unacknowledged seal —
//! that record is the *only* copy of a gram still owed to a downstream
//! peer, so it must survive checkpoints until the ack comes back. Once
//! all downstream peers have acknowledged, the log shrinks to (at most)
//! the post-image suffix: acknowledged history is garbage.

use crate::propagation::{GramInbox, ReliableLink};
use crate::updategram::Updategram;
use crate::SequencedGram;
use revere_storage::wal::{
    crc32, decode_catalog, encode_catalog, put_str, put_u32, put_u64, Journal, Lsn, Reader, Wal,
    WalRecord,
};
use revere_storage::Catalog;
use revere_util::fault::FaultPlan;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

const IMAGE_MAGIC: &[u8; 4] = b"RVPI";
const IMAGE_VERSION: u32 = 1;

/// A peer's simulated stable storage: the change log plus at most one
/// peer image. Cloning shares the underlying storage (it is the same
/// "disk"), which is what lets the test harness keep a handle across a
/// simulated crash: the in-memory peer is dropped, the `PeerDisk`
/// survives, and [`recover`] rebuilds the peer from it.
#[derive(Debug, Clone, Default)]
pub struct PeerDisk {
    image: Arc<Mutex<Option<Vec<u8>>>>,
    journal: Journal,
}

impl PeerDisk {
    /// An empty disk: no image, an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the disk's change log. Attach it to the peer's catalog
    /// ([`Catalog::attach_journal`]) and durable inbox/links.
    pub fn journal(&self) -> Journal {
        self.journal.clone()
    }

    fn with_image<T>(&self, f: impl FnOnce(&mut Option<Vec<u8>>) -> T) -> T {
        f(&mut self.image.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// The current peer image, if a checkpoint has been taken.
    pub fn image_bytes(&self) -> Option<Vec<u8>> {
        self.with_image(|i| i.clone())
    }

    /// Size of the peer image in bytes (0 when none).
    pub fn image_len(&self) -> usize {
        self.with_image(|i| i.as_ref().map_or(0, Vec::len))
    }

    /// Size of the change log in bytes.
    pub fn log_len(&self) -> usize {
        self.journal.byte_len()
    }

    /// Total stable bytes (image + log) — the numerator of the E16
    /// write-amplification metric.
    pub fn stable_len(&self) -> usize {
        self.image_len() + self.log_len()
    }

    /// Corrupt the tail of the log in place: keep only the first `keep`
    /// bytes. Models a torn write at crash time; [`recover`] must come
    /// back with the clean prefix.
    pub fn tear_log(&self, keep: usize) {
        let bytes = self.journal.bytes();
        let cut = keep.min(bytes.len());
        let (wal, _) = Wal::open(&bytes[..cut]);
        self.journal.replace(wal);
    }
}

/// What one [`checkpoint`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Exclusive LSN high-water mark of the image: every record below it
    /// is reflected in the image.
    pub as_of: Lsn,
    /// The truncation floor actually used (≤ `as_of`; lower when a link
    /// still holds unacknowledged seal records).
    pub floor: Lsn,
    /// Log records dropped by the truncation.
    pub truncated: usize,
    /// Log records retained *below* `as_of` solely for unacknowledged
    /// grams (0 once every downstream peer has acknowledged).
    pub retained_for_acks: usize,
    /// Size of the image written, in bytes.
    pub image_bytes: usize,
    /// Size of the log after truncation, in bytes.
    pub log_bytes: usize,
}

/// Checkpoint a peer: write a fresh image capturing `catalog`, the
/// `inboxes`' dedup watermarks, and the `links`' sequence counters, then
/// truncate the log below every link's truncation floor (see the module
/// docs). Flushes any pending [`Catalog::get_mut`] re-journal first, so
/// the image + suffix is self-contained.
pub fn checkpoint(
    disk: &PeerDisk,
    catalog: &mut Catalog,
    inboxes: &[&GramInbox],
    links: &[&ReliableLink],
) -> CheckpointReport {
    catalog.flush_journal();
    let as_of = disk.journal.next_lsn();
    let image = encode_peer_image(catalog, as_of, inboxes, links);
    let floor = links
        .iter()
        .filter_map(|l| l.truncation_floor())
        .min()
        .unwrap_or(as_of)
        .min(as_of);
    let truncated = disk.journal.truncate_below(floor);
    let retained_for_acks = disk
        .journal
        .records()
        .iter()
        .filter(|(lsn, _)| *lsn < as_of)
        .count();
    let image_bytes = image.len();
    disk.with_image(|i| *i = Some(image));
    CheckpointReport {
        as_of,
        floor,
        truncated,
        retained_for_acks,
        image_bytes,
        log_bytes: disk.journal.byte_len(),
    }
}

/// Recovered sender-side state for one outgoing link: the next sequence
/// id and every sealed-but-unacknowledged gram (with the LSN of its seal
/// record). Turn it back into a live link with [`OutboxResume::resume`]
/// and re-ship [`OutboxResume::pending`] — the receiver's inbox absorbs
/// any that were actually delivered before the crash.
#[derive(Debug, Clone, Default)]
pub struct OutboxResume {
    next_id: u64,
    unacked: BTreeMap<u64, (Lsn, Updategram)>,
}

impl OutboxResume {
    /// Unacknowledged grams in id order, re-sealed under their original
    /// ids (at-least-once: ship these again after a restart).
    pub fn pending(&self) -> Vec<SequencedGram> {
        self.unacked
            .iter()
            .map(|(id, (_, gram))| gram.clone().sequenced(*id))
            .collect()
    }

    /// How many grams are still owed.
    pub fn pending_count(&self) -> usize {
        self.unacked.len()
    }

    /// The id the resumed link will assign next.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Rebuild the live [`ReliableLink`] for `target`, journaled on
    /// `disk`, continuing the id sequence and truncation floors exactly
    /// where the crashed sender left them.
    pub fn resume(&self, target: &str, plan: FaultPlan, disk: &PeerDisk) -> ReliableLink {
        let unacked = self.unacked.iter().map(|(id, (lsn, _))| (*id, *lsn)).collect();
        ReliableLink::restore(target, plan, disk.journal(), self.next_id, unacked)
    }
}

/// What [`recover`] reconstructed and how much work it took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerRecovery {
    /// True when a peer image anchored the recovery (false: log-only).
    pub image_used: bool,
    /// The image's exclusive LSN high-water mark (0 without an image).
    pub as_of: Lsn,
    /// Records with `lsn >= as_of` replayed into the catalog/inboxes —
    /// the suffix; the acceptance criterion is that this stays small
    /// after a checkpoint, because everything older is in the image.
    pub replayed: usize,
    /// Seal/ack records folded into outbox state (any LSN — unacked seals
    /// deliberately survive checkpoints).
    pub outbox_folds: usize,
    /// Bytes of torn log tail discarded on open (0 for a clean log).
    pub torn_bytes: usize,
    /// Grams still owed to downstream peers after recovery.
    pub pending_grams: usize,
}

/// Everything [`recover`] rebuilds from a [`PeerDisk`].
#[derive(Debug)]
pub struct RecoveredPeer {
    /// The recovered catalog, with the disk's journal re-attached (new
    /// mutations continue the same log).
    pub catalog: Catalog,
    /// Per-link receiver state, dedup watermarks intact.
    pub inboxes: BTreeMap<String, GramInbox>,
    /// Per-link sender state: sequence counters + unacknowledged grams.
    pub outboxes: BTreeMap<String, OutboxResume>,
    /// Recovery accounting.
    pub report: PeerRecovery,
}

#[derive(Debug, Default)]
struct InboxState {
    watermark: u64,
    above: BTreeSet<u64>,
    duplicates: u64,
    applied: u64,
}

impl InboxState {
    /// Mirror of `GramInbox::accept`'s compaction, replayed offline.
    fn mark_seen(&mut self, id: u64) {
        if id < self.watermark || self.above.contains(&id) {
            return;
        }
        self.above.insert(id);
        self.applied += 1;
        while self.above.remove(&self.watermark) {
            self.watermark += 1;
        }
    }
}

/// Recover a peer from its stable storage: open the log (truncating any
/// torn tail), decode the peer image if present, then replay.
///
/// The replay rule is split by the image's `as_of` mark:
///
/// * seal/ack records fold into outbox state at **any** LSN — the image
///   stores only each link's sequence counter, and an unacked seal
///   record below `as_of` is the gram's only surviving copy;
/// * every other record replays into the catalog (and, for
///   [`WalRecord::DeltaApplied`], the inbox ledger) **only** when
///   `lsn >= as_of` — older ones are already reflected in the image.
///
/// Returns `None` only when the image itself is corrupt (log corruption
/// is handled by tail truncation and is not fatal).
pub fn recover(disk: &PeerDisk) -> Option<RecoveredPeer> {
    let bytes = disk.journal.bytes();
    let (wal, open) = Wal::open(&bytes);
    let torn_bytes = open.torn_bytes;
    // Adopt the clean prefix: the journal handle now matches what
    // recovery saw, and new appends continue from its last LSN.
    disk.journal.replace(wal.clone());

    let image = disk.image_bytes();
    let (mut catalog, as_of, mut inboxes, next_ids) = match &image {
        Some(b) => decode_peer_image(b)?,
        None => (Catalog::new(), 0, BTreeMap::new(), BTreeMap::new()),
    };
    let mut outboxes: BTreeMap<String, OutboxResume> = next_ids
        .into_iter()
        .map(|(link, next_id)| (link, OutboxResume { next_id, unacked: BTreeMap::new() }))
        .collect();

    let mut replayed = 0usize;
    let mut outbox_folds = 0usize;
    for (lsn, rec) in wal.records() {
        match rec {
            WalRecord::DeltaSealed { link, id, relation, insert, delete } => {
                let ob = outboxes.entry(link.clone()).or_default();
                ob.next_id = ob.next_id.max(id + 1);
                let gram = Updategram {
                    relation: relation.clone(),
                    insert: insert.clone(),
                    delete: delete.clone(),
                };
                ob.unacked.insert(*id, (*lsn, gram));
                outbox_folds += 1;
            }
            WalRecord::DeltaAcked { link, id } => {
                outboxes.entry(link.clone()).or_default().unacked.remove(id);
                outbox_folds += 1;
            }
            _ if *lsn >= as_of => {
                if let WalRecord::DeltaApplied { link, id, .. } = rec {
                    inboxes.entry(link.clone()).or_default().mark_seen(*id);
                }
                catalog.replay(rec);
                replayed += 1;
            }
            // Below as_of and not outbox-relevant: captured by the image.
            _ => {}
        }
    }

    catalog.attach_journal(disk.journal());
    let inboxes: BTreeMap<String, GramInbox> = inboxes
        .into_iter()
        .map(|(link, st)| {
            let inbox = GramInbox::restore(
                st.watermark,
                st.above,
                st.duplicates as usize,
                st.applied as usize,
                Some((link.clone(), disk.journal())),
            );
            (link, inbox)
        })
        .collect();
    let pending_grams = outboxes.values().map(OutboxResume::pending_count).sum();
    Some(RecoveredPeer {
        catalog,
        inboxes,
        outboxes,
        report: PeerRecovery {
            image_used: image.is_some(),
            as_of,
            replayed,
            outbox_folds,
            torn_bytes,
            pending_grams,
        },
    })
}

// ---------------------------------------------------------------------------
// Peer image codec
// ---------------------------------------------------------------------------
//
//   magic "RVPI" | version u32
//   | catalog blob: len u32 + encode_catalog(catalog, as_of) bytes
//   | inbox count u32
//     | per inbox: link str | watermark u64 | duplicates u64 | applied u64
//       | above count u32 | above ids u64*
//   | outbox count u32
//     | per outbox: link str | next_id u64
//   | crc32 of everything above

fn encode_peer_image(
    catalog: &Catalog,
    as_of: Lsn,
    inboxes: &[&GramInbox],
    links: &[&ReliableLink],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(IMAGE_MAGIC);
    put_u32(&mut out, IMAGE_VERSION);
    let blob = encode_catalog(catalog, as_of);
    put_u32(&mut out, blob.len() as u32);
    out.extend_from_slice(&blob);
    // Only durable inboxes have a link identity worth persisting; the
    // encoder sorts by link so the image is deterministic.
    let mut named: Vec<&GramInbox> = inboxes.iter().copied().filter(|i| i.link().is_some()).collect();
    named.sort_by(|a, b| a.link().cmp(&b.link()));
    put_u32(&mut out, named.len() as u32);
    for inbox in named {
        put_str(&mut out, inbox.link().expect("filtered to named inboxes"));
        put_u64(&mut out, inbox.watermark());
        put_u64(&mut out, inbox.duplicates_ignored as u64);
        put_u64(&mut out, inbox.applied_count() as u64);
        let above = inbox.above();
        put_u32(&mut out, above.len() as u32);
        for id in above {
            put_u64(&mut out, *id);
        }
    }
    let mut outs: Vec<&ReliableLink> = links.to_vec();
    outs.sort_by(|a, b| a.target.cmp(&b.target));
    put_u32(&mut out, outs.len() as u32);
    for link in outs {
        put_str(&mut out, &link.target);
        put_u64(&mut out, link.next_seal_id());
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

type DecodedImage = (Catalog, Lsn, BTreeMap<String, InboxState>, BTreeMap<String, u64>);

fn decode_peer_image(bytes: &[u8]) -> Option<DecodedImage> {
    if bytes.len() < 8 {
        return None;
    }
    let body = &bytes[..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
    if crc32(body) != crc {
        return None;
    }
    let mut r = Reader::new(body);
    if r.take(4)? != IMAGE_MAGIC {
        return None;
    }
    if r.u32()? != IMAGE_VERSION {
        return None;
    }
    let blob_len = r.u32()? as usize;
    let blob = r.take(blob_len)?;
    let (catalog, as_of) = decode_catalog(blob)?;
    let mut inboxes = BTreeMap::new();
    for _ in 0..r.u32()? {
        let link = r.str()?;
        let watermark = r.u64()?;
        let duplicates = r.u64()?;
        let applied = r.u64()?;
        let mut above = BTreeSet::new();
        for _ in 0..r.u32()? {
            above.insert(r.u64()?);
        }
        inboxes.insert(link, InboxState { watermark, above, duplicates, applied });
    }
    let mut outboxes = BTreeMap::new();
    for _ in 0..r.u32()? {
        let link = r.str()?;
        let next_id = r.u64()?;
        outboxes.insert(link, next_id);
    }
    if !r.done() {
        return None;
    }
    Some((catalog, as_of, inboxes, outboxes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::apply_once;
    use crate::views::MaterializedView;
    use revere_query::parse_query;
    use revere_storage::{RelSchema, Relation, Value};
    use revere_util::fault::{FaultSpec, RetryPolicy};

    fn course_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(RelSchema::text("S.course", &["title", "area"]));
        c.insert("S.course", vec![Value::str("db"), Value::str("systems")]);
        c.insert("S.course", vec![Value::str("ml"), Value::str("ai")]);
        c
    }

    /// A view over `relation` in `catalog`, refreshed so incremental
    /// maintenance has a base state to delta against.
    fn view_over(catalog: &Catalog, relation: &str) -> MaterializedView {
        let q = parse_query(&format!("v(T) :- {relation}(T, A)")).expect("parse");
        let mut v = MaterializedView::new("v", q);
        v.refresh_full(catalog).expect("refresh");
        v
    }

    #[test]
    fn checkpoint_then_recover_round_trips_catalog_and_counters() {
        let disk = PeerDisk::new();
        let mut cat = course_catalog();
        cat.attach_journal(disk.journal());
        cat.insert("S.course", vec![Value::str("os"), Value::str("systems")]);
        let report = checkpoint(&disk, &mut cat, &[], &[]);
        assert!(report.as_of > 0);
        assert_eq!(report.retained_for_acks, 0);
        // Post-checkpoint mutations land in the suffix.
        cat.insert("S.course", vec![Value::str("pl"), Value::str("languages")]);

        let rec = recover(&disk).expect("clean recovery");
        assert!(rec.report.image_used);
        assert_eq!(rec.report.as_of, report.as_of);
        assert_eq!(rec.report.replayed, 1, "only the post-image insert replays");
        let rows = rec.catalog.get("S.course").expect("relation").sorted();
        assert_eq!(rows, cat.get("S.course").expect("relation").sorted());
    }

    #[test]
    fn recover_without_an_image_replays_the_whole_log() {
        let disk = PeerDisk::new();
        let mut cat = Catalog::new();
        cat.attach_journal(disk.journal());
        cat.register(Relation::new(RelSchema::text("S.t", &["v"])));
        cat.insert("S.t", vec![Value::str("a")]);
        let rec = recover(&disk).expect("recovery");
        assert!(!rec.report.image_used);
        assert_eq!(rec.catalog.get("S.t").expect("relation").len(), 1);
    }

    #[test]
    fn unacked_seals_survive_checkpoints_and_resume_pending() {
        let disk = PeerDisk::new();
        let mut cat = course_catalog();
        cat.attach_journal(disk.journal());
        // A link whose target is down: the seal never gets acknowledged.
        let plan = FaultPlan::new(FaultSpec::default().with_down_peer("T"));
        let mut link = ReliableLink::durable("T", plan.clone(), disk.journal());
        link.retry = RetryPolicy::none();
        let gram = link.seal(Updategram::inserts(
            "T.course",
            vec![vec![Value::str("db"), Value::str("systems")]],
        ));
        let mut inbox = GramInbox::new();
        let mut target_cat = Catalog::new();
        target_cat.create(RelSchema::text("T.course", &["title", "area"]));
        let mut view = view_over(&target_cat, "T.course");
        let d = link.ship(&gram, &mut inbox, &mut target_cat, &mut view).expect("ship");
        assert!(!d.acknowledged);

        let report = checkpoint(&disk, &mut cat, &[], &[&link]);
        assert!(report.floor < report.as_of, "unacked seal pins the floor");
        assert_eq!(report.retained_for_acks, 1);

        let rec = recover(&disk).expect("recovery");
        let resume = rec.outboxes.get("T").expect("outbox for T");
        assert_eq!(resume.pending_count(), 1);
        assert_eq!(resume.next_id(), 1, "sequence continues past the sealed gram");
        let pending = resume.pending();
        assert_eq!(pending[0].id, gram.id, "re-shipped under the original id");
        assert_eq!(pending[0].gram.relation, "T.course");
    }

    #[test]
    fn acked_grams_release_the_log_at_the_next_checkpoint() {
        let disk = PeerDisk::new();
        let mut cat = course_catalog();
        cat.attach_journal(disk.journal());
        let mut link = ReliableLink::durable("T", FaultPlan::default(), disk.journal());
        let mut inbox = GramInbox::new();
        let mut target_cat = Catalog::new();
        target_cat.create(RelSchema::text("T.course", &["title", "area"]));
        let mut view = view_over(&target_cat, "T.course");
        for i in 0..3 {
            let gram = link.seal(Updategram::inserts(
                "T.course",
                vec![vec![Value::str(format!("c{i}")), Value::str("x")]],
            ));
            let d = link.ship(&gram, &mut inbox, &mut target_cat, &mut view).expect("ship");
            assert!(d.acknowledged);
        }
        assert_eq!(link.truncation_floor(), None, "fully acknowledged");
        let before = disk.log_len();
        let report = checkpoint(&disk, &mut cat, &[], &[&link]);
        assert_eq!(report.retained_for_acks, 0);
        assert!(report.truncated > 0, "acknowledged history is garbage");
        assert!(disk.log_len() < before);
        // The truncated log still recovers: everything lives in the image.
        let rec = recover(&disk).expect("recovery");
        assert_eq!(rec.report.replayed, 0);
        assert_eq!(
            rec.catalog.get("S.course").expect("relation").sorted(),
            cat.get("S.course").expect("relation").sorted()
        );
    }

    #[test]
    fn receiver_crash_after_apply_does_not_double_apply() {
        // Receiver journals DeltaApplied before applying; after a crash +
        // recovery, a re-delivery of the same id must be a duplicate.
        let disk = PeerDisk::new();
        let mut cat = course_catalog();
        cat.attach_journal(disk.journal());
        // Base catalog predates the journal; checkpoint it into the image.
        checkpoint(&disk, &mut cat, &[], &[]);
        let mut view = view_over(&cat, "S.course");
        let mut inbox = GramInbox::durable("Src", disk.journal());
        let gram = Updategram::inserts(
            "S.course",
            vec![vec![Value::str("net"), Value::str("systems")]],
        )
        .sequenced(0);
        assert!(apply_once(&mut inbox, &mut cat, &mut view, &gram).expect("apply"));
        let rows_before = cat.get("S.course").expect("relation").len();

        // Crash: drop the in-memory peer, recover from disk.
        drop((cat, inbox));
        let mut rec = recover(&disk).expect("recovery");
        assert_eq!(rec.catalog.get("S.course").expect("relation").len(), rows_before);
        let restored = rec.inboxes.get_mut("Src").expect("inbox for Src");
        assert!(restored.is_seen(0), "watermark survived the crash");
        let mut view2 = view_over(&rec.catalog, "S.course");
        let applied =
            apply_once(restored, &mut rec.catalog, &mut view2, &gram).expect("re-delivery");
        assert!(!applied, "exactly-once across the restart");
        assert_eq!(rec.catalog.get("S.course").expect("relation").len(), rows_before);
    }

    #[test]
    fn torn_image_is_fatal_torn_log_is_not() {
        let disk = PeerDisk::new();
        let mut cat = course_catalog();
        cat.attach_journal(disk.journal());
        checkpoint(&disk, &mut cat, &[], &[]);
        cat.insert("S.course", vec![Value::str("sec"), Value::str("systems")]);

        // Tear the log mid-frame: the post-checkpoint insert was in
        // flight at the crash, so recovery keeps the image state only.
        let full = disk.journal.bytes().len();
        disk.tear_log(full.saturating_sub(3));
        let rec = recover(&disk).expect("torn log recovers");
        assert_eq!(rec.report.replayed, 0, "the torn record is discarded");
        assert_eq!(rec.catalog.get("S.course").expect("relation").len(), 2);

        // Corrupt the image: recovery refuses (the image CRC catches it).
        let mut img = disk.image_bytes().expect("image");
        let mid = img.len() / 2;
        img[mid] ^= 0xFF;
        disk.with_image(|i| *i = Some(img));
        assert!(recover(&disk).is_none());
    }
}
