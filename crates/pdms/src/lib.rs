//! Piazza: the peer data management system of REVERE (§3 of the paper).
//!
//! "Semantic mappings between disparate schemas are given locally between
//! two (or a small set of) peers. Using these semantic mappings
//! transitively, peers can make use of relevant data anywhere in the
//! system. Consequently, queries in a PDMS can be posed using the local
//! schema of the peer, without having to learn the schema of other peers."
//!
//! * [`peer`] — peers: a name, a peer schema, stored relations.
//! * [`reformulate`] — query answering over the transitive closure of GLAV
//!   mappings: rule-goal expansion mixing GAV unfolding with MiniCon view
//!   rewriting, with the pruning heuristics §3.1.1 mentions.
//! * [`network`] — the simulated overlay: message/hop accounting, query
//!   routing, optional multi-threaded disjunct execution, degraded
//!   execution under a seeded fault plan (retry/backoff, query budgets,
//!   partial-answer completeness reports), epoch-invalidated
//!   reformulation/plan caches ("plan once, run many"), and continuous
//!   queries ([`PdmsNetwork::subscribe`] / [`PdmsNetwork::publish`])
//!   maintained by delta-dataflow circuits.
//! * [`xmlmap`] — the Figure 4 mapping-template language for XML peers:
//!   a target-schema template annotated with binding queries, applied to
//!   source documents.
//! * [`views`] — materialized views with derivation counts.
//! * [`placement`] — greedy view placement under per-peer storage budgets
//!   and plan-aware query routing.
//! * [`updategram`] — updategrams \[36\] and counting-based incremental view
//!   maintenance with a cost-based choice against full recomputation.
//! * [`propagation`] — translating base-data updategrams through mappings
//!   into virtual-relation updategrams for remote caches, shipped
//!   at-least-once over faulty links with receiver-side dedup.
//! * [`durable`] — peer checkpoints + WAL recovery on top of
//!   `revere_storage::wal`, making the at-least-once/dedup pair
//!   exactly-once *across peer restarts*.
//! * [`monitor`] — the overlay health monitor: per-peer vitals scraped
//!   into windowed metrics, Healthy/Degraded/Suspect/Down verdicts with
//!   hysteresis, a structured event log, and a cluster dashboard.

pub mod durable;
pub mod monitor;
pub mod network;
pub mod peer;
pub mod placement;
pub mod propagation;
pub mod reformulate;
pub mod updategram;
pub mod views;
pub mod xmlmap;

/// Deterministic fault injection (re-exported from `revere-util`): the
/// [`fault::FaultPlan`] the network and propagation layers execute under.
pub use revere_util::fault;

/// Observability (re-exported from `revere-util`): the [`obs::Obs`] handle
/// the network, evaluation, and propagation layers record spans and
/// metrics through when tracing is enabled.
pub use revere_util::obs;

pub use durable::{
    checkpoint, recover, CheckpointReport, OutboxResume, PeerDisk, PeerRecovery, RecoveredPeer,
};
pub use monitor::{Health, Monitor, MonitorConfig, MonitorEvent, PeerVitals};
pub use network::{
    CacheStats, CompletenessReport, PdmsNetwork, PeerAccounting, PublishReport, QueryBudget,
    QueryOutcome, Subscription,
};
pub use peer::Peer;
pub use placement::{answer_with_plan, plan_placement, PlacementPlan, WorkloadEntry};
pub use propagation::{
    apply_once, apply_once_dataflow, propagate_through_mapping, Delivery, GramInbox, LinkStats,
    MappingPropagator, ReliableLink,
};
pub use reformulate::{ReformulateOptions, ReformulationResult, Reformulator};
pub use updategram::{
    apply_updategrams, derivation_deltas_readonly, gram_to_batch, maintain, MaintenanceChoice,
    SequencedGram, Updategram,
};
pub use views::{DataflowView, IvmStrategy, MaterializedView};
pub use xmlmap::XmlMapping;
