//! Peers.
//!
//! §3.1: "A peer can provide any or all of three different types of
//! content: (1) new XML data (which we refer to as *stored relations* ...),
//! (2) a new logical schema that others can query or map to (... a *peer
//! schema*), and (3) new mappings." A [`Peer`] holds the first two; the
//! mappings live in the network's shared mapping graph.
//!
//! Relation names are peer-qualified throughout the PDMS: peer `Berkeley`'s
//! relation `course` is addressed as `Berkeley.course`.

use revere_storage::{Catalog, DbSchema, RelSchema, Relation, SharedCatalog, Value};

/// One Piazza peer.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Peer name (`Berkeley`).
    pub name: String,
    /// Stored relations, registered under *qualified* names.
    pub storage: SharedCatalog,
    /// The peer's logical schema (unqualified relation names).
    pub schema: DbSchema,
}

/// Qualify a relation name with its peer: `qualified("Berkeley", "course")
/// == "Berkeley.course"`.
pub fn qualified(peer: &str, relation: &str) -> String {
    format!("{peer}.{relation}")
}

/// Split a qualified name into `(peer, relation)`; `None` when unqualified.
pub fn split_qualified(name: &str) -> Option<(&str, &str)> {
    name.split_once('.')
}

impl Peer {
    /// Create a peer with no relations.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Peer {
            schema: DbSchema::new(name.clone()),
            name,
            storage: SharedCatalog::new(Catalog::new()),
        }
    }

    /// Add a stored relation. The relation's schema name may be given
    /// unqualified; it is stored qualified.
    pub fn add_relation(&mut self, rel: Relation) {
        let mut rel = rel;
        let unqualified = rel.schema.name.clone();
        if split_qualified(&unqualified).is_none() {
            rel.schema.name = qualified(&self.name, &unqualified);
        }
        self.schema.relations.push(RelSchema {
            name: unqualified,
            attrs: rel.schema.attrs.clone(),
        });
        self.storage.write(|c| c.register(rel));
    }

    /// Declare a purely logical relation (peer schema only — a "logical
    /// mediator" peer serving queries without storing data).
    pub fn declare_relation(&mut self, schema: RelSchema) {
        self.schema.relations.push(schema);
    }

    /// Insert a row into a stored relation (unqualified name).
    pub fn insert(&mut self, relation: &str, row: Vec<Value>) -> bool {
        let q = qualified(&self.name, relation);
        self.storage.write(|c| c.insert(&q, row))
    }

    /// Clone out one stored relation by qualified name — what a remote
    /// peer ships back when the overlay asks it for data.
    pub fn snapshot(&self, qualified: &str) -> Option<Relation> {
        self.storage.snapshot(qualified)
    }

    /// True when the peer currently stores `qualified` — the advertised
    /// schema the overlay consults before spending messages on a fetch.
    pub fn stores(&self, qualified: &str) -> bool {
        self.storage.read(|c| c.get(qualified).is_some())
    }

    /// Qualified names of all stored relations.
    pub fn stored_relations(&self) -> Vec<String> {
        self.storage
            .read(|c| c.names().map(str::to_string).collect())
    }

    /// Total stored tuples.
    pub fn stored_rows(&self) -> usize {
        self.storage.read(Catalog::total_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualification_round_trips() {
        assert_eq!(qualified("Berkeley", "course"), "Berkeley.course");
        assert_eq!(split_qualified("Berkeley.course"), Some(("Berkeley", "course")));
        assert_eq!(split_qualified("unqualified"), None);
    }

    #[test]
    fn add_relation_qualifies_storage_keeps_schema_unqualified() {
        let mut p = Peer::new("MIT");
        p.add_relation(Relation::new(RelSchema::text("subject", &["title", "enrollment"])));
        assert_eq!(p.stored_relations(), vec!["MIT.subject".to_string()]);
        assert!(p.schema.relation("subject").is_some());
    }

    #[test]
    fn insert_goes_to_qualified_relation() {
        let mut p = Peer::new("MIT");
        p.add_relation(Relation::new(RelSchema::text("subject", &["title"])));
        assert!(p.insert("subject", vec![Value::str("DB")]));
        assert!(!p.insert("nope", vec![Value::str("x")]));
        assert_eq!(p.stored_rows(), 1);
    }

    #[test]
    fn stores_and_snapshot_agree() {
        let mut p = Peer::new("MIT");
        p.add_relation(Relation::new(RelSchema::text("subject", &["title"])));
        assert!(p.stores("MIT.subject"));
        assert!(p.snapshot("MIT.subject").is_some());
        assert!(!p.stores("MIT.ghost"));
        assert!(p.snapshot("MIT.ghost").is_none());
        // Unqualified names are not storage keys.
        assert!(!p.stores("subject"));
    }

    #[test]
    fn logical_peer_has_schema_but_no_storage() {
        let mut p = Peer::new("Mediator");
        p.declare_relation(RelSchema::text("course", &["title"]));
        assert!(p.stored_relations().is_empty());
        assert!(p.schema.relation("course").is_some());
    }
}
