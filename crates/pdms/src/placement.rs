//! Intelligent data placement (§3.1.2, \[21\]).
//!
//! "Our ultimate goal is to materialize the best views at each peer to
//! allow answering queries most efficiently, given network constraints;
//! and to distribute each query in the PDMS to the peer that will provide
//! the best performance."
//!
//! [`plan_placement`] takes a query workload (who asks what, how often)
//! and greedily materializes the highest-benefit views within a per-peer
//! tuple budget, where benefit = frequency × tuples currently shipped
//! from remote peers for that query. [`answer_with_plan`] then routes: a
//! query equivalent to a view materialized *at the asking peer* is served
//! locally with zero messages; everything else falls back to normal
//! reformulation.

use crate::network::{PdmsNetwork, QueryOutcome};
use revere_query::{equivalent, ConjunctiveQuery};
use revere_storage::Relation;
use std::collections::BTreeMap;

/// One workload entry: `peer` poses `query` with relative `frequency`.
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    /// The asking peer.
    pub peer: String,
    /// The query, in that peer's vocabulary.
    pub query: ConjunctiveQuery,
    /// Executions per unit time (relative weight).
    pub frequency: f64,
}

/// One chosen placement: a view materialized at a peer.
///
/// The materialized data is the query's full PDMS answer (the union over
/// every reachable peer), not just local data — that is what makes
/// serving it locally equivalent to re-asking the network.
#[derive(Debug)]
pub struct Placement {
    /// Where the view lives.
    pub peer: String,
    /// The view's defining query (in the peer's vocabulary).
    pub definition: ConjunctiveQuery,
    /// The materialized answers.
    pub data: Relation,
    /// Tuples it holds (its storage cost).
    pub rows: usize,
    /// Messages saved every time its query is asked.
    pub saved_messages: usize,
    /// Benefit score used by the greedy pass.
    pub benefit: f64,
}

/// The placement plan.
#[derive(Debug, Default)]
pub struct PlacementPlan {
    /// Chosen placements.
    pub placements: Vec<Placement>,
}

impl PlacementPlan {
    /// The view at `peer` equivalent to `query`, if any.
    pub fn view_for(&self, peer: &str, query: &ConjunctiveQuery) -> Option<&Placement> {
        self.placements
            .iter()
            .find(|p| p.peer == peer && equivalent(&p.definition, query))
    }

    /// Total materialized tuples per peer.
    pub fn usage_by_peer(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for p in &self.placements {
            *out.entry(p.peer.clone()).or_default() += p.rows;
        }
        out
    }
}

/// Greedily choose views to materialize under a per-peer tuple budget.
///
/// For each workload entry the candidate view is the entry's own query
/// (materialized at the asking peer — the "warehouse it where it's asked"
/// strategy of \[21\]); candidates are ranked by
/// `frequency × messages saved / rows stored` and accepted while the
/// peer's budget allows.
pub fn plan_placement(
    net: &PdmsNetwork,
    workload: &[WorkloadEntry],
    budget_per_peer: usize,
) -> PlacementPlan {
    let mut candidates: Vec<Placement> = Vec::new();
    for entry in workload {
        let Ok(outcome) = net.query(&entry.peer, &entry.query) else {
            continue;
        };
        if outcome.messages == 0 {
            continue; // already local; nothing to save
        }
        // Materialize the full network answer.
        let rows = outcome.answers.len();
        let benefit = entry.frequency * outcome.messages as f64 / (rows.max(1) as f64);
        candidates.push(Placement {
            peer: entry.peer.clone(),
            definition: entry.query.clone(),
            data: outcome.answers,
            rows,
            saved_messages: outcome.messages,
            benefit,
        });
    }
    candidates.sort_by(|a, b| b.benefit.total_cmp(&a.benefit));
    let mut plan = PlacementPlan::default();
    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    for c in candidates {
        let u = used.entry(c.peer.clone()).or_default();
        if *u + c.rows > budget_per_peer {
            continue;
        }
        // Skip if an equivalent view is already placed at this peer.
        if plan.view_for(&c.peer, &c.definition).is_some() {
            continue;
        }
        *u += c.rows;
        plan.placements.push(c);
    }
    plan
}

/// Answer `query` at `peer`, using a materialized view when one matches.
/// Returns the answers plus the messages actually spent.
pub fn answer_with_plan(
    net: &PdmsNetwork,
    plan: &PlacementPlan,
    peer: &str,
    query: &ConjunctiveQuery,
) -> Result<(Relation, usize), String> {
    if let Some(placement) = plan.view_for(peer, query) {
        return Ok((placement.data.clone(), 0));
    }
    let QueryOutcome { answers, messages, .. } = net.query(peer, query)?;
    Ok((answers, messages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::Peer;
    use revere_query::{parse_query, GlavMapping};
    use revere_storage::{RelSchema, Value};

    fn chain_net() -> PdmsNetwork {
        let mut net = PdmsNetwork::new();
        for i in 0..3 {
            let mut p = Peer::new(format!("P{i}"));
            let mut r = Relation::new(RelSchema::text("course", &["title"]));
            for k in 0..4 {
                r.insert(vec![Value::str(format!("C{k}@P{i}"))]);
            }
            p.add_relation(r);
            net.add_peer(p);
        }
        for i in 1..3 {
            net.add_mapping(
                GlavMapping::parse(
                    format!("m{i}"),
                    format!("P{}", i - 1),
                    format!("P{i}"),
                    &format!(
                        "m(T) :- P{}.course(T) ==> m(T) :- P{i}.course(T)",
                        i - 1
                    ),
                )
                .unwrap(),
            );
        }
        net
    }

    fn workload() -> Vec<WorkloadEntry> {
        vec![WorkloadEntry {
            peer: "P2".into(),
            query: parse_query("q(T) :- P2.course(T)").unwrap(),
            frequency: 10.0,
        }]
    }

    #[test]
    fn placement_eliminates_messages_for_hot_query() {
        let net = chain_net();
        let plan = plan_placement(&net, &workload(), 1_000);
        assert_eq!(plan.placements.len(), 1);
        assert_eq!(plan.placements[0].peer, "P2");
        assert!(plan.placements[0].saved_messages > 0);
        let q = parse_query("q(T) :- P2.course(T)").unwrap();
        let (answers, messages) = answer_with_plan(&net, &plan, "P2", &q).unwrap();
        assert_eq!(messages, 0, "materialized view should serve locally");
        assert_eq!(answers.len(), 12, "{answers}");
        // Without the plan, the same query ships data.
        let direct = net.query("P2", &q).unwrap();
        assert!(direct.messages > 0);
        let mut a = answers.rows().to_vec();
        let mut b = direct.answers.rows().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "view answers must match live answers");
    }

    #[test]
    fn zero_budget_places_nothing() {
        let net = chain_net();
        let plan = plan_placement(&net, &workload(), 0);
        assert!(plan.placements.is_empty());
        // Queries still work, just remotely.
        let q = parse_query("q(T) :- P2.course(T)").unwrap();
        let (answers, messages) = answer_with_plan(&net, &plan, "P2", &q).unwrap();
        assert!(messages > 0);
        assert_eq!(answers.len(), 12);
    }

    #[test]
    fn budget_is_respected_across_entries() {
        let net = chain_net();
        let mut wl = workload();
        wl.push(WorkloadEntry {
            peer: "P2".into(),
            query: parse_query("q(T) :- P2.course(T), T != 'nope'").unwrap(),
            frequency: 1.0,
        });
        // Budget fits exactly one 12-row view.
        let plan = plan_placement(&net, &wl, 12);
        assert_eq!(plan.placements.len(), 1);
        // The higher-frequency entry wins the budget.
        assert!(plan.placements[0].benefit >= 1.0);
        assert!(plan.usage_by_peer()["P2"] <= 12);
    }

    #[test]
    fn equivalent_queries_share_a_view() {
        let net = chain_net();
        let plan = plan_placement(&net, &workload(), 1_000);
        // A renamed-variable version of the hot query hits the same view.
        let q2 = parse_query("q(X) :- P2.course(X)").unwrap();
        let (_, messages) = answer_with_plan(&net, &plan, "P2", &q2).unwrap();
        assert_eq!(messages, 0);
        // But a different peer does not get P2's view.
        let q_p1 = parse_query("q(T) :- P1.course(T)").unwrap();
        let (_, messages) = answer_with_plan(&net, &plan, "P1", &q_p1).unwrap();
        assert!(messages > 0);
    }

    #[test]
    fn local_only_queries_are_not_materialized() {
        let mut net = PdmsNetwork::new();
        let mut p = Peer::new("Solo");
        let mut r = Relation::new(RelSchema::text("course", &["title"]));
        r.insert(vec![Value::str("x")]);
        p.add_relation(r);
        net.add_peer(p);
        let wl = vec![WorkloadEntry {
            peer: "Solo".into(),
            query: parse_query("q(T) :- Solo.course(T)").unwrap(),
            frequency: 100.0,
        }];
        let plan = plan_placement(&net, &wl, 1_000);
        assert!(plan.placements.is_empty(), "no messages to save");
    }
}
