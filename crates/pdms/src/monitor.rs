//! The overlay health monitor: continuous self-assessment for a PDMS.
//!
//! The paper's §3 scaling story assumes an overlay that keeps working as
//! peers join, fail, and churn — which is only checkable if the system
//! can watch itself. This module closes that loop (DESIGN.md §13):
//!
//! * each peer exposes a [`PeerVitals`] scrape built from the network's
//!   always-on [`PeerAccounting`] (fetch attempts, drops, retries,
//!   completeness gaps, worst q-error) plus its durable-layer backlog
//!   (WAL records pending, inbox watermark lag);
//! * an overlay-wide [`Monitor`] probes and scrapes every peer on a tick
//!   cadence, feeds the deltas into per-peer *windowed* metrics
//!   ([`Metrics::windowed`]), and assigns each peer a [`Health`] verdict
//!   from windowed thresholds with hysteresis;
//! * threshold crossings append [`MonitorEvent`]s to a deterministic
//!   structured event log, and [`Monitor::render_dashboard`] renders the
//!   whole cluster as sorted text.
//!
//! Everything is deterministic: probes draw from the same pure-hash
//! [`FaultPlan`] coin the fetch path uses (keyed by monitor tick, so each
//! scrape sees fresh weather), scrapes never mutate the network, and all
//! iteration is over `BTreeMap`s. Running a monitor beside a workload
//! changes no query answers — `tests/monitor_health.rs` holds a twin run
//! to byte-identity. E19 validates attribution end-to-end: under a
//! seeded chaos plan the monitor's flagged set must equal the injected
//! degraded-peer set, with detection latency reported in ticks.

use crate::network::{CacheStats, PdmsNetwork, PeerAccounting};
use revere_util::fault::{FaultPlan, Fate};
use revere_util::obs::{json_escape, names, Metrics, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt;

/// A peer's health verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Answering probes, fetch-path vitals within thresholds.
    Healthy,
    /// Reachable but impaired: a missed probe, a windowed drop rate over
    /// threshold, or a worst q-error over threshold.
    Degraded,
    /// Missed every probe for `suspect_misses` consecutive scrapes.
    Suspect,
    /// Missed every probe for `down_misses` consecutive scrapes.
    Down,
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Health::Healthy => "Healthy",
            Health::Degraded => "Degraded",
            Health::Suspect => "Suspect",
            Health::Down => "Down",
        })
    }
}

/// Thresholds and cadence knobs for the [`Monitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// Sliding windows kept per peer ([`Metrics::windowed`]); verdicts
    /// read the union of the last `windows` closed windows.
    pub windows: usize,
    /// Liveness probes sent per peer per scrape; one answer (delivered
    /// *or* flaky — an error response still proves liveness) counts as
    /// contact.
    pub probe_attempts: u32,
    /// Windowed `dropped/sent` fetch-message fraction above which a
    /// reachable peer is [`Health::Degraded`].
    pub degraded_drop_rate: f64,
    /// Worst observed q-error above which a reachable peer is
    /// [`Health::Degraded`] (the estimator is badly miscalibrated for
    /// its data).
    pub degraded_q_error: f64,
    /// Consecutive all-probes-missed scrapes before [`Health::Suspect`].
    pub suspect_misses: u32,
    /// Consecutive all-probes-missed scrapes before [`Health::Down`].
    pub down_misses: u32,
    /// Hysteresis: consecutive scrapes with a *less severe* candidate
    /// verdict before the peer is actually downgraded — one good probe
    /// never un-flags a flapping peer.
    pub recover_scrapes: u32,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            windows: 4,
            probe_attempts: 3,
            degraded_drop_rate: 0.5,
            degraded_q_error: 64.0,
            suspect_misses: 2,
            down_misses: 4,
            recover_scrapes: 2,
        }
    }
}

/// One peer's scrape: probe result plus fetch-path deltas since the
/// previous scrape and durable-layer backlog gauges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeerVitals {
    /// Peer name.
    pub peer: String,
    /// Monitor tick of the scrape.
    pub tick: u64,
    /// Did any probe get an answer this scrape?
    pub reachable: bool,
    /// Fetch attempts aimed at this peer since the last scrape.
    pub fetch_attempts: u64,
    /// Fetch messages sent toward this peer since the last scrape.
    pub messages_sent: u64,
    /// Fetch messages dropped since the last scrape.
    pub messages_dropped: u64,
    /// Fetch retries spent since the last scrape.
    pub retries_spent: u64,
    /// Completeness gaps (fetches never delivered) since the last scrape.
    pub gaps_observed: u64,
    /// Median fetch round-trip latency in ticks (cumulative histogram).
    pub latency_p50_ticks: u64,
    /// Worst q-error observed for plans touching this peer, in
    /// thousandths (0 until a plan has been profiled).
    pub worst_q_error_milli: u64,
    /// WAL backlog: journaled records not yet truncated by a checkpoint
    /// (the unacked LSN span). 0 for non-durable peers.
    pub wal_records_pending: u64,
    /// Inbox watermark lag: journaled records the durable-subscription
    /// sync cursor has not absorbed yet. 0 for non-durable peers.
    pub wal_records_unsynced: u64,
}

/// A threshold-crossing entry in the monitor's structured event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Monitor tick at which the verdict changed.
    pub tick: u64,
    /// The peer whose verdict changed.
    pub peer: String,
    /// Verdict before the crossing.
    pub from: Health,
    /// Verdict after the crossing.
    pub to: Health,
    /// Deterministic cause, e.g. `probe_miss_streak=2` or `recovered`.
    pub reason: String,
}

impl fmt::Display for MonitorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tick={} peer={} {}->{} reason={}",
            self.tick, self.peer, self.from, self.to, self.reason
        )
    }
}

/// Per-peer verdict state: the current verdict plus the streaks the
/// transition rules read.
#[derive(Debug, Clone)]
struct HealthState {
    verdict: Health,
    /// Consecutive scrapes with every probe missed.
    miss_streak: u32,
    /// Consecutive scrapes whose candidate verdict was less severe than
    /// the current one (hysteresis counter).
    ok_streak: u32,
}

impl Default for HealthState {
    fn default() -> Self {
        HealthState { verdict: Health::Healthy, miss_streak: 0, ok_streak: 0 }
    }
}

/// The overlay health monitor. Construct once, then call
/// [`Monitor::scrape`] on a tick cadence; read verdicts, vitals, the
/// event log, the dashboard, or the merged cluster rollup between
/// scrapes. Scraping borrows the network immutably and never changes
/// query behavior.
#[derive(Debug)]
pub struct Monitor {
    cfg: MonitorConfig,
    /// Accounting totals as of the previous scrape, for delta computation.
    prev: BTreeMap<String, PeerAccounting>,
    /// Per-peer windowed metrics, rotated once per scrape.
    peer_metrics: BTreeMap<String, Metrics>,
    health: BTreeMap<String, HealthState>,
    events: Vec<MonitorEvent>,
    /// First tick each peer ever reached Suspect-or-worse (detection
    /// latency numerator; never cleared by recovery).
    first_flagged: BTreeMap<String, u64>,
    /// Latest scrape's vitals, by peer.
    vitals: BTreeMap<String, PeerVitals>,
    /// The monitor's own accounting (`monitor.probe.*`, `monitor.scrape.*`).
    metrics: Metrics,
    /// Network-wide cache verdicts as of the latest scrape (the caches
    /// live at network scope, so they roll up at cluster level).
    cache: CacheStats,
    last_tick: u64,
    scrapes: u64,
}

impl Default for Monitor {
    fn default() -> Self {
        Self::new(MonitorConfig::default())
    }
}

impl Monitor {
    /// A monitor with the given thresholds.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            cfg,
            prev: BTreeMap::new(),
            peer_metrics: BTreeMap::new(),
            health: BTreeMap::new(),
            events: Vec::new(),
            first_flagged: BTreeMap::new(),
            vitals: BTreeMap::new(),
            metrics: Metrics::new(),
            cache: CacheStats::default(),
            last_tick: 0,
            scrapes: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Probe `peer` at `tick`: up to `probe_attempts` messages through
    /// the fault plan, keyed by tick so every scrape draws fresh weather.
    /// Returns (answered, probes_sent).
    fn probe(&self, faults: &FaultPlan, peer: &str, tick: u64) -> (bool, u64) {
        let key = format!("monitor.probe#{tick}");
        let mut sent = 0u64;
        for attempt in 0..self.cfg.probe_attempts {
            sent += 1;
            if faults.is_down_at(peer, tick) {
                continue;
            }
            match faults.fate(peer, &key, attempt) {
                Fate::Dropped => continue,
                // An error response still proves the peer is alive.
                Fate::Flaky | Fate::Delivered { .. } => return (true, sent),
            }
        }
        (false, sent)
    }

    /// Scrape every peer of `net` at monitor tick `tick`: probe, diff
    /// accounting, feed windowed metrics, update verdicts, append events.
    pub fn scrape(&mut self, net: &PdmsNetwork, tick: u64) {
        let acct = net.peer_accounting();
        self.cache = net.cache_stats();
        self.last_tick = tick;
        self.scrapes += 1;
        for peer in net.peer_names() {
            let (reachable, probes_sent) = self.probe(&net.faults, peer, tick);
            self.metrics.inc(names::MONITOR_PROBE_PROBES_SENT, probes_sent);
            if reachable {
                self.metrics.inc(names::MONITOR_SCRAPE_PEERS_SEEN, 1);
            } else {
                self.metrics.inc(names::MONITOR_PROBE_PROBES_MISSED, 1);
            }

            let cur = acct.get(peer).cloned().unwrap_or_default();
            let prev = self.prev.get(peer).cloned().unwrap_or_default();
            let (pending, unsynced) = match net.disk(peer) {
                Some(disk) => {
                    let journal = disk.journal();
                    let cursor = net.wal_cursor(peer).unwrap_or(0);
                    (
                        journal.record_count() as u64,
                        journal.next_lsn().saturating_sub(cursor),
                    )
                }
                None => (0, 0),
            };
            let v = PeerVitals {
                peer: peer.to_string(),
                tick,
                reachable,
                fetch_attempts: cur.fetch_attempts - prev.fetch_attempts,
                messages_sent: cur.messages_sent - prev.messages_sent,
                messages_dropped: cur.messages_dropped - prev.messages_dropped,
                retries_spent: cur.retries_spent - prev.retries_spent,
                gaps_observed: cur.gaps_observed - prev.gaps_observed,
                latency_p50_ticks: cur.latency.quantile(0.5),
                worst_q_error_milli: (cur.worst_q_error * 1000.0).round() as u64,
                wal_records_pending: pending,
                wal_records_unsynced: unsynced,
            };

            let windows = self.cfg.windows;
            let m = self
                .peer_metrics
                .entry(peer.to_string())
                .or_insert_with(|| Metrics::windowed(windows));
            m.inc(names::PDMS_FETCH_MESSAGES_SENT, v.messages_sent);
            m.inc(names::PDMS_FETCH_MESSAGES_DROPPED, v.messages_dropped);
            m.inc(names::PDMS_FETCH_RETRIES_SPENT, v.retries_spent);
            m.inc(names::PDMS_FETCH_GAPS_OBSERVED, v.gaps_observed);
            m.set_gauge(names::PDMS_FEEDBACK_QERROR_WORST_MILLI, v.worst_q_error_milli as i64);
            m.set_gauge(names::PDMS_WAL_RECORDS_PENDING, v.wal_records_pending as i64);
            m.set_gauge(names::PDMS_WAL_RECORDS_UNSYNCED, v.wal_records_unsynced as i64);
            m.rotate_window();

            self.update_verdict(peer, &v, tick);
            self.vitals.insert(peer.to_string(), v);
        }
        self.prev = acct;
    }

    /// The candidate verdict from this scrape's evidence alone, plus the
    /// deterministic reason string an event would carry.
    fn candidate(&self, peer: &str, v: &PeerVitals, miss_streak: u32) -> (Health, String) {
        if miss_streak >= self.cfg.down_misses {
            return (Health::Down, format!("probe_miss_streak={miss_streak}"));
        }
        if miss_streak >= self.cfg.suspect_misses {
            return (Health::Suspect, format!("probe_miss_streak={miss_streak}"));
        }
        if !v.reachable {
            return (Health::Degraded, format!("probe_miss_streak={miss_streak}"));
        }
        if let Some(m) = self.peer_metrics.get(peer) {
            let sent = m.window_counter(names::PDMS_FETCH_MESSAGES_SENT);
            let dropped = m.window_counter(names::PDMS_FETCH_MESSAGES_DROPPED);
            if sent > 0 && dropped as f64 / sent as f64 > self.cfg.degraded_drop_rate {
                let milli = dropped * 1000 / sent;
                return (Health::Degraded, format!("window_drop_rate_milli={milli}"));
            }
        }
        if v.worst_q_error_milli as f64 / 1000.0 > self.cfg.degraded_q_error {
            return (Health::Degraded, format!("worst_q_error_milli={}", v.worst_q_error_milli));
        }
        (Health::Healthy, "recovered".to_string())
    }

    /// Apply this scrape's candidate verdict with hysteresis: escalations
    /// are immediate, de-escalations wait for `recover_scrapes`
    /// consecutive calmer candidates.
    fn update_verdict(&mut self, peer: &str, v: &PeerVitals, tick: u64) {
        let mut state = self.health.get(peer).cloned().unwrap_or_default();
        if v.reachable {
            state.miss_streak = 0;
        } else {
            state.miss_streak += 1;
        }
        let (cand, reason) = self.candidate(peer, v, state.miss_streak);
        let mut transition: Option<(Health, Health, String)> = None;
        if cand > state.verdict {
            transition = Some((state.verdict, cand, reason));
            state.ok_streak = 0;
        } else if cand < state.verdict {
            state.ok_streak += 1;
            if state.ok_streak >= self.cfg.recover_scrapes {
                transition = Some((state.verdict, cand, reason));
                state.ok_streak = 0;
            }
        } else {
            state.ok_streak = 0;
        }
        if let Some((from, to, reason)) = transition {
            state.verdict = to;
            if to >= Health::Suspect {
                self.first_flagged.entry(peer.to_string()).or_insert(tick);
            }
            self.events.push(MonitorEvent { tick, peer: peer.to_string(), from, to, reason });
            self.metrics.inc(names::MONITOR_SCRAPE_EVENTS_EMITTED, 1);
        }
        self.health.insert(peer.to_string(), state);
    }

    /// Current verdict for `peer` (Healthy if never scraped).
    pub fn health(&self, peer: &str) -> Health {
        self.health.get(peer).map_or(Health::Healthy, |s| s.verdict)
    }

    /// Every peer's current verdict, in name order.
    pub fn verdicts(&self) -> BTreeMap<String, Health> {
        self.health.iter().map(|(p, s)| (p.clone(), s.verdict)).collect()
    }

    /// Peers currently flagged [`Health::Suspect`] or [`Health::Down`],
    /// in name order — the set E19 matches against the injected fault
    /// plan.
    pub fn flagged(&self) -> Vec<String> {
        self.health
            .iter()
            .filter(|(_, s)| s.verdict >= Health::Suspect)
            .map(|(p, _)| p.clone())
            .collect()
    }

    /// The first monitor tick at which `peer` reached Suspect-or-worse,
    /// if it ever did — detection latency is this minus the fault onset.
    pub fn first_flagged_tick(&self, peer: &str) -> Option<u64> {
        self.first_flagged.get(peer).copied()
    }

    /// The latest scrape's vitals for `peer`.
    pub fn vitals(&self, peer: &str) -> Option<&PeerVitals> {
        self.vitals.get(peer)
    }

    /// The structured event log, in append (= tick) order.
    pub fn events(&self) -> &[MonitorEvent] {
        &self.events
    }

    /// The event log rendered one `Display` line per event.
    pub fn event_log(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// The monitor's own windowless metrics (`monitor.probe.*`,
    /// `monitor.scrape.*`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Lossless cluster rollup: every peer's windowed snapshot merged
    /// into one [`MetricsSnapshot`] (counters and gauges sum to cluster
    /// totals over the open windows), plus the monitor's own counters and
    /// the network-scope cache verdicts as `pdms.cache.*` counters.
    pub fn rollup(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for m in self.peer_metrics.values() {
            out.merge(&m.window_snapshot());
        }
        out.merge(&self.metrics.snapshot());
        let cache: [(&str, usize); 5] = [
            (names::PDMS_CACHE_REFORMULATION_HITS, self.cache.reformulation_hits),
            (names::PDMS_CACHE_REFORMULATION_MISSES, self.cache.reformulation_misses),
            (names::PDMS_CACHE_PLAN_HITS, self.cache.plan_hits),
            (names::PDMS_CACHE_PLAN_MISSES, self.cache.plan_misses),
            (names::PDMS_CACHE_PLAN_EVICTIONS, self.cache.plan_evictions),
        ];
        for (name, n) in cache {
            *out.counters.entry(name.to_string()).or_insert(0) += n as u64;
        }
        out
    }

    /// The cluster as sorted text: a summary line, the network-scope
    /// cache verdicts, then one fixed-width row per peer in name order.
    /// Byte-deterministic for a given scrape history.
    pub fn render_dashboard(&self) -> String {
        let mut counts = [0usize; 4];
        for s in self.health.values() {
            counts[s.verdict as usize] += 1;
        }
        let mut out = format!(
            "cluster @ tick {}: peers={} healthy={} degraded={} suspect={} down={} events={}\n",
            self.last_tick,
            self.health.len(),
            counts[0],
            counts[1],
            counts[2],
            counts[3],
            self.events.len()
        );
        out.push_str(&format!("cache: {}\n", self.cache));
        out.push_str(
            "peer        health    reach  drop/sent  gaps  retries  p50  q_err(m)  wal(pend/lag)\n",
        );
        for (peer, state) in &self.health {
            let v = self.vitals.get(peer).cloned().unwrap_or_default();
            out.push_str(&format!(
                "{:<11} {:<9} {:<6} {:<10} {:<5} {:<8} {:<4} {:<9} {}/{}\n",
                peer,
                state.verdict.to_string(),
                if v.reachable { "yes" } else { "NO" },
                format!("{}/{}", v.messages_dropped, v.messages_sent),
                v.gaps_observed,
                v.retries_spent,
                v.latency_p50_ticks,
                v.worst_q_error_milli,
                v.wal_records_pending,
                v.wal_records_unsynced,
            ));
        }
        out
    }

    /// The event log as a Chrome trace: one instant event (`"ph":"i"`)
    /// per verdict crossing, `ts` = monitor tick. Loadable alongside the
    /// tracer's span export.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":1,\"s\":\"g\",\
                 \"args\":{{\"peer\":\"{}\",\"from\":\"{}\",\"to\":\"{}\",\"reason\":\"{}\"}}}}",
                json_escape(&format!("{} {}->{}", e.peer, e.from, e.to)),
                e.tick,
                json_escape(&e.peer),
                e.from,
                e.to,
                json_escape(&e.reason),
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::PdmsNetwork;
    use crate::peer::Peer;
    use revere_query::glav::GlavMapping;
    use revere_storage::{RelSchema, Relation, Value};
    use revere_util::fault::{FaultPlan, FaultSpec};

    /// Three peers, a chain of mappings, a few rows each.
    fn tiny_net() -> PdmsNetwork {
        let mut net = PdmsNetwork::new();
        for i in 0..3 {
            let mut p = Peer::new(format!("P{i}"));
            let mut r = Relation::new(RelSchema::text("item", &["name"]));
            r.insert(vec![Value::str(format!("item at P{i}"))]);
            p.add_relation(r);
            net.add_peer(p);
        }
        for (idx, (a, b)) in [(0, 1), (1, 2)].iter().enumerate() {
            net.add_mapping(
                GlavMapping::parse(
                    format!("m{idx}"),
                    format!("P{a}"),
                    format!("P{b}"),
                    &format!("m(N) :- P{a}.item(N) ==> m(N) :- P{b}.item(N)"),
                )
                .expect("mapping parses"),
            );
        }
        net
    }

    #[test]
    fn healthy_overlay_stays_healthy_and_unflagged() {
        let net = tiny_net();
        let mut mon = Monitor::default();
        for tick in 0..6 {
            net.query_str("P0", "q(N) :- P2.item(N)").expect("query runs");
            mon.scrape(&net, tick);
        }
        assert!(mon.flagged().is_empty(), "perfect network got flagged: {:?}", mon.flagged());
        assert!(mon.events().is_empty(), "perfect network emitted events: {}", mon.event_log());
        for peer in ["P0", "P1", "P2"] {
            assert_eq!(mon.health(peer), Health::Healthy);
        }
        let v = mon.vitals("P2").expect("P2 scraped");
        assert!(v.reachable);
        assert!(v.messages_sent > 0 || v.fetch_attempts > 0 || mon.scrapes > 0);
    }

    #[test]
    fn down_peer_escalates_to_suspect_then_down_with_events() {
        let mut net = tiny_net();
        net.faults = FaultPlan::new(FaultSpec::default().with_down_peer("P2"));
        let mut mon = Monitor::default();
        for tick in 0..6 {
            mon.scrape(&net, tick);
        }
        assert_eq!(mon.health("P2"), Health::Down);
        assert_eq!(mon.flagged(), vec!["P2".to_string()]);
        // Degraded at the first miss (tick 0), Suspect at the second
        // (tick 1), Down at the fourth (tick 3).
        assert_eq!(mon.first_flagged_tick("P2"), Some(1));
        let log = mon.event_log();
        assert!(log.contains("peer=P2 Healthy->Degraded"), "missing degrade event:\n{log}");
        assert!(log.contains("peer=P2 Degraded->Suspect"), "missing suspect event:\n{log}");
        assert!(log.contains("peer=P2 Suspect->Down"), "missing down event:\n{log}");
        assert_eq!(mon.health("P0"), Health::Healthy);
    }

    #[test]
    fn crashed_peer_is_flagged_only_after_its_crash_tick() {
        let mut net = tiny_net();
        net.faults = FaultPlan::new(FaultSpec::default().with_crash("P1", 10));
        let mut mon = Monitor::default();
        for tick in 0..10 {
            mon.scrape(&net, tick);
        }
        assert_eq!(mon.health("P1"), Health::Healthy, "flagged before the crash");
        for tick in 10..16 {
            mon.scrape(&net, tick);
        }
        assert_eq!(mon.health("P1"), Health::Down);
        assert_eq!(mon.first_flagged_tick("P1"), Some(11));
    }

    #[test]
    fn recovery_needs_hysteresis_scrapes() {
        let mut net = tiny_net();
        net.faults = FaultPlan::new(FaultSpec::default().with_crash("P1", 0));
        let mut mon = Monitor::default();
        for tick in 0..4 {
            mon.scrape(&net, tick);
        }
        assert_eq!(mon.health("P1"), Health::Down);
        // "Restart" the peer: clear the fault plan. One good scrape must
        // NOT clear the flag (recover_scrapes = 2)...
        net.faults = FaultPlan::zero();
        mon.scrape(&net, 4);
        assert_eq!(mon.health("P1"), Health::Down, "one good probe un-flagged a down peer");
        // ...the second one does.
        mon.scrape(&net, 5);
        assert_eq!(mon.health("P1"), Health::Healthy);
        let log = mon.event_log();
        assert!(log.contains("peer=P1 Down->Healthy reason=recovered"), "no recovery event:\n{log}");
    }

    #[test]
    fn scrapes_are_deterministic_and_rollup_names_are_canonical() {
        let run = || {
            let mut net = tiny_net();
            net.faults = FaultPlan::new(FaultSpec::chaos(7, 0.3));
            let mut mon = Monitor::default();
            for tick in 0..8 {
                net.query_str("P0", "q(N) :- P2.item(N)").expect("query runs");
                mon.scrape(&net, tick);
            }
            mon
        };
        let (a, b) = (run(), run());
        assert_eq!(a.render_dashboard(), b.render_dashboard(), "dashboard diverged");
        assert_eq!(a.event_log(), b.event_log(), "event log diverged");
        assert_eq!(a.chrome_trace(), b.chrome_trace(), "chrome export diverged");
        let roll = a.rollup();
        assert_eq!(roll.to_string(), b.rollup().to_string(), "rollup diverged");
        let strays = names::unregistered(&roll);
        assert!(strays.is_empty(), "rollup contains unregistered names: {strays:?}");
    }
}
