//! The simulated peer network.
//!
//! §3.1: "Piazza consists of an overlay network of peers connected via the
//! Internet ... each peer can receive and process requests." The real
//! Internet is replaced (DESIGN.md §3) by an in-process overlay that
//! tracks exactly what the distributed system would pay: messages sent,
//! tuples shipped, peers contacted. Disjuncts of a reformulated query can
//! be evaluated on worker threads (`std::thread::scope` over the peers'
//! lock-protected catalogs), standing in for §3.1.2's peer-local query
//! processing.

use crate::peer::{split_qualified, Peer};
use crate::reformulate::{ReformulateOptions, ReformulationResult, Reformulator};
use revere_query::glav::GlavMapping;
use revere_query::{parse_query, ConjunctiveQuery, Source};
use revere_storage::{Catalog, Relation};
use std::collections::{BTreeMap, BTreeSet};

/// The PDMS: peers plus the shared mapping graph.
#[derive(Debug, Default)]
pub struct PdmsNetwork {
    peers: BTreeMap<String, Peer>,
    mappings: Vec<GlavMapping>,
    /// Reformulation configuration used for queries.
    pub options: ReformulateOptions,
}

/// The result of asking one peer a question.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The answers, in the querying peer's vocabulary.
    pub answers: Relation,
    /// Reformulation statistics.
    pub reformulation: ReformulationResult,
    /// Peers whose data actually contributed (had the needed relations).
    pub peers_contacted: BTreeSet<String>,
    /// Messages exchanged: one request + one response per contacted remote
    /// peer, per relation fetched.
    pub messages: usize,
    /// Tuples shipped from remote peers to the querying peer.
    pub tuples_shipped: usize,
}

impl PdmsNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a peer. Replaces any existing peer of the same name.
    pub fn add_peer(&mut self, peer: Peer) {
        self.peers.insert(peer.name.clone(), peer);
    }

    /// Add a mapping between two member peers.
    ///
    /// # Panics
    /// Panics if either endpoint is unknown — a mapping to a non-member is
    /// always a bug in test/bench setup.
    pub fn add_mapping(&mut self, mapping: GlavMapping) {
        assert!(
            self.peers.contains_key(&mapping.source_peer),
            "unknown source peer {}",
            mapping.source_peer
        );
        assert!(
            self.peers.contains_key(&mapping.target_peer),
            "unknown target peer {}",
            mapping.target_peer
        );
        self.mappings.push(mapping);
    }

    /// Borrow a peer.
    pub fn peer(&self, name: &str) -> Option<&Peer> {
        self.peers.get(name)
    }

    /// Mutably borrow a peer.
    pub fn peer_mut(&mut self, name: &str) -> Option<&mut Peer> {
        self.peers.get_mut(name)
    }

    /// Peer names.
    pub fn peer_names(&self) -> impl Iterator<Item = &str> {
        self.peers.keys().map(String::as_str)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True when the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Number of mappings.
    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    /// Pose a textual query at a peer. The query must use relations
    /// qualified with peer names (usually the local peer's).
    pub fn query_str(&self, at_peer: &str, query: &str) -> Result<QueryOutcome, String> {
        let q = parse_query(query).map_err(|e| e.to_string())?;
        self.query(at_peer, &q)
    }

    /// Pose a parsed query at a peer: reformulate over the mapping graph,
    /// fetch the needed relations, evaluate the union.
    pub fn query(&self, at_peer: &str, q: &ConjunctiveQuery) -> Result<QueryOutcome, String> {
        if !self.peers.contains_key(at_peer) {
            return Err(format!("unknown peer {at_peer:?}"));
        }
        let reformulator = Reformulator::new(self.mappings.clone(), self.options.clone());
        let reformulation = reformulator.reformulate(q);

        // Fetch phase: snapshot every referenced relation that exists.
        let mut staging = Catalog::new();
        let mut peers_contacted = BTreeSet::new();
        let mut messages = 0usize;
        let mut tuples_shipped = 0usize;
        let mut fetched: BTreeSet<String> = BTreeSet::new();
        for d in &reformulation.union.disjuncts {
            for a in &d.body {
                if !fetched.insert(a.relation.clone()) {
                    continue;
                }
                let Some((owner, _)) = split_qualified(&a.relation) else {
                    continue;
                };
                let Some(peer) = self.peers.get(owner) else {
                    continue;
                };
                if let Some(rel) = peer.storage.snapshot(&a.relation) {
                    peers_contacted.insert(owner.to_string());
                    if owner != at_peer {
                        messages += 2; // request + response
                        tuples_shipped += rel.len();
                    }
                    staging.register(rel);
                }
            }
        }

        // Evaluate disjuncts (those whose relations are all present).
        let answers = revere_query::eval_union(&reformulation.union, &staging)
            .map_err(|e| e.to_string())?;
        Ok(QueryOutcome {
            answers,
            reformulation,
            peers_contacted,
            messages,
            tuples_shipped,
        })
    }

    /// Parallel variant: evaluate each disjunct on its own scoped thread.
    /// Same answers as [`PdmsNetwork::query`]; used by the benches to
    /// exercise the multi-threaded execution path.
    pub fn query_parallel(&self, at_peer: &str, q: &ConjunctiveQuery) -> Result<QueryOutcome, String> {
        let mut outcome = self.query(at_peer, q)?; // fetch + stats (cheap relative to eval)
        // Re-evaluate disjuncts in parallel against per-thread snapshots.
        let union = &outcome.reformulation.union;
        let mut staging = Catalog::new();
        for d in &union.disjuncts {
            for a in &d.body {
                if staging.get(&a.relation).is_none() {
                    if let Some((owner, _)) = split_qualified(&a.relation) {
                        if let Some(peer) = self.peers.get(owner) {
                            if let Some(rel) = peer.storage.snapshot(&a.relation) {
                                staging.register(rel);
                            }
                        }
                    }
                }
            }
        }
        let staging = &staging;
        let results: Vec<Option<Relation>> = std::thread::scope(|s| {
            let handles: Vec<_> = union
                .disjuncts
                .iter()
                .map(|d| s.spawn(move || revere_query::eval_cq(d, staging).ok()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("disjunct worker panicked")).collect()
        });
        // Joining in spawn order already fixes the merge order, and
        // `distinct()` sorts and dedups — so the final row order is a pure
        // function of the query, independent of thread scheduling, and
        // identical to the sequential `eval_union` path's normalization.
        let mut merged: Option<Relation> = None;
        for r in results.into_iter().flatten() {
            merged = Some(match merged {
                None => r,
                Some(m) => {
                    let schema = m.schema.clone();
                    let mut rows = m.into_rows();
                    rows.extend(r.into_rows());
                    Relation::with_rows(schema, rows)
                }
            });
        }
        if let Some(m) = merged {
            outcome.answers = m.distinct();
        }
        Ok(outcome)
    }

    /// Expose the whole network as a query [`Source`] (used by tests and
    /// by view refresh, which conceptually runs "at" a peer with access to
    /// fetched snapshots).
    pub fn snapshot_all(&self) -> Catalog {
        let mut c = Catalog::new();
        for p in self.peers.values() {
            p.storage.read(|cat| {
                for name in cat.names() {
                    if let Some(r) = cat.get(name) {
                        c.register(r.clone());
                    }
                }
            });
        }
        c
    }
}

impl Source for PdmsNetwork {
    /// Direct lookup of a qualified relation (no snapshotting): only valid
    /// for single-threaded use. Returns `None` for relations of unknown
    /// peers.
    fn relation(&self, _name: &str) -> Option<&Relation> {
        // SharedCatalog hands out guards, not references; the Source trait
        // cannot express that lifetime, so network-wide evaluation goes
        // through `snapshot_all` instead.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revere_storage::{RelSchema, Value};

    /// The Figure 2 network in miniature: three universities, chain
    /// mappings, course data everywhere.
    fn university_network() -> PdmsNetwork {
        let mut net = PdmsNetwork::new();
        for (peer, rel, rows) in [
            ("MIT", "subject", vec![("Databases", 120i64)]),
            ("Berkeley", "course", vec![("Ancient Greece", 40), ("Databases", 95)]),
            ("Tsinghua", "kecheng", vec![("Roman Law", 25)]),
        ] {
            let mut p = Peer::new(peer);
            let mut r = Relation::new(RelSchema::new(
                rel,
                vec![
                    revere_storage::Attribute::text("title"),
                    revere_storage::Attribute::int("enrollment"),
                ],
            ));
            for (t, e) in rows {
                r.insert(vec![Value::str(t), Value::Int(e)]);
            }
            p.add_relation(r);
            net.add_peer(p);
        }
        net.add_mapping(
            GlavMapping::parse(
                "m_bm",
                "Berkeley",
                "MIT",
                "m(T, E) :- Berkeley.course(T, E) ==> m(T, E) :- MIT.subject(T, E)",
            )
            .unwrap(),
        );
        net.add_mapping(
            GlavMapping::parse(
                "m_tb",
                "Tsinghua",
                "Berkeley",
                "m(T, E) :- Tsinghua.kecheng(T, E) ==> m(T, E) :- Berkeley.course(T, E)",
            )
            .unwrap(),
        );
        net
    }

    #[test]
    fn query_reaches_all_peers_transitively() {
        let net = university_network();
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        // All four (title, enrollment) pairs from all three peers.
        assert_eq!(out.answers.len(), 4, "{}", out.answers);
        assert_eq!(out.peers_contacted.len(), 3);
        assert!(out.messages >= 4); // two remote peers, ≥1 relation each
        assert!(out.tuples_shipped >= 3);
    }

    #[test]
    fn query_in_any_peers_vocabulary() {
        let net = university_network();
        // Same information need, posed at Tsinghua in its own vocabulary.
        let out = net.query_str("Tsinghua", "q(T, E) :- Tsinghua.kecheng(T, E)").unwrap();
        assert_eq!(out.answers.len(), 4);
    }

    #[test]
    fn local_only_when_no_mappings() {
        let mut net = PdmsNetwork::new();
        let mut p = Peer::new("Lonely");
        let mut r = Relation::new(RelSchema::text("course", &["title"]));
        r.insert(vec![Value::str("Solipsism 101")]);
        p.add_relation(r);
        net.add_peer(p);
        let out = net.query_str("Lonely", "q(T) :- Lonely.course(T)").unwrap();
        assert_eq!(out.answers.len(), 1);
        assert_eq!(out.messages, 0);
        assert_eq!(out.tuples_shipped, 0);
    }

    #[test]
    fn selections_are_pushed_through_mappings() {
        let net = university_network();
        let out = net
            .query_str("MIT", "q(T, E) :- MIT.subject(T, E), E > 50")
            .unwrap();
        // Databases@MIT (120) and Databases@Berkeley (95).
        assert_eq!(out.answers.len(), 2, "{}", out.answers);
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let net = university_network();
        assert!(net.query_str("Oxford", "q(T) :- Oxford.course(T)").is_err());
    }

    #[test]
    #[should_panic(expected = "unknown source peer")]
    fn mapping_to_unknown_peer_panics() {
        let mut net = PdmsNetwork::new();
        net.add_peer(Peer::new("A"));
        net.add_mapping(
            GlavMapping::parse("m", "Ghost", "A", "m(X) :- Ghost.r(X) ==> m(X) :- A.r(X)").unwrap(),
        );
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        // Both paths normalize through `distinct()`, so the comparison is
        // exact — same rows in the same order, no re-sorting needed.
        let net = university_network();
        let q = parse_query("q(T) :- MIT.subject(T, E)").unwrap();
        let seq = net.query("MIT", &q).unwrap();
        let par = net.query_parallel("MIT", &q).unwrap();
        assert_eq!(seq.answers.rows(), par.answers.rows());
    }

    #[test]
    fn parallel_execution_is_deterministic_across_runs() {
        // The disjunct workers race, but the merged answer must not: row
        // order is normalized, so repeated runs are byte-identical.
        let net = university_network();
        let q = parse_query("q(T, E) :- MIT.subject(T, E)").unwrap();
        let first = net.query_parallel("MIT", &q).unwrap();
        for _ in 0..8 {
            let again = net.query_parallel("MIT", &q).unwrap();
            assert_eq!(first.answers.rows(), again.answers.rows());
        }
        // Sorted normalization: each row ≤ its successor.
        assert!(first.answers.rows().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn peer_departure_degrades_gracefully() {
        // "every member can join or leave at will": drop Berkeley's data;
        // MIT still gets its local answers plus whatever remains reachable.
        let mut net = university_network();
        net.peer_mut("Berkeley").unwrap().storage =
            revere_storage::SharedCatalog::new(Catalog::new());
        let out = net.query_str("MIT", "q(T) :- MIT.subject(T, E)").unwrap();
        // MIT local (1) + Tsinghua via the two-hop translation (1).
        assert_eq!(out.answers.len(), 2, "{}", out.answers);
    }

    #[test]
    fn new_peer_joining_is_one_mapping_away() {
        // Example 3.1's Trento: join by mapping to the most similar peer.
        let mut net = university_network();
        let mut trento = Peer::new("Trento");
        let mut r = Relation::new(RelSchema::new(
            "corso",
            vec![
                revere_storage::Attribute::text("titolo"),
                revere_storage::Attribute::int("iscritti"),
            ],
        ));
        r.insert(vec![Value::str("Etruscan Art"), Value::Int(15)]);
        trento.add_relation(r);
        net.add_peer(trento);
        net.add_mapping(
            GlavMapping::parse(
                "m_tt",
                "Trento",
                "Tsinghua",
                "m(T, E) :- Trento.corso(T, E) ==> m(T, E) :- Tsinghua.kecheng(T, E)",
            )
            .unwrap(),
        );
        let out = net.query_str("MIT", "q(T, E) :- MIT.subject(T, E)").unwrap();
        assert_eq!(out.answers.len(), 5);
        assert!(out
            .answers
            .iter()
            .any(|r| r[0] == Value::str("Etruscan Art")));
    }
}
